//! Root crate of the MAK reproduction workspace.
//!
//! This crate only hosts the repository-level integration tests (`tests/`)
//! and runnable examples (`examples/`). The actual functionality lives in
//! the member crates:
//!
//! - [`mak`] — the crawler framework and the MAK / WebExplor / QExplore /
//!   BFS / DFS / Random crawlers,
//! - [`mak_websim`] — the web-application simulator and the eleven
//!   application models of the paper's testbed,
//! - [`mak_browser`] — the black-box client and virtual clock,
//! - [`mak_bandit`] — Exp3.1 and the other policy-learning algorithms,
//! - [`mak_metrics`] — experiment runner, ground-truth estimation, regret.

pub use mak;
pub use mak_bandit;
pub use mak_browser;
pub use mak_metrics;
pub use mak_websim;
