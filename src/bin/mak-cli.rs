//! `mak-cli` — drive the MAK reproduction from the command line.
//!
//! ```text
//! mak-cli apps                       list the testbed applications
//! mak-cli crawlers                   list the registered crawlers
//! mak-cli crawl <app> [options]      run one crawl and print a report
//! mak-cli compare <app> [options]    run every crawler on one app
//! mak-cli profile <app> <crawler>    run one instrumented crawl and print where
//!                                    the virtual budget went; --perfetto FILE
//!                                    also records the hierarchical span tree
//!                                    and writes it as Chrome/Perfetto
//!                                    trace_events JSON (load at
//!                                    ui.perfetto.dev or chrome://tracing)
//! mak-cli scan <app> [options]       crawl then probe for reflected inputs
//! mak-cli serve <app> [options]      multiplex many concurrent sessions through
//!                                    the in-process crawl service and summarize
//! mak-cli fuzz [options]             fuzz generated apps under the invariant oracles
//! mak-cli fuzz --replay <file>       re-run a saved failure artifact
//! mak-cli cache stats [--json]       summarize the on-disk run cache (under
//!                                    MAK_LOG=debug, also size the hot-path
//!                                    interner tables on a fixed probe crawl);
//!                                    --json prints a machine-readable document
//!                                    instead of the table
//! mak-cli cache clear                delete every cached run
//! mak-cli trace summarize <file>     fold a recorded JSONL trace into a flight
//!                                    report (markdown + SVGs under results/)
//! mak-cli trace diff <a> <b>         compare two traces; print the first
//!                                    divergent event (exit 1 when they differ)
//! mak-cli trace check <file>         replay a trace through the invariant
//!                                    oracle offline (exit 1 on violations)
//!
//! options:
//!   --crawler <name>    crawler for `crawl` (default: mak)
//!   --minutes <f64>     virtual budget (default: 30; fuzz default: 1)
//!   --seed <u64>        RNG seed (default: 0; fuzz: base blueprint seed)
//!   --seeds <u64>       repetitions for `compare`, crawl seeds for `fuzz`,
//!                       concurrent sessions for `serve` (default: 3)
//!   --apps <u64>        generated applications for `fuzz` (default: 25)
//!   --replay <file>     replay a fuzz failure artifact instead of fuzzing
//!   --trace <file>      write the run's observability event stream as JSONL
//!                       (crawl only; also prints the per-step action trace)
//!   --faults <profile>  inject deterministic faults: none, light, moderate,
//!                       or heavy (crawl only; part of the cache key)
//!   --chaos             fuzz under the moderate fault profile (fuzz only)
//!   --metrics <file>    after `serve` drains, write the service metrics as
//!                       Prometheus text to <file> and as a JSON snapshot to
//!                       <file>.json (virtual-domain families are deterministic;
//!                       wall-clock families are marked `domain: wall`)
//!   --perfetto <file>   record phase spans during `profile` and write them as
//!                       Chrome/Perfetto trace_events JSON (virtual-clock
//!                       timestamps, so the file is byte-deterministic)
//!   --checkpoint-dir <dir>  `serve` only: persist session checkpoints to
//!                       <dir> on a cadence, so a crashed or killed process
//!                       can be resumed; sessions also park here when the
//!                       service drains gracefully
//!   --checkpoint-every <n>  steps between cadence checkpoints (default 256)
//!   --resume            `serve` only: instead of submitting fresh sessions,
//!                       recover every parked/crashed session found under
//!                       --checkpoint-dir and run it to completion; each
//!                       recovered session finishes bit-identical to an
//!                       uninterrupted run
//!
//! `crawl` and `compare` consult the run cache under `results/cache/`
//! (`MAK_CACHE=off|rw|ro` to control, `MAK_CACHE_DIR` to relocate).
//! `fuzz` writes shrunk failure artifacts to `results/fuzz/`.
//! `MAK_LOG=off|progress|debug` controls stderr logging (default: progress).
//! ```

use mak::framework::engine::{run_crawl_with_sink, EngineConfig};
use mak::spec::{build_crawler, CRAWLER_NAMES, MAK_VARIANTS};
use mak_metrics::experiment::{run_matrix_cached, run_one_cached, RunMatrix};
use mak_metrics::ground_truth::UnionCoverage;
use mak_metrics::report::markdown_table;
use mak_metrics::stats::mean;
use mak_metrics::store::RunStore;
use mak_obs::aggregate::Aggregator;
use mak_obs::sink::{JsonlSink, SinkHandle};
use mak_websim::apps;
use std::process::ExitCode;

#[derive(Debug)]
struct Options {
    crawler: String,
    /// `None` means "command default" (30 min for crawls, 1 min for fuzz).
    minutes: Option<f64>,
    seed: u64,
    seeds: u64,
    apps: u64,
    replay: Option<String>,
    /// Target JSONL file for the observability event stream.
    trace: Option<String>,
    /// Fault plan for `crawl` (named profile) — `None` means fault-free.
    faults: Option<mak_browser::fault::FaultPlan>,
    /// `fuzz --chaos`: run the campaign under the moderate fault profile.
    chaos: bool,
    /// `serve --metrics`: write the service's metrics here after the
    /// drain (Prometheus text at the path, JSON snapshot at `.json`).
    metrics: Option<String>,
    /// `profile --perfetto`: record the span tree and write it here as
    /// Chrome/Perfetto `trace_events` JSON.
    perfetto: Option<String>,
    /// `serve --checkpoint-dir`: durable session checkpoints live here;
    /// enables cadence checkpointing and graceful drain on this dir.
    checkpoint_dir: Option<String>,
    /// `serve --checkpoint-every`: steps between cadence checkpoints
    /// (default: the service default, 256).
    checkpoint_every: Option<u64>,
    /// `serve --resume`: recover parked/crashed sessions from
    /// `--checkpoint-dir` instead of submitting fresh ones.
    resume: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            crawler: "mak".to_owned(),
            minutes: None,
            seed: 0,
            seeds: 3,
            apps: 25,
            replay: None,
            trace: None,
            faults: None,
            chaos: false,
            metrics: None,
            perfetto: None,
            checkpoint_dir: None,
            checkpoint_every: None,
            resume: false,
        }
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--crawler" => {
                opts.crawler = it.next().ok_or("--crawler needs a value")?.clone();
            }
            "--minutes" => {
                opts.minutes = Some(
                    it.next()
                        .ok_or("--minutes needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --minutes: {e}"))?,
                );
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--seeds" => {
                opts.seeds = it
                    .next()
                    .ok_or("--seeds needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seeds: {e}"))?;
            }
            "--apps" => {
                opts.apps = it
                    .next()
                    .ok_or("--apps needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --apps: {e}"))?;
            }
            "--replay" => {
                opts.replay = Some(it.next().ok_or("--replay needs a file path")?.clone());
            }
            "--trace" => {
                opts.trace = Some(it.next().ok_or("--trace needs a file path")?.clone());
            }
            "--faults" => {
                let name = it.next().ok_or("--faults needs a profile name")?;
                opts.faults = Some(mak_browser::fault::FaultPlan::profile(name).ok_or(format!(
                    "unknown fault profile `{name}` (try none, light, moderate, heavy)"
                ))?);
            }
            "--chaos" => {
                opts.chaos = true;
            }
            "--metrics" => {
                opts.metrics = Some(it.next().ok_or("--metrics needs a file path")?.clone());
            }
            "--perfetto" => {
                opts.perfetto = Some(it.next().ok_or("--perfetto needs a file path")?.clone());
            }
            "--checkpoint-dir" => {
                opts.checkpoint_dir =
                    Some(it.next().ok_or("--checkpoint-dir needs a directory path")?.clone());
            }
            "--checkpoint-every" => {
                opts.checkpoint_every = Some(
                    it.next()
                        .ok_or("--checkpoint-every needs a step count")?
                        .parse()
                        .map_err(|e| format!("bad --checkpoint-every: {e}"))?,
                );
            }
            "--resume" => {
                opts.resume = true;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if opts.minutes.is_some_and(|m| m <= 0.0) {
        return Err("--minutes must be positive".to_owned());
    }
    if opts.seeds == 0 {
        return Err("--seeds must be at least 1".to_owned());
    }
    if opts.apps == 0 {
        return Err("--apps must be at least 1".to_owned());
    }
    if opts.resume && opts.checkpoint_dir.is_none() {
        return Err("--resume needs --checkpoint-dir".to_owned());
    }
    if opts.checkpoint_every == Some(0) {
        return Err("--checkpoint-every must be at least 1".to_owned());
    }
    Ok(opts)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: mak-cli <apps|crawlers|crawl <app>|compare <app>|profile <app> <crawler>|\
         scan <app>|serve <app>|fuzz|cache <stats [--json]|clear>|\
         trace <summarize FILE|diff A B|check FILE>> \
         [--crawler NAME] [--minutes F] [--seed N] \
         [--seeds N] [--apps N] [--replay FILE] [--trace FILE] \
         [--faults PROFILE] [--chaos] [--metrics FILE] [--perfetto FILE] \
         [--checkpoint-dir DIR] [--checkpoint-every N] [--resume]"
    );
    ExitCode::FAILURE
}

/// Reads a whole JSONL trace into memory, failing on the first
/// unreadable or unparseable line.
fn load_trace(path: &str) -> Result<Vec<mak_obs::Event>, String> {
    let iter = mak_obs::trace::read(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut events = Vec::new();
    for ev in iter {
        events.push(ev.map_err(|e| format!("{path}: {e}"))?);
    }
    Ok(events)
}

fn cmd_trace_summarize(path: &str) -> ExitCode {
    // Stream the trace straight into the recorder; only the report is
    // held in memory.
    let iter = match mak_obs::trace::read(path) {
        Ok(it) => it,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut recorder = mak_obs::FlightRecorder::new();
    for ev in iter {
        match ev {
            Ok(ev) => mak_obs::EventSink::on_event(&mut recorder, &ev),
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let report = recorder.into_report();
    if report.events == 0 {
        eprintln!("{path}: empty trace");
        return ExitCode::FAILURE;
    }
    let rendered = mak_metrics::flight::render(&report);

    let stem = std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "trace".to_owned());
    let out_dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let md_path = out_dir.join(format!("trace_{stem}.md"));
    if let Err(e) = std::fs::write(&md_path, &rendered.markdown) {
        eprintln!("cannot write {}: {e}", md_path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "{} on {} (seed {}): {} events, {} steps, {} lines covered",
        report.crawler, report.app, report.seed, report.events, report.steps, report.lines
    );
    println!("[wrote {}]", md_path.display());
    for (suffix, svg) in &rendered.svgs {
        let svg_path = out_dir.join(format!("trace_{stem}_{suffix}.svg"));
        if let Err(e) = std::fs::write(&svg_path, svg) {
            eprintln!("cannot write {}: {e}", svg_path.display());
            return ExitCode::FAILURE;
        }
        println!("[wrote {}]", svg_path.display());
    }
    ExitCode::SUCCESS
}

fn cmd_trace_diff(left: &str, right: &str) -> ExitCode {
    let (a, b) = match (load_trace(left), load_trace(right)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let (na, nb) = (a.len(), b.len());
    match mak_obs::first_divergence(a, b) {
        None => {
            println!("traces are identical ({na} events)");
            ExitCode::SUCCESS
        }
        Some(div) => {
            println!("{left} ({na} events) vs {right} ({nb} events)");
            println!("{div}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_trace_check(path: &str) -> ExitCode {
    use mak_obs::sink::EventSink;
    use mak_testkit::oracle::InvariantOracle;
    let iter = match mak_obs::trace::read(path) {
        Ok(it) => it,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut oracle = InvariantOracle::new();
    let mut events = 0u64;
    for ev in iter {
        match ev {
            Ok(ev) => {
                oracle.on_event(&ev);
                events += 1;
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let violations = oracle.violations();
    if violations.is_empty() {
        println!("{path}: no invariant violations in {events} events");
        ExitCode::SUCCESS
    } else {
        println!("{path}: {} invariant violations in {events} events", violations.len());
        for v in violations {
            println!("  {v}");
        }
        ExitCode::FAILURE
    }
}

/// The `cache stats --json` document: the same numbers as the table, in
/// a stable machine-readable shape for scripting.
#[derive(serde::Serialize)]
struct CacheStatsJson {
    dir: String,
    mode: String,
    fingerprint: String,
    entries: u64,
    bytes: u64,
    per_pair: Vec<CachePairJson>,
}

/// One `(app, crawler)` row of [`CacheStatsJson`].
#[derive(serde::Serialize)]
struct CachePairJson {
    app: String,
    crawler: String,
    entries: u64,
    bytes: u64,
}

fn cmd_cache_stats(json: bool) -> ExitCode {
    let store = RunStore::from_env();
    let stats = store.stats();
    if json {
        let doc = CacheStatsJson {
            dir: store.root().display().to_string(),
            mode: format!("{:?}", store.mode()),
            fingerprint: format!("{:016x}", store.fingerprint()),
            entries: stats.entries as u64,
            bytes: stats.bytes,
            per_pair: stats
                .per_pair
                .iter()
                .map(|((app, crawler), pair)| CachePairJson {
                    app: app.clone(),
                    crawler: crawler.clone(),
                    entries: pair.entries as u64,
                    bytes: pair.bytes,
                })
                .collect(),
        };
        println!("{}", serde_json::to_string_pretty(&doc).expect("cache stats serialize"));
        return ExitCode::SUCCESS;
    }
    println!("cache dir   : {}", store.root().display());
    println!("mode        : {:?}", store.mode());
    println!("fingerprint : {:016x}", store.fingerprint());
    println!("entries     : {}", stats.entries);
    println!("size        : {:.1} MiB", stats.bytes as f64 / (1024.0 * 1024.0));
    if !stats.per_pair.is_empty() {
        let fmt = |stats: &std::collections::BTreeMap<String, mak_metrics::store::PairStats>| {
            stats
                .iter()
                .map(|(k, s)| {
                    format!("{k} ({} entries, {:.1} KiB)", s.entries, s.bytes as f64 / 1024.0)
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!("per app     : {}", fmt(&stats.per_app_stats()));
        println!("per crawler : {}", fmt(&stats.per_crawler_stats()));
        println!("per (app, crawler):");
        for ((app, crawler), pair) in &stats.per_pair {
            println!(
                "  {app:<14} {crawler:<12} {:>5} entries  {:>9.1} KiB",
                pair.entries,
                pair.bytes as f64 / 1024.0
            );
        }
    }
    if mak_obs::logger::enabled(mak_obs::logger::Level::Debug) {
        // Size the hot-path interner tables on a fixed probe crawl
        // (phpbb2 / mak / seed 0 / 1 virtual minute — deterministic, so
        // the numbers are stable across machines).
        let mut crawler = mak::mak::MakCrawler::new(0);
        let config = EngineConfig::with_budget_minutes(1.0);
        let report = run_crawl_with_sink(
            &mut crawler,
            apps::build("phpbb2").expect("phpbb2 is a registered app"),
            &config,
            0,
            &SinkHandle::none(),
        );
        let deque = crawler.deque().interner();
        let links = crawler.links().interner();
        mak_obs::debug!(
            "interners (probe: phpbb2/mak/seed 0, 1 min, {} interactions):",
            report.interactions
        );
        mak_obs::debug!(
            "  deque signatures : {:>6} symbols  {:>9.1} KiB",
            deque.len(),
            deque.bytes() as f64 / 1024.0
        );
        mak_obs::debug!(
            "  link-log URLs    : {:>6} symbols  {:>9.1} KiB",
            links.len(),
            links.bytes() as f64 / 1024.0
        );
    }
    ExitCode::SUCCESS
}

fn cmd_cache_clear() -> ExitCode {
    let store = RunStore::from_env();
    match store.clear() {
        Ok(removed) => {
            println!("removed {removed} cached runs from {}", store.root().display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to clear {}: {e}", store.root().display());
            ExitCode::FAILURE
        }
    }
}

fn cmd_scan(app: &str, opts: &Options) -> ExitCode {
    use mak_scanner::probe::Sink;
    use mak_scanner::scan::{run_scan, ScanConfig};
    let minutes = opts.minutes.unwrap_or(30.0);
    let config = ScanConfig::with_minutes(minutes, (minutes / 3.0).max(1.0));
    let Some(report) = run_scan(&opts.crawler, app, &config, opts.seed) else {
        eprintln!("unknown crawler `{}` or app `{app}`", opts.crawler);
        return ExitCode::FAILURE;
    };
    println!(
        "{} scanned {}: {} endpoints, {} params, {} forms from {} crawl interactions",
        report.crawler,
        report.app,
        report.surface.endpoint_count(),
        report.surface.param_count(),
        report.surface.form_count(),
        report.crawl_interactions,
    );
    if report.findings.is_empty() {
        println!("no reflected inputs found");
    } else {
        for f in &report.findings {
            match &f.sink {
                Sink::QueryParam { path, param } => {
                    println!("REFLECTED  GET  {path} param `{param}`");
                }
                Sink::FormField { action, field } => {
                    println!("REFLECTED  POST {action} field `{field}`");
                }
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_apps() -> ExitCode {
    println!("{:<14} {:>10}  coverage", "app", "lines");
    for name in apps::all_names() {
        let app = apps::build(name).expect("registered app");
        let mode = match app.coverage_mode() {
            mak_websim::coverage::CoverageMode::Live => "live (Xdebug-style)",
            mak_websim::coverage::CoverageMode::Final => "final (coverage-node-style)",
        };
        println!("{name:<14} {:>10}  {mode}", app.code_model().total_lines());
    }
    ExitCode::SUCCESS
}

fn cmd_crawlers() -> ExitCode {
    println!("paper crawlers : {}", CRAWLER_NAMES.join(", "));
    println!("MAK variants   : {}", MAK_VARIANTS.join(", "));
    ExitCode::SUCCESS
}

fn cmd_crawl(app: &str, opts: &Options) -> ExitCode {
    let Some(app_model) = apps::build(app) else {
        eprintln!("unknown app `{app}`; run `mak-cli apps`");
        return ExitCode::FAILURE;
    };
    if build_crawler(&opts.crawler, opts.seed).is_none() {
        eprintln!("unknown crawler `{}`; run `mak-cli crawlers`", opts.crawler);
        return ExitCode::FAILURE;
    }
    let total = app_model.code_model().total_lines();
    let mut config = EngineConfig::with_budget_minutes(opts.minutes.unwrap_or(30.0));
    config.record_trace = opts.trace.is_some();
    if let Some(plan) = &opts.faults {
        config.faults = plan.clone();
    }

    let store = RunStore::from_env();
    let report = match &opts.trace {
        // A trace wants the event stream, so the run must execute rather
        // than load from the cache (the report is still saved, and it is
        // byte-identical to what a cached rerun would return).
        Some(path) => {
            let file = match std::fs::File::create(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create trace file {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let sink = JsonlSink::new(std::io::BufWriter::new(file));
            let (handle, cell) = SinkHandle::shared(sink);
            let mut crawler =
                build_crawler(&opts.crawler, opts.seed).expect("existence checked above");
            let report = run_crawl_with_sink(&mut *crawler, app_model, &config, opts.seed, &handle);
            // Dropping the crawler and our handle releases every clone of
            // the sink, so the cell unwraps and the writer can be flushed.
            drop(crawler);
            drop(handle);
            match std::sync::Arc::try_unwrap(cell) {
                Ok(mutex) => {
                    let sink = mutex.into_inner().unwrap_or_else(|p| p.into_inner());
                    let (_, error) = sink.finish();
                    if let Some(e) = error {
                        eprintln!("trace write to {path} failed: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!("[trace written to {path}]");
                }
                Err(_) => {
                    eprintln!("trace file {path} may be unflushed (sink still shared)");
                }
            }
            store.save(&report, &config);
            report
        }
        None => run_one_cached(app, &opts.crawler, opts.seed, &config, &store),
    };
    println!(
        "{} on {}: {}/{} lines ({:.1}%), {} interactions, {} URLs, {:.0}s virtual",
        report.crawler,
        report.app,
        report.final_lines_covered,
        total,
        100.0 * report.final_lines_covered as f64 / total as f64,
        report.interactions,
        report.distinct_urls,
        report.elapsed_secs,
    );
    if let Some(states) = report.state_count {
        println!("states created: {states}");
    }
    if opts.faults.is_some() {
        let f = &report.faults;
        println!(
            "faults: {} injected ({} session expiries, {} stale elements), \
             {} retries, {} recoveries, {} exhausted",
            f.injected, f.session_expiries, f.stale_elements, f.retries, f.recoveries, f.exhausted,
        );
    }
    if opts.trace.is_some() {
        for entry in &report.trace {
            match entry.reward {
                Some(r) => println!("{:8.1}s  {:<60}  r={r:.3}", entry.secs, entry.action),
                None => println!("{:8.1}s  {:<60}", entry.secs, entry.action),
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_profile(app: &str, crawler_name: &str, opts: &Options) -> ExitCode {
    let Some(app_model) = apps::build(app) else {
        eprintln!("unknown app `{app}`; run `mak-cli apps`");
        return ExitCode::FAILURE;
    };
    let Some(mut crawler) = build_crawler(crawler_name, opts.seed) else {
        eprintln!("unknown crawler `{crawler_name}`; run `mak-cli crawlers`");
        return ExitCode::FAILURE;
    };
    let config = EngineConfig::with_budget_minutes(opts.minutes.unwrap_or(30.0));
    let started = std::time::Instant::now();
    let agg = match &opts.perfetto {
        // A Perfetto export needs the raw span events, so buffer the
        // stream and fold the aggregate afterwards; the span machinery is
        // only switched on here, keeping the plain profile zero-overhead.
        Some(path) => {
            use mak_obs::sink::EventSink;
            let (handle, cell) = SinkHandle::shared(mak_obs::sink::VecSink::new());
            let handle = handle.with_spans();
            run_crawl_with_sink(&mut *crawler, app_model, &config, opts.seed, &handle);
            drop(crawler);
            drop(handle);
            let cell = cell.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let mut trace = mak_obs::perfetto::PerfettoTrace::new(format!(
                "{app} / {crawler_name} / seed {}",
                opts.seed
            ));
            let mut agg = Aggregator::new();
            for event in cell.events() {
                trace.push(event);
                agg.on_event(event);
            }
            if let Err(e) = std::fs::write(path, trace.to_json()) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("[wrote {path}: {} spans]", trace.len());
            agg
        }
        None => {
            let (handle, cell) = SinkHandle::shared(Aggregator::new());
            run_crawl_with_sink(&mut *crawler, app_model, &config, opts.seed, &handle);
            drop(crawler);
            drop(handle);
            let mutex = std::sync::Arc::try_unwrap(cell)
                .unwrap_or_else(|_| panic!("all sink clones dropped"));
            mutex.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    };
    let wall = started.elapsed();

    println!(
        "{} on {} (seed {}): {} steps, {} pages (+{} redirects), {} lines, {:.0}s virtual",
        agg.crawler,
        agg.app,
        agg.seed,
        agg.steps,
        agg.pages,
        agg.redirects,
        agg.lines,
        agg.elapsed_ms / 1000.0,
    );
    println!("\nvirtual budget breakdown:");
    let elapsed = agg.elapsed_ms.max(1.0);
    for (bucket, ms) in agg.profile.rows() {
        println!("  {bucket:<9} {:>9.1}s  {:>5.1}%", ms / 1000.0, 100.0 * ms / elapsed);
    }
    if agg.spans > 0 {
        println!("\nspan phase attribution ({} spans):", agg.spans);
        for (phase, ms) in agg.span_phase_ms.iter() {
            println!("  {phase:<20} {:>9.1}s  {:>5.1}%", ms / 1000.0, 100.0 * ms / elapsed);
        }
    }
    if !agg.steps_per_arm.is_empty() {
        println!("\nper-arm usage:");
        for (arm, count) in agg.steps_per_arm.iter() {
            let mean = agg.rewards_per_arm.get(arm).map(|s| s.mean()).unwrap_or(0.0);
            println!("  {arm:<24} {count:>5} steps  mean reward {mean:.3}");
        }
    }
    println!("\npage cost histogram (ms):");
    for (label, count) in agg.fetch_cost.rows() {
        if count > 0 {
            println!("  {label:<9} {count:>5}");
        }
    }
    println!("\npeak deque depth : {}", agg.deque_peak);
    println!("exp3.1 epochs    : max {} ({} advances)", agg.max_epoch, agg.epoch_advances);
    println!("throughput       : {:.1} steps / virtual s", agg.steps_per_virtual_sec());
    println!("wall time        : {:.3}s ({:.0}x real time)", wall.as_secs_f64(), {
        let w = wall.as_secs_f64();
        if w > 0.0 {
            (agg.elapsed_ms / 1000.0) / w
        } else {
            f64::INFINITY
        }
    });
    ExitCode::SUCCESS
}

fn cmd_compare(app: &str, opts: &Options) -> ExitCode {
    if apps::build(app).is_none() {
        eprintln!("unknown app `{app}`; run `mak-cli apps`");
        return ExitCode::FAILURE;
    }
    let matrix = RunMatrix::new([app], CRAWLER_NAMES.iter().copied(), opts.seeds)
        .with_config(EngineConfig::with_budget_minutes(opts.minutes.unwrap_or(30.0)));
    mak_obs::progress!("running {} crawls…", matrix.run_count());
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let reports = run_matrix_cached(&matrix, threads, &RunStore::from_env());

    let union = UnionCoverage::from_reports(reports.iter());
    let mut rows = Vec::new();
    for crawler in CRAWLER_NAMES {
        let lines: Vec<f64> = reports
            .iter()
            .filter(|r| &r.crawler == crawler)
            .map(|r| r.final_lines_covered as f64)
            .collect();
        rows.push(vec![
            (*crawler).to_owned(),
            format!("{:.0}", mean(&lines)),
            format!("{:.1}%", 100.0 * mean(&lines) / union.len() as f64),
        ]);
    }
    println!("{}", markdown_table(&["Crawler", "Mean lines", "% of union"], &rows));
    ExitCode::SUCCESS
}

/// `serve <app>`: submit `--seeds` concurrent sessions of one crawler to
/// the in-process crawl service, drain them on the scheduler, and print
/// per-session results plus aggregate throughput.
fn cmd_serve(app: &str, opts: &Options) -> ExitCode {
    use mak_serve::{CrawlService, ServiceConfig, SessionSpec};

    if apps::build(app).is_none() {
        eprintln!("unknown app `{app}`; run `mak-cli apps`");
        return ExitCode::FAILURE;
    }
    if build_crawler(&opts.crawler, 0).is_none() {
        eprintln!("unknown crawler `{}`; run `mak-cli crawlers`", opts.crawler);
        return ExitCode::FAILURE;
    }
    let mut config = EngineConfig::with_budget_minutes(opts.minutes.unwrap_or(30.0));
    if let Some(plan) = &opts.faults {
        config.faults = plan.clone();
    }
    // Metrics output should include the wall-clock latency histogram,
    // so sampling rides along with --metrics.
    let mut service_config =
        ServiceConfig { sample_latency: opts.metrics.is_some(), ..ServiceConfig::default() };
    if let Some(dir) = &opts.checkpoint_dir {
        service_config.checkpoint_dir = Some(dir.into());
    }
    if let Some(every) = opts.checkpoint_every {
        service_config.checkpoint_every_steps = every;
    }
    let threads = service_config.threads;
    let mut service = CrawlService::new(service_config);
    if opts.resume {
        let report = match service.recover() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("recover failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        for (file, reason) in &report.quarantined {
            eprintln!("quarantined {file}: {reason}");
        }
        for (id, err) in &report.rejected {
            eprintln!("session {id} not re-admitted: {err}");
        }
        if report.restored == 0 {
            println!("no sessions to resume under {}", opts.checkpoint_dir.as_deref().unwrap());
            return if report.corrupt_quarantined > 0 {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            };
        }
        mak_obs::progress!(
            "resuming {} checkpointed sessions on {} threads…",
            report.restored,
            threads
        );
    } else {
        for s in 0..opts.seeds {
            if let Err(e) = service.submit(
                SessionSpec::new("cli", app, &opts.crawler, opts.seed + s).config(config.clone()),
            ) {
                eprintln!("submit failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        mak_obs::progress!(
            "serving {} concurrent sessions of {} on {app} ({} threads)…",
            service.in_flight(),
            opts.crawler,
            threads
        );
    }
    let started = std::time::Instant::now();
    let done = service.run_to_drain();
    let wall = started.elapsed().as_secs_f64();

    println!(
        "{:>8}  {:>6}  {:>12}  {:>6}  {:>8}",
        "seed", "lines", "interactions", "urls", "virtual"
    );
    for c in &done {
        println!(
            "{:>8}  {:>6}  {:>12}  {:>6}  {:>7.0}s",
            c.report.seed,
            c.report.final_lines_covered,
            c.report.interactions,
            c.report.distinct_urls,
            c.report.elapsed_secs,
        );
    }
    let lines: Vec<f64> = done.iter().map(|c| c.report.final_lines_covered as f64).collect();
    println!(
        "\n{} sessions drained in {wall:.2}s ({:.0} sessions/hour), mean {:.0} lines, {} aborted",
        done.len(),
        if wall > 0.0 { done.len() as f64 / (wall / 3600.0) } else { f64::INFINITY },
        mean(&lines),
        service.aborted(),
    );
    if let Some(path) = &opts.metrics {
        let snapshot = service.metrics().snapshot();
        if let Err(e) = std::fs::write(path, snapshot.to_prometheus()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        let json_path = format!("{path}.json");
        if let Err(e) = std::fs::write(&json_path, snapshot.to_json()) {
            eprintln!("cannot write {json_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("[wrote {path} and {json_path}]");
    }
    if service.aborted() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_fuzz(opts: &Options) -> ExitCode {
    use mak_testkit::fuzz::{replay, run_fuzz, FuzzConfig};

    if let Some(path) = &opts.replay {
        let outcome = match replay(std::path::Path::new(path)) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "replaying {path}: {} on {} (seed {}, {} min, {} pages)",
            outcome.artifact.crawler,
            outcome.artifact.spec.name,
            outcome.artifact.seed,
            outcome.artifact.budget_minutes,
            outcome.artifact.spec.total_pages(),
        );
        println!("recorded violation: {}", outcome.artifact.violation);
        return match outcome.reproduced {
            Some(v) => {
                println!("STILL REPRODUCES: {v}");
                ExitCode::FAILURE
            }
            None => {
                println!("does not reproduce — the underlying bug appears fixed");
                ExitCode::SUCCESS
            }
        };
    }

    let cfg = FuzzConfig {
        apps: opts.apps,
        seeds: opts.seeds,
        base_seed: opts.seed,
        budget_minutes: opts.minutes.unwrap_or(1.0),
        progress: true,
        faults: if opts.chaos {
            mak_browser::fault::FaultPlan::profile("moderate").expect("registered profile")
        } else {
            mak_browser::fault::FaultPlan::none()
        },
        ..FuzzConfig::default()
    };
    println!(
        "fuzzing {} generated apps x {} seeds x {} crawlers ({} min budget each{})",
        cfg.apps,
        cfg.seeds,
        cfg.crawlers.len(),
        cfg.budget_minutes,
        if opts.chaos { ", chaos: moderate faults" } else { "" },
    );
    let outcome = match run_fuzz(&cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fuzz I/O error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{} apps, {} oracle runs", outcome.apps, outcome.runs);
    if outcome.clean() {
        println!("no invariant or differential violations");
        ExitCode::SUCCESS
    } else {
        println!("{} failures; artifacts:", outcome.failures.len());
        for (path, artifact) in &outcome.failures {
            println!("  {}  ({})", path.display(), artifact.violation);
        }
        println!("replay with: mak-cli fuzz --replay <file>");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { return usage() };
    match command.as_str() {
        "apps" => cmd_apps(),
        "crawlers" => cmd_crawlers(),
        "fuzz" => match parse_options(&args[1..]) {
            Ok(opts) => cmd_fuzz(&opts),
            Err(e) => {
                eprintln!("{e}");
                usage()
            }
        },
        "cache" => match (args.get(1).map(String::as_str), args.get(2).map(String::as_str)) {
            (Some("stats"), None) => cmd_cache_stats(false),
            (Some("stats"), Some("--json")) => cmd_cache_stats(true),
            (Some("clear"), None) => cmd_cache_clear(),
            _ => {
                eprintln!("`cache` needs a subcommand: stats [--json] or clear");
                usage()
            }
        },
        "trace" => match (args.get(1).map(String::as_str), args.get(2), args.get(3)) {
            (Some("summarize"), Some(file), None) => cmd_trace_summarize(file),
            (Some("diff"), Some(a), Some(b)) => cmd_trace_diff(a, b),
            (Some("check"), Some(file), None) => cmd_trace_check(file),
            _ => {
                eprintln!(
                    "`trace` needs a subcommand: summarize <file>, diff <a> <b>, or check <file>"
                );
                usage()
            }
        },
        "profile" => {
            let (Some(app), Some(crawler)) = (args.get(1), args.get(2)) else {
                eprintln!("`profile` needs an application and a crawler name");
                return usage();
            };
            match parse_options(&args[3..]) {
                Ok(opts) => cmd_profile(app, crawler, &opts),
                Err(e) => {
                    eprintln!("{e}");
                    usage()
                }
            }
        }
        "crawl" | "compare" | "scan" | "serve" => {
            let Some(app) = args.get(1) else {
                eprintln!("`{command}` needs an application name");
                return usage();
            };
            let opts = match parse_options(&args[2..]) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            match command.as_str() {
                "crawl" => cmd_crawl(app, &opts),
                "scan" => cmd_scan(app, &opts),
                "serve" => cmd_serve(app, &opts),
                _ => cmd_compare(app, &opts),
            }
        }
        _ => usage(),
    }
}
