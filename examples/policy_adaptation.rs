//! Watch Exp3.1 adapt: arm usage per time slice on structurally different
//! applications (§IV-D's motivation — different parts of different apps
//! favor different navigation strategies).
//!
//! ```sh
//! cargo run --release --example policy_adaptation
//! ```

use mak_metrics::trace::{mean_reward_per_action, traced_run};

fn main() {
    for app in ["hotcrp", "wordpress"] {
        println!("=== MAK on {app} (30 virtual minutes, 6 slices) ===");
        let (report, usage) = traced_run("mak", app, 30.0, 11, 6).expect("known crawler and app");

        println!("{:>10} {:>8} {:>8} {:>8}", "slice", "Head", "Tail", "Random");
        for slice in &usage {
            println!(
                "{:>7.0}min {:>7.0}% {:>7.0}% {:>7.0}%",
                slice.start_secs / 60.0,
                100.0 * slice.share("Head"),
                100.0 * slice.share("Tail"),
                100.0 * slice.share("Random"),
            );
        }

        let rewards = mean_reward_per_action(&report.trace);
        print!("mean reward:");
        for (action, reward) in &rewards {
            print!("  {action} {reward:.3}");
        }
        println!(
            "\ncovered {} lines with {} interactions\n",
            report.final_lines_covered, report.interactions
        );
    }
    println!(
        "Reading guide: the arm mix shifts between applications and across time\n\
         within an application — the stateless policy is adapting to whichever\n\
         navigation strategy currently yields link-coverage reward (§IV-D)."
    );
}
