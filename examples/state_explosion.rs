//! Reproduce the paper's Fig. 1 failure modes interactively: watch the
//! WebExplor and QExplore state abstractions manufacture redundant states
//! on the HotCRP and Drupal models.
//!
//! ```sh
//! cargo run --release --example state_explosion
//! ```

use mak::framework::qcrawler::StateAbstraction;
use mak::qexplore::QExploreState;
use mak::webexplor::WebExplorState;
use mak_browser::client::Browser;
use mak_browser::clock::VirtualClock;
use mak_websim::apps;
use mak_websim::dom::Interactable;
use mak_websim::server::AppHost;

fn main() {
    // --- WebExplor + HotCRP aliases (Fig. 1 top) -------------------------
    println!("WebExplor on HotCRP: exact URL matching vs alias links");
    let host = AppHost::new(apps::build("hotcrp").expect("hotcrp model"));
    let mut browser = Browser::new(host, VirtualClock::with_budget_minutes(30.0), 0);
    let hub = browser.navigate(&"http://hotcrp.local/paper/p0".parse().unwrap()).unwrap();

    let mut states = WebExplorState::new();
    let origin = browser.origin().clone();
    let mut shown = 0;
    for el in hub.valid_interactables(&origin) {
        let Interactable::Link { href, .. } = el else { continue };
        if !href.path().starts_with("/paper/p") || href.query().is_empty() {
            continue;
        }
        let page = browser.navigate(href).unwrap();
        let id = states.state_of(&page);
        println!("  {href}  ->  state #{id} (page: {})", page.title());
        shown += 1;
        if shown == 4 {
            break;
        }
    }
    println!("  states created: {} (every alias URL is a \"new\" state)\n", states.state_count());

    // --- QExplore + Drupal shortcuts (Fig. 1 bottom) ---------------------
    println!("QExplore on Drupal: attribute-value hashing vs a mutating page");
    let host = AppHost::new(apps::build("drupal").expect("drupal model"));
    let mut browser = Browser::new(host, VirtualClock::with_budget_minutes(30.0), 0);
    let mut page = browser.navigate(&"http://drupal.local/shortcuts".parse().unwrap()).unwrap();
    let form = page
        .valid_interactables(browser.origin())
        .find(|i| matches!(i, Interactable::Form(_)))
        .cloned()
        .expect("shortcut form");

    let mut states = QExploreState::new();
    for submission in 0..5 {
        let id = states.state_of(&page);
        println!(
            "  submissions: {submission}, elements on page: {}, state #{id}",
            page.interactables().len()
        );
        page = browser.execute(&form).unwrap();
    }
    println!("  states created: {} — unbounded growth from broken links", states.state_count());

    // The links the trap adds really are broken:
    let broken = browser.navigate(&"http://drupal.local/shortcuts/go/s0".parse().unwrap()).unwrap();
    println!("  following an added shortcut: HTTP {}", broken.status());
}
