//! Build your own simulated web application with the blueprint DSL and
//! crawl it — the path a downstream user takes to evaluate crawlers on an
//! app shaped like *their* product.
//!
//! The example assembles a small shop with a breadth-friendly catalog, a
//! depth-friendly checkout wizard, a no-op search, and a stateful cart,
//! then compares MAK against BFS and DFS on it.
//!
//! ```sh
//! cargo run --release --example custom_webapp
//! ```

use mak::baselines::StaticCrawler;
use mak::framework::crawler::Crawler;
use mak::framework::engine::{run_crawl, CrawlReport, EngineConfig};
use mak::mak::MakCrawler;
use mak_websim::apps::blueprint::{Blueprint, BlueprintApp, ModuleKind, ModuleSpec};
use mak_websim::coverage::CoverageMode;
use mak_websim::server::WebApp;

/// The application under test: note that every run needs a fresh instance
/// (server-side sessions are stateful), so we build through a function.
fn my_shop() -> BlueprintApp {
    Blueprint::new("myshop", "myshop.local")
        .coverage_mode(CoverageMode::Live)
        .latency_ms(500.0)
        .bootstrap_lines(120)
        .module(ModuleSpec::new("catalog", ModuleKind::Tree { branching: 4 }, 60, 40))
        .module(ModuleSpec::new("bestsellers", ModuleKind::Hub, 25, 45))
        .module(ModuleSpec::new("checkout", ModuleKind::Chain, 10, 60))
        .module(ModuleSpec::new("cart", ModuleKind::StatefulFlow { stages: 6 }, 1, 50))
        .module(ModuleSpec::new("search", ModuleKind::NoopSearch, 1, 30))
        .module(ModuleSpec::new("payment", ModuleKind::FormBranches { branches: 8 }, 1, 40))
        .build()
}

fn crawl(crawler: &mut dyn Crawler) -> CrawlReport {
    let config = EngineConfig::with_budget_minutes(10.0);
    run_crawl(crawler, Box::new(my_shop()), &config, 7)
}

fn main() {
    let total = my_shop().code_model().total_lines();
    println!(
        "my-shop declares {total} server-side lines across {} pages\n",
        my_shop().page_count()
    );

    let mut mak = MakCrawler::new(7);
    let mut bfs = StaticCrawler::bfs(7);
    let mut dfs = StaticCrawler::dfs(7);

    for (name, report) in
        [("MAK", crawl(&mut mak)), ("BFS", crawl(&mut bfs)), ("DFS", crawl(&mut dfs))]
    {
        println!(
            "{name:4} covered {:5} lines ({:4.1}%) with {} interactions, {} URLs",
            report.final_lines_covered,
            100.0 * report.final_lines_covered as f64 / total as f64,
            report.interactions,
            report.distinct_urls,
        );
    }

    let p = mak.arm_probabilities();
    println!(
        "\nMAK's learned arm mix on this app: Head {:.2} / Tail {:.2} / Random {:.2}",
        p[0], p[1], p[2]
    );
}
