//! Implement the [`WebApp`] trait by hand — no blueprint DSL — and crawl
//! the result. This is the lowest-level way to put an application under
//! the MAK testbed: full control over routing, state, and which code
//! blocks each request covers.
//!
//! The app is a tiny pastebin: a home page, a paste form, per-paste pages,
//! and a "raw" view that only runs once a paste exists.
//!
//! ```sh
//! cargo run --release --example handwritten_app
//! ```

use mak::framework::engine::{run_crawl, EngineConfig};
use mak::mak::MakCrawler;
use mak_websim::coverage::{Block, CodeModel, CoverageMode};
use mak_websim::dom::{Document, Element, Tag};
use mak_websim::http::{Method, Request, Response, Status};
use mak_websim::server::{RequestCtx, WebApp};
use mak_websim::url::Url;

/// A hand-rolled pastebin application.
struct Pastebin {
    model: CodeModel,
    router: Block,
    home: Block,
    create: Block,
    view: Block,
    raw: Block,
}

impl Pastebin {
    fn new() -> Self {
        let mut model = CodeModel::new();
        let file = model.declare_file("pastebin.rs", 200);
        let block = |start, end| Block { file, start, end };
        Pastebin {
            model,
            router: block(1, 30),
            home: block(31, 70),
            create: block(71, 120),
            view: block(121, 170),
            raw: block(171, 200),
        }
    }

    fn page(&self, req: &Request, title: &str, body: Element) -> Response {
        Response::html(Document::new(req.url.clone(), title, body))
    }
}

impl WebApp for Pastebin {
    fn name(&self) -> &str {
        "pastebin"
    }

    fn seed_url(&self) -> Url {
        Url::new("pastebin.local", "/")
    }

    fn code_model(&self) -> &CodeModel {
        &self.model
    }

    fn coverage_mode(&self) -> CoverageMode {
        CoverageMode::Live
    }

    fn base_latency_ms(&self) -> f64 {
        250.0
    }

    fn handle(&self, req: &Request, ctx: &mut RequestCtx<'_>) -> Response {
        ctx.execute(self.router);
        match req.url.path() {
            "/" => {
                ctx.execute(self.home);
                let count = ctx.session().get("pastes");
                let mut body =
                    Element::new(Tag::Body).child(Element::new(Tag::H1).text("pastebin")).child(
                        Element::new(Tag::Form)
                            .attr("action", "/paste")
                            .attr("method", "post")
                            .attr("name", "new-paste")
                            .child(Element::new(Tag::Textarea).attr("name", "content")),
                    );
                let mut list = Element::new(Tag::Ul);
                for i in 0..count {
                    list = list.child(Element::new(Tag::Li).child(
                        Element::new(Tag::A).attr("href", format!("/p?id={i}")).text("paste"),
                    ));
                }
                body = body.child(list);
                self.page(req, "pastebin", body)
            }
            "/paste" if req.method == Method::Post => {
                ctx.execute(self.create);
                ctx.session().add("pastes", 1);
                Response::redirect(self.seed_url())
            }
            "/p" => {
                let id: i64 = req.param("id").and_then(|v| v.parse().ok()).unwrap_or(-1);
                if id >= 0 && id < ctx.session().get("pastes") {
                    ctx.execute(self.view);
                    let body = Element::new(Tag::Body)
                        .child(Element::new(Tag::P).text(format!("paste #{id}")))
                        .child(
                            Element::new(Tag::A).attr("href", format!("/raw?id={id}")).text("raw"),
                        )
                        .child(Element::new(Tag::A).attr("href", "/").text("home"));
                    self.page(req, "paste", body)
                } else {
                    Response::not_found()
                }
            }
            "/raw" => {
                ctx.execute(self.raw);
                let body = Element::new(Tag::Body)
                    .child(Element::new(Tag::P).text("raw paste body"))
                    .child(Element::new(Tag::A).attr("href", "/").text("home"));
                self.page(req, "raw", body)
            }
            _ => {
                let body = Element::new(Tag::Body)
                    .child(Element::new(Tag::A).attr("href", "/").text("home"));
                let doc = Document::new(req.url.clone(), "404", body);
                Response {
                    status: Status::NotFound,
                    body: mak_websim::http::Body::Html(doc),
                    session: None,
                }
            }
        }
    }
}

fn main() {
    let app = Pastebin::new();
    let total = app.code_model().total_lines();

    let mut crawler = MakCrawler::new(5);
    let report = run_crawl(&mut crawler, Box::new(app), &EngineConfig::with_budget_minutes(5.0), 5);

    println!("MAK crawled the hand-written pastebin for 5 virtual minutes:");
    println!(
        "  covered {}/{} lines ({:.1}%)",
        report.final_lines_covered,
        total,
        100.0 * report.final_lines_covered as f64 / total as f64
    );
    println!("  {} interactions, {} distinct URLs", report.interactions, report.distinct_urls);
    assert_eq!(
        report.final_lines_covered, total,
        "every block is reachable: the form creates pastes, pastes link to views"
    );
    println!("  all five handler blocks reached — including the paste-gated view and raw paths");
}
