//! Quickstart: crawl one of the testbed applications with MAK and print a
//! coverage report.
//!
//! ```sh
//! cargo run --release --example quickstart [app] [minutes]
//! ```
//!
//! Defaults to five virtual minutes on PhpBB2. Try `drupal 30` to watch the
//! learned policy pay off on a large application.

use mak::framework::engine::{run_crawl, EngineConfig};
use mak::mak::MakCrawler;
use mak_websim::apps;

fn main() {
    let mut args = std::env::args().skip(1);
    let app_name = args.next().unwrap_or_else(|| "phpbb2".to_owned());
    let minutes: f64 = args.next().and_then(|m| m.parse().ok()).unwrap_or(5.0);

    let Some(app) = apps::build(&app_name) else {
        eprintln!("unknown app `{app_name}`; available: {:?}", apps::all_names());
        std::process::exit(1);
    };
    let total = app.code_model().total_lines();

    println!("Crawling `{app_name}` with MAK for {minutes} virtual minutes…");
    let mut crawler = MakCrawler::new(42);
    let config = EngineConfig::with_budget_minutes(minutes);
    let report = run_crawl(&mut crawler, app, &config, 42);

    println!();
    println!("  interactions performed : {}", report.interactions);
    println!("  distinct URLs gathered : {}", report.distinct_urls);
    println!(
        "  server lines covered   : {} of {} declared ({:.1}%)",
        report.final_lines_covered,
        total,
        100.0 * report.final_lines_covered as f64 / total as f64
    );
    println!("  virtual time consumed  : {:.1} s", report.elapsed_secs);

    if let Some(first) = report.coverage_series.first() {
        let last = report.coverage_series.last().expect("non-empty series");
        println!(
            "  live coverage sampled  : {} points ({}→{} lines)",
            report.coverage_series.len(),
            first.lines,
            last.lines
        );
    }

    // MAK is stateless, but its Exp3.1 policy is inspectable: the learned
    // probabilities of the Head / Tail / Random arms.
    let probs = crawler.arm_probabilities();
    println!(
        "  learned policy         : Head {:.2}, Tail {:.2}, Random {:.2}",
        probs[0], probs[1], probs[2],
    );
}
