//! Use a crawler as a scanner front-end — the paper's §VII future-work
//! integration. Enumerates the attack surface of an application with each
//! crawler, probes for reflected inputs, and shows how crawl coverage
//! drives scanner yield.
//!
//! ```sh
//! cargo run --release --example scanner [app]
//! ```

use mak_scanner::scan::{run_scan, ScanConfig};

fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "wordpress".to_owned());
    let config = ScanConfig::with_minutes(10.0, 5.0);

    println!("Scanning `{app}` (10 min crawl + 5 min probing) with three front-ends:\n");
    println!(
        "{:<10} {:>9} {:>7} {:>6} {:>9} {:>9}",
        "crawler", "endpoints", "params", "forms", "findings", "lines"
    );
    for crawler in ["mak", "webexplor", "qexplore"] {
        let Some(report) = run_scan(crawler, &app, &config, 7) else {
            eprintln!("unknown app `{app}`");
            std::process::exit(1);
        };
        println!(
            "{:<10} {:>9} {:>7} {:>6} {:>9} {:>9}",
            report.crawler,
            report.surface.endpoint_count(),
            report.surface.param_count(),
            report.surface.form_count(),
            report.findings.len(),
            report.lines_covered,
        );
    }

    let report = run_scan("mak", &app, &config, 7).expect("app verified above");
    if report.findings.is_empty() {
        println!("\nNo reflected inputs on this app.");
    } else {
        println!("\nReflected-input findings (MAK front-end):");
        for f in &report.findings {
            match &f.sink {
                mak_scanner::probe::Sink::QueryParam { path, param } => {
                    println!("  GET  {path}?{param}=… echoes its value");
                }
                mak_scanner::probe::Sink::FormField { action, field } => {
                    println!("  POST {action} field `{field}` echoes its value");
                }
            }
        }
    }
}
