//! Compare all six crawlers — MAK, WebExplor, QExplore, BFS, DFS, Random —
//! on one application, like a single column of the paper's evaluation.
//!
//! ```sh
//! cargo run --release --example crawl_comparison [app] [minutes] [seeds]
//! ```

use mak::framework::engine::EngineConfig;
use mak::spec::{build_crawler, CRAWLER_NAMES};
use mak_metrics::experiment::{run_matrix, RunMatrix};
use mak_metrics::ground_truth::UnionCoverage;
use mak_metrics::report::markdown_table;
use mak_metrics::stats::mean;
use mak_websim::apps;

fn main() {
    let mut args = std::env::args().skip(1);
    let app = args.next().unwrap_or_else(|| "oscommerce2".to_owned());
    let minutes: f64 = args.next().and_then(|m| m.parse().ok()).unwrap_or(10.0);
    let seeds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    if apps::build(&app).is_none() {
        eprintln!("unknown app `{app}`; available: {:?}", apps::all_names());
        std::process::exit(1);
    }
    // All names resolve; fail early if the registry ever drifts.
    for name in CRAWLER_NAMES {
        build_crawler(name, 0).expect("registered crawler");
    }

    println!(
        "Running {} crawlers x {seeds} seeds on `{app}` ({minutes} virtual minutes)…",
        CRAWLER_NAMES.len()
    );
    let matrix = RunMatrix::new([app.clone()], CRAWLER_NAMES.iter().copied(), seeds)
        .with_config(EngineConfig::with_budget_minutes(minutes));
    let reports =
        run_matrix(&matrix, std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4));

    let union = UnionCoverage::from_reports(reports.iter());
    let mut rows = Vec::new();
    for crawler in CRAWLER_NAMES {
        let of = |f: &dyn Fn(&mak::framework::engine::CrawlReport) -> f64| -> f64 {
            mean(&reports.iter().filter(|r| &r.crawler == crawler).map(f).collect::<Vec<_>>())
        };
        rows.push(vec![
            (*crawler).to_owned(),
            format!("{:.0}", of(&|r| r.final_lines_covered as f64)),
            format!("{:.1}%", 100.0 * of(&|r| r.final_lines_covered as f64) / union.len() as f64),
            format!("{:.0}", of(&|r| r.interactions as f64)),
            format!("{:.0}", of(&|r| r.distinct_urls as f64)),
        ]);
    }
    println!();
    println!(
        "{}",
        markdown_table(
            &["Crawler", "Mean lines", "% of union GT", "Interactions", "Distinct URLs"],
            &rows
        )
    );
    println!("Union ground truth (§V-B): {} lines.", union.len());
}
