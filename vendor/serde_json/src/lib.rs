//! Minimal, offline stand-in for `serde_json`: renders the vendored
//! `serde::Value` tree to JSON text and parses it back.
//!
//! Floats use Rust's shortest-roundtrip `{:?}` formatting (`1.0`, `0.1`,
//! `1e300`) and non-finite values serialize as `null`, matching the real
//! crate closely enough for the run cache's canonical key material, which
//! only needs the encoding to be deterministic and lossless.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization failure.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` as compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Parses a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = Parser { bytes: s.as_bytes(), pos: 0 }.parse_document()?;
    Ok(T::from_value(&value)?)
}

// ------------------------------------------------------------------ writer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is shortest-roundtrip and always keeps a `.0` or
                // exponent, so floats never re-parse as integers.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_break(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parser

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse_document(mut self) -> Result<Value> {
        let value = self.parse_value(0)?;
        self.skip_whitespace();
        if self.pos != self.bytes.len() {
            return Err(self.fail("trailing characters"));
        }
        Ok(value)
    }

    fn fail(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_whitespace(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_whitespace();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(self.fail("nesting too deep"));
        }
        match self.peek().ok_or_else(|| self.fail("unexpected end of input"))? {
            b'n' => self.parse_keyword("null", Value::Null),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'"' => self.parse_string().map(Value::Str),
            b'[' => self.parse_array(depth),
            b'{' => self.parse_object(depth),
            b'-' | b'0'..=b'9' => self.parse_number(),
            _ => Err(self.fail("unexpected character")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.fail(&format!("expected `{word}`")))
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.fail("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            if self.peek() != Some(b'"') {
                return Err(self.fail("expected object key"));
            }
            let key = self.parse_string()?;
            self.expect(b':')?;
            entries.push((key, self.parse_value(depth + 1)?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.fail("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.fail("invalid UTF-8"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.fail("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let c = if (0xd800..0xdc00).contains(&code) {
                                // Surrogate pair: expect the low half next.
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(self.fail("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let low = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.fail("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.fail("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| self.fail("invalid \\u escape"))?
                            };
                            s.push(c);
                        }
                        _ => return Err(self.fail("unknown escape")),
                    }
                }
                _ => return Err(self.fail("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.fail("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| self.fail("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.fail("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| self.fail("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_collections() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(7)),
            ("b".into(), Value::Float(1.0)),
            ("c".into(), Value::Str("x\n\"\\é".into())),
            ("d".into(), Value::Array(vec![Value::Int(-3), Value::Null, Value::Bool(true)])),
            ("e".into(), Value::Object(vec![])),
        ]);
        let compact = to_string(&ValueWrap(v.clone())).unwrap();
        let parsed = Parser { bytes: compact.as_bytes(), pos: 0 }.parse_document().unwrap();
        assert_eq!(parsed, v);
        let pretty = to_string_pretty(&ValueWrap(v.clone())).unwrap();
        let parsed = Parser { bytes: pretty.as_bytes(), pos: 0 }.parse_document().unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn floats_keep_shortest_roundtrip_form() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let x: f64 = from_str("0.30000000000000004").unwrap();
        assert_eq!(x, 0.1 + 0.2);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<f64>("").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
    }

    struct ValueWrap(Value);

    impl Serialize for ValueWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}
