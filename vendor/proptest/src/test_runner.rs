//! Deterministic case runner and generator RNG.

use std::fmt;

/// A failed property-test case (returned by `prop_assert!`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// The RNG handed to strategies: xoshiro256++ seeded from the test name and
/// case index, so every run of the suite generates identical cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded).
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        TestRng { s }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3])).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` via rejection sampling; `bound` > 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Number of cases per property (override with `PROPTEST_CASES`).
fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(64)
}

/// Runs `case` over deterministic seeds derived from `name`; panics with the
/// case number and seed on the first failure.
pub fn run<F>(name: &str, case: F)
where
    F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a64(name.as_bytes());
    let cases = case_count();
    for i in 0..cases {
        let seed = base ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = TestRng::from_seed(seed);
        if let Err(e) = case(&mut rng) {
            panic!("property `{name}` failed at case {i}/{cases} (seed {seed:#x}): {e}");
        }
    }
}
