//! Minimal, offline property-testing engine exposing the slice of the
//! `proptest` API this workspace uses: the [`Strategy`] trait with
//! `prop_map`, range and tuple strategies, regex-subset string strategies,
//! `proptest::collection::vec`, `proptest::bool::ANY`, and the
//! `proptest!`/`prop_assert!`/`prop_assert_eq!` macros.
//!
//! Unlike upstream proptest the case seed is a pure function of the test
//! name and case index — fully deterministic across runs and machines, no
//! persistence files. Failures report the case number and seed; shrinking
//! is not implemented (the workspace's own testkit shrinks at the blueprint
//! level instead). `PROPTEST_CASES` overrides the per-test case count
//! (default 64).

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Map, Strategy};
pub use test_runner::TestCaseError;

/// Strategies over `bool`.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform `bool` strategy (`proptest::bool::ANY`).
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniform `bool` strategy instance.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A size specification for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a `Vec` strategy with sizes drawn from `size`
    /// (`proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.below((self.size.hi - self.size.lo) as u64) as usize + self.size.lo;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Glob import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($p:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__pt_rng| {
                    $(let $p = $crate::Strategy::generate(&($strat), __pt_rng);)*
                    let mut __pt_case = move || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    __pt_case()
                });
            }
        )*
    };
}

/// Fails the current property-test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current property-test case unless the values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__pt_left, __pt_right) => {
                $crate::prop_assert!(
                    *__pt_left == *__pt_right,
                    "assertion failed: `{:?}` == `{:?}`",
                    __pt_left,
                    __pt_right
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__pt_left, __pt_right) => {
                $crate::prop_assert!(*__pt_left == *__pt_right, $($fmt)*);
            }
        }
    };
}

/// Fails the current property-test case if the values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__pt_left, __pt_right) => {
                $crate::prop_assert!(
                    *__pt_left != *__pt_right,
                    "assertion failed: `{:?}` != `{:?}`",
                    __pt_left,
                    __pt_right
                );
            }
        }
    };
}
