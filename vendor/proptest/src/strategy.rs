//! The [`Strategy`] trait and the built-in strategies: numeric ranges,
//! tuples, `Just`, and regex-subset `&str` string generation.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (`Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    pub(crate) source: S,
    pub(crate) f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $ty)
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $ty)
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.unit_f64() as $ty;
                    let v = self.start + unit * (self.end - self.start);
                    if v >= self.end {
                        <$ty>::from_bits(self.end.to_bits() - 1)
                    } else {
                        v
                    }
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let unit = rng.unit_f64() as $ty;
                    lo + unit * (hi - lo)
                }
            }
        )*
    };
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

// ------------------------------------------------------- string strategies

/// `&str` literals are regex strategies over a pragmatic subset: literals,
/// `.`, escapes, `[a-z0-9_.]` classes, `(...)` groups, and the quantifiers
/// `{m,n}` / `{n}` / `?` / `*` / `+` (the unbounded ones cap at 8 repeats).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pattern = Pattern::compile(self);
        let mut out = String::new();
        pattern.append(rng, &mut out);
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    /// Any char: mostly printable ASCII with occasional exotic characters so
    /// totality tests see control bytes and multi-byte UTF-8 too.
    AnyChar,
    Class(Vec<(char, char)>),
    Group(Vec<Node>),
    Repeat(Box<Node>, u32, u32),
}

#[derive(Debug, Clone)]
struct Pattern {
    nodes: Vec<Node>,
}

impl Pattern {
    fn compile(pattern: &str) -> Pattern {
        let mut chars = pattern.chars().peekable();
        let nodes = Self::parse_sequence(&mut chars, pattern, false);
        Pattern { nodes }
    }

    fn parse_sequence(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
        in_group: bool,
    ) -> Vec<Node> {
        let mut nodes: Vec<Node> = Vec::new();
        while let Some(c) = chars.next() {
            let node = match c {
                ')' if in_group => return nodes,
                '.' => Node::AnyChar,
                '\\' => {
                    let esc = chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling escape in pattern `{pattern}`"));
                    match esc {
                        'd' => Node::Class(vec![('0', '9')]),
                        'w' => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                        'n' => Node::Literal('\n'),
                        't' => Node::Literal('\t'),
                        other => Node::Literal(other),
                    }
                }
                '[' => Node::Class(Self::parse_class(chars, pattern)),
                '(' => Node::Group(Self::parse_sequence(chars, pattern, true)),
                '{' | '?' | '*' | '+' => {
                    let (min, max) = match c {
                        '?' => (0, 1),
                        '*' => (0, 8),
                        '+' => (1, 8),
                        _ => Self::parse_counts(chars, pattern),
                    };
                    let prev = nodes
                        .pop()
                        .unwrap_or_else(|| panic!("quantifier with no atom in `{pattern}`"));
                    nodes.push(Node::Repeat(Box::new(prev), min, max));
                    continue;
                }
                '|' | '^' | '$' => panic!("unsupported regex feature `{c}` in `{pattern}`"),
                literal => Node::Literal(literal),
            };
            nodes.push(node);
        }
        if in_group {
            panic!("unclosed group in pattern `{pattern}`");
        }
        nodes
    }

    fn parse_class(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
    ) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        if chars.peek() == Some(&'^') {
            panic!("negated classes unsupported in `{pattern}`");
        }
        loop {
            let c = chars.next().unwrap_or_else(|| panic!("unclosed class in pattern `{pattern}`"));
            if c == ']' {
                break;
            }
            let c = if c == '\\' {
                chars.next().unwrap_or_else(|| panic!("dangling escape in `{pattern}`"))
            } else {
                c
            };
            if chars.peek() == Some(&'-') {
                let mut ahead = chars.clone();
                ahead.next();
                // A trailing `-` before `]` is a literal dash.
                if ahead.peek() != Some(&']') {
                    chars.next();
                    let hi =
                        chars.next().unwrap_or_else(|| panic!("unclosed range in `{pattern}`"));
                    assert!(c <= hi, "inverted class range in `{pattern}`");
                    ranges.push((c, hi));
                    continue;
                }
            }
            ranges.push((c, c));
        }
        assert!(!ranges.is_empty(), "empty class in `{pattern}`");
        ranges
    }

    fn parse_counts(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
    ) -> (u32, u32) {
        let mut text = String::new();
        for c in chars.by_ref() {
            if c == '}' {
                break;
            }
            text.push(c);
        }
        let parse = |s: &str| -> u32 {
            s.trim().parse().unwrap_or_else(|_| panic!("bad count `{s}` in `{pattern}`"))
        };
        match text.split_once(',') {
            Some((min, max)) => (parse(min), parse(max)),
            None => {
                let n = parse(&text);
                (n, n)
            }
        }
    }

    fn append(&self, rng: &mut TestRng, out: &mut String) {
        for node in &self.nodes {
            Self::append_node(node, rng, out);
        }
    }

    fn append_node(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Literal(c) => out.push(*c),
            Node::AnyChar => out.push(Self::any_char(rng)),
            Node::Class(ranges) => {
                let total: u64 =
                    ranges.iter().map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1).sum();
                let mut pick = rng.below(total);
                for (lo, hi) in ranges {
                    let span = (*hi as u64) - (*lo as u64) + 1;
                    if pick < span {
                        out.push(char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo));
                        break;
                    }
                    pick -= span;
                }
            }
            Node::Group(nodes) => {
                for n in nodes {
                    Self::append_node(n, rng, out);
                }
            }
            Node::Repeat(inner, min, max) => {
                let count = *min as u64 + rng.below((*max - *min) as u64 + 1);
                for _ in 0..count {
                    Self::append_node(inner, rng, out);
                }
            }
        }
    }

    fn any_char(rng: &mut TestRng) -> char {
        match rng.below(100) {
            0..=84 => char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or('x'),
            85..=89 => char::from_u32(rng.below(0x20) as u32).unwrap_or('\u{1}'),
            90..=94 => ['é', 'ß', '中', '🦀', '\u{7f}', '±', '\u{a0}'][rng.below(7) as usize],
            _ => char::from_u32(0x80 + rng.below(0x800) as u32).unwrap_or('ü'),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_and_counts_generate_in_language() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..200 {
            let s = "[a-z0-9]{2,5}".generate(&mut rng);
            assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()), "{s:?}");
        }
    }

    #[test]
    fn groups_escapes_and_optionals_work() {
        let mut rng = TestRng::from_seed(8);
        let mut saw_suffix = false;
        for _ in 0..200 {
            let s = "[a-z]{1,8}(\\.[a-z]{1,5})?".generate(&mut rng);
            if let Some((host, tld)) = s.split_once('.') {
                saw_suffix = true;
                assert!(!host.is_empty() && !tld.is_empty(), "{s:?}");
            }
        }
        assert!(saw_suffix, "optional group should sometimes appear");
    }

    #[test]
    fn dot_generates_varied_chars_deterministically() {
        let a: Vec<String> =
            (0..50).map(|i| ".{0,20}".generate(&mut TestRng::from_seed(i))).collect();
        let b: Vec<String> =
            (0..50).map(|i| ".{0,20}".generate(&mut TestRng::from_seed(i))).collect();
        assert_eq!(a, b, "generation is a pure function of the seed");
        assert!(a.iter().any(|s| !s.is_ascii()), "exotic chars appear");
    }

    #[test]
    fn literal_dash_and_single_count_work() {
        let mut rng = TestRng::from_seed(9);
        let s = "[a-]{4}".generate(&mut rng);
        assert_eq!(s.chars().count(), 4);
        assert!(s.chars().all(|c| c == 'a' || c == '-'), "{s:?}");
    }
}
