//! Concrete generators. [`StdRng`] here is xoshiro256++ — a different (but
//! equally deterministic) stream from upstream `rand`'s ChaCha12-based
//! `StdRng`; nothing in this workspace depends on specific stream values.

use crate::{RngCore, SeedableRng};

/// The workspace's standard seeded generator (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3])).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl StdRng {
    /// The raw xoshiro256++ state words, for checkpointing the stream
    /// position. Feed the result back through [`StdRng::from_state`] to
    /// resume the exact same sequence.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from state captured by [`StdRng::state`].
    ///
    /// # Panics
    ///
    /// Panics if `s` is all zero — that state is unreachable from any seed
    /// and would make xoshiro emit zeros forever.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0; 4], "xoshiro state must not be all zero");
        StdRng { s }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // xoshiro's state must not be all zero; remap that one seed.
        if s == [0; 4] {
            s = [
                0x9e37_79b9_7f4a_7c15,
                0x6a09_e667_f3bc_c909,
                0xbb67_ae85_84ca_a73b,
                0x3c6e_f372_fe94_f82b,
            ];
        }
        StdRng { s }
    }
}
