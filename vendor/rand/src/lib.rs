//! Minimal, API-compatible stand-in for the parts of `rand` 0.8 this
//! workspace uses, vendored so the build works without network access.
//!
//! Scope (see `vendor/README.md`): [`RngCore`], [`SeedableRng`] (with
//! `seed_from_u64`), the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), [`rngs::StdRng`] and the [`distributions::Standard`]
//! distribution. The generator is xoshiro256++ seeded via SplitMix64 —
//! deterministic and high-quality, but **not** the same stream as upstream
//! `rand`'s StdRng (ChaCha12); absolute numbers differ from runs made with
//! the real crate while every determinism property is preserved.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;

use distributions::uniform::SampleRange;
use distributions::{Distribution, Standard};

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// The seed type, a fixed-size byte array.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 —
    /// the same convenience entry point `rand` offers.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander (public only within the crate family).
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let i = rng.gen_range(0usize..7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|s| *s), "all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let x = rng.gen_range(-4.0f64..4.0);
            assert!((-4.0..4.0).contains(&x));
        }
        for _ in 0..1_000 {
            let i = rng.gen_range(3u64..=5);
            assert!((3..=5).contains(&i));
        }
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "~25% expected, got {hits}");
    }
}
