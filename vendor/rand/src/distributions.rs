//! Distributions: the [`Standard`] distribution and uniform range sampling.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Samples one value from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: uniform over the full domain for
/// integers and `bool`, uniform over `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($ty:ty => $via:ident),* $(,)?) => {
        $(impl Distribution<$ty> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.$via() as $ty
            }
        })*
    };
}

standard_int! {
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64, isize => next_u64,
}

pub mod uniform {
    //! Uniform sampling from ranges, powering `Rng::gen_range`.

    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range that `Rng::gen_range` can sample from.
    pub trait SampleRange<T> {
        /// Samples a single value uniformly from `self`.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Uniform `u64` below `span` (exclusive) via rejection sampling, so
    /// every value is exactly equally likely.
    fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = rng.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }

    macro_rules! uniform_int {
        ($($ty:ty),* $(,)?) => {
            $(
                impl SampleRange<$ty> for Range<$ty> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        self.start.wrapping_add(below(rng, span) as $ty)
                    }
                }
                impl SampleRange<$ty> for RangeInclusive<$ty> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let span = (hi as i128 - lo as i128) as u64;
                        if span == u64::MAX {
                            return rng.next_u64() as $ty;
                        }
                        lo.wrapping_add(below(rng, span + 1) as $ty)
                    }
                }
            )*
        };
    }

    uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! uniform_float {
        ($($ty:ty, $unit:expr);* $(;)?) => {
            $(
                impl SampleRange<$ty> for Range<$ty> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let unit: $ty = $unit(rng);
                        let v = self.start + unit * (self.end - self.start);
                        // Guard against rounding up to the excluded endpoint.
                        if v >= self.end {
                            <$ty>::from_bits(self.end.to_bits() - 1)
                        } else {
                            v
                        }
                    }
                }
                impl SampleRange<$ty> for RangeInclusive<$ty> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let unit: $ty = $unit(rng);
                        lo + unit * (hi - lo)
                    }
                }
            )*
        };
    }

    fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    uniform_float! {
        f64, unit_f64;
        f32, unit_f32;
    }
}
