//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the vendored `serde`,
//! written directly against `proc_macro` (no `syn`/`quote`, which are not
//! available offline).
//!
//! Supported input shapes — exactly what this workspace uses:
//! - structs with named fields, optionally with lifetime-only generics
//!   (e.g. `KeyMaterial<'a>`); bounds on generics are rejected
//! - enums whose variants are unit or have named fields (externally tagged:
//!   `Variant` → `"Variant"`, `Variant { .. }` → `{"Variant": {..}}`)
//!
//! No `#[serde(...)]` attributes are supported; none exist in this repo.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;
use std::iter::Peekable;

enum Body {
    /// Named struct fields.
    Struct(Vec<String>),
    /// Enum variants: `(name, None)` for unit, `(name, Some(fields))` for
    /// named-field variants.
    Enum(Vec<(String, Option<Vec<String>>)>),
}

struct Input {
    name: String,
    /// Raw generics text between `<` and `>` (lifetimes only), e.g. `'a`.
    generics: String,
    body: Body,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    expand_serialize(&parsed).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    expand_deserialize(&parsed).parse().expect("generated Deserialize impl parses")
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

fn skip_attributes(iter: &mut Tokens) {
    while let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() != '#' {
            break;
        }
        iter.next();
        iter.next(); // the `[...]` group
    }
}

fn skip_visibility(iter: &mut Tokens) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next(); // pub(crate) etc.
                }
            }
        }
    }
}

fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    skip_attributes(&mut iter);
    skip_visibility(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    if kind != "struct" && kind != "enum" {
        panic!("derive supports only structs and enums, found `{kind}`");
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    let generics = parse_generics(&mut iter);
    let group = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        Some(TokenTree::Ident(id)) if id.to_string() == "where" => {
            panic!("where clauses are not supported by the vendored serde derive")
        }
        other => panic!("expected named-field body for `{name}`, found {other:?}"),
    };
    let body = if kind == "struct" {
        Body::Struct(parse_named_fields(group.stream()))
    } else {
        Body::Enum(parse_variants(group.stream()))
    };
    Input { name, generics, body }
}

fn parse_generics(iter: &mut Tokens) -> String {
    let mut generics = String::new();
    let is_open = matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<');
    if !is_open {
        return generics;
    }
    iter.next();
    let mut depth = 1u32;
    loop {
        match iter.next().expect("unclosed generics") {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                generics.push('<');
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
                generics.push('>');
            }
            TokenTree::Punct(p) if p.as_char() == ':' => {
                panic!("generic bounds are not supported by the vendored serde derive")
            }
            TokenTree::Punct(p) => generics.push(p.as_char()),
            other => {
                generics.push_str(&other.to_string());
                generics.push(' ');
            }
        }
    }
    generics
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, found {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        // Consume the type: everything up to the next comma that is not
        // nested inside angle brackets (groups are single atoms already).
        let mut depth = 0i32;
        loop {
            match iter.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    depth += 1;
                    iter.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth -= 1;
                    iter.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    iter.next();
                    break;
                }
                Some(_) => {
                    iter.next();
                }
            }
        }
        fields.push(name);
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Option<Vec<String>>)> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, found {other:?}"),
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let Some(TokenTree::Group(g)) = iter.next() else { unreachable!() };
                Some(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("tuple variants are not supported by the vendored serde derive")
            }
            _ => None,
        };
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == ',' {
                iter.next();
            }
        }
        variants.push((name, fields));
    }
    variants
}

fn expand_serialize(input: &Input) -> String {
    let Input { name, generics, body } = input;
    let (impl_generics, ty_generics) = if generics.is_empty() {
        (String::new(), String::new())
    } else {
        (format!("<{generics}>"), format!("<{generics}>"))
    };
    let mut out = String::new();
    let _ = write!(
        out,
        "impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{ \
         fn to_value(&self) -> ::serde::Value {{ "
    );
    match body {
        Body::Struct(fields) => {
            out.push_str("::serde::Value::Object(::std::vec![");
            for field in fields {
                let _ = write!(
                    out,
                    "(::std::string::String::from(\"{field}\"), \
                     ::serde::Serialize::to_value(&self.{field})),"
                );
            }
            out.push_str("])");
        }
        Body::Enum(variants) => {
            out.push_str("match self {");
            for (variant, fields) in variants {
                match fields {
                    None => {
                        let _ = write!(
                            out,
                            "{name}::{variant} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{variant}\")),"
                        );
                    }
                    Some(fields) => {
                        let bindings = fields.join(", ");
                        let _ = write!(out, "{name}::{variant} {{ {bindings} }} => ");
                        out.push_str(
                            "::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"",
                        );
                        out.push_str(variant);
                        out.push_str("\"), ::serde::Value::Object(::std::vec![");
                        for field in fields {
                            let _ = write!(
                                out,
                                "(::std::string::String::from(\"{field}\"), \
                                 ::serde::Serialize::to_value({field})),"
                            );
                        }
                        out.push_str("]))]),");
                    }
                }
            }
            out.push('}');
        }
    }
    out.push_str(" } }");
    out
}

fn expand_deserialize(input: &Input) -> String {
    let Input { name, generics, body } = input;
    if !generics.is_empty() {
        panic!("Deserialize derive does not support generics (type `{name}`)");
    }
    let mut out = String::new();
    let _ = write!(
        out,
        "impl ::serde::Deserialize for {name} {{ \
         fn from_value(__v: &::serde::Value) -> \
         ::core::result::Result<Self, ::serde::Error> {{ "
    );
    match body {
        Body::Struct(fields) => {
            let _ = write!(
                out,
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for {name}\"))?; \
                 ::core::result::Result::Ok({name} {{"
            );
            for field in fields {
                let _ = write!(out, "{field}: ::serde::__field(__obj, \"{field}\")?,");
            }
            out.push_str("})");
        }
        Body::Enum(variants) => {
            let units: Vec<_> = variants.iter().filter(|(_, f)| f.is_none()).collect();
            let structs: Vec<_> = variants.iter().filter(|(_, f)| f.is_some()).collect();
            if !units.is_empty() {
                out.push_str("if let ::serde::Value::Str(__s) = __v { match __s.as_str() {");
                for (variant, _) in &units {
                    let _ = write!(
                        out,
                        "\"{variant}\" => return ::core::result::Result::Ok({name}::{variant}),"
                    );
                }
                out.push_str("_ => {} } }");
            }
            if !structs.is_empty() {
                out.push_str(
                    "if let ::serde::Value::Object(__entries) = __v { \
                     if __entries.len() == 1 { \
                     let (__tag, __inner) = &__entries[0]; \
                     match __tag.as_str() {",
                );
                for (variant, fields) in &structs {
                    let fields = fields.as_ref().expect("struct variant");
                    let _ = write!(
                        out,
                        "\"{variant}\" => {{ \
                         let __obj = __inner.as_object().ok_or_else(|| \
                         ::serde::Error::custom(\"expected object for {name}::{variant}\"))?; \
                         return ::core::result::Result::Ok({name}::{variant} {{"
                    );
                    for field in fields {
                        let _ = write!(out, "{field}: ::serde::__field(__obj, \"{field}\")?,");
                    }
                    out.push_str("}); }");
                }
                out.push_str("_ => {} } } }");
            }
            let _ = write!(
                out,
                "::core::result::Result::Err(::serde::Error::custom(\
                 \"no matching variant of {name}\"))"
            );
        }
    }
    out.push_str(" } }");
    out
}
