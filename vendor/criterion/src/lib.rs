//! Minimal, offline benchmarking harness exposing the slice of the
//! `criterion` API this workspace uses: `Criterion::bench_function`,
//! `benchmark_group` (with `sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Under `cargo bench` (the binary receives `--bench`) each benchmark is
//! timed adaptively and a mean ns/iter is printed. Under `cargo test` the
//! harness runs every benchmark body once as a smoke test and prints
//! nothing, keeping the suite fast.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// An id that is just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times closures handed to `Bencher::iter`.
pub struct Bencher {
    bench_mode: bool,
    measured: Option<Duration>,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly and records its mean execution time. In test
    /// mode (no `--bench` argument) `f` runs exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !self.bench_mode {
            let _ = f();
            self.iters = 1;
            return;
        }
        // Warm-up, then double the batch until it takes long enough to time.
        for _ in 0..3 {
            let _ = f();
        }
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                let _ = f();
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(200) || batch >= (1 << 20) {
                self.measured = Some(elapsed);
                self.iters = batch;
                return;
            }
            batch *= 2;
        }
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    bench_mode: bool,
}

impl Criterion {
    /// Builds a driver, detecting bench vs. test mode from the arguments.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion { bench_mode }
    }

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher { bench_mode: self.bench_mode, measured: None, iters: 0 };
        f(&mut bencher);
        if let Some(elapsed) = bencher.measured {
            let per_iter = elapsed.as_nanos() as f64 / bencher.iters.max(1) as f64;
            println!("{id:<50} {per_iter:>14.1} ns/iter ({} iters)", bencher.iters);
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the adaptive timer ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the adaptive timer ignores it.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, &mut f);
        self
    }

    /// Benchmarks one function parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Re-export for code that imports `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a function running a set of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` entry point for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
