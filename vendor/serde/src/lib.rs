//! Minimal, offline stand-in for `serde`: a concrete [`Value`] tree plus
//! [`Serialize`]/[`Deserialize`] traits that convert to and from it. The
//! vendored `serde_json` renders [`Value`] as JSON text. This is not the
//! general serde data model — it is exactly what this workspace needs
//! (named-field structs, externally tagged enums, no attributes).
//!
//! Object fields keep declaration order (`Vec`, not a map), which the run
//! cache relies on for canonical key material.

#![forbid(unsafe_code)]

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing tree of values, mirroring JSON's data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also how non-finite floats serialize).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A negative integer (non-negative integers parse as [`Value::UInt`]).
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; field order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Returns the object entries if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up a field by name if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Errors raised while converting between [`Value`] and typed data.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from any printable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Converts a [`Value`] back into `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Hook for absent object fields; `Option<T>` overrides this to `None`.
    #[doc(hidden)]
    fn from_missing_field(field: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{field}`")))
    }
}

/// Derive-internal helper: looks up `name` in an object's entries.
#[doc(hidden)]
pub fn __field<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
        None => T::from_missing_field(name),
    }
}

// ---------------------------------------------------------------- Serialize

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! serialize_uint {
    ($($ty:ty),*) => {
        $(impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        })*
    };
}

macro_rules! serialize_int {
    ($($ty:ty),*) => {
        $(impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        })*
    };
}

serialize_uint!(u8, u16, u32, u64, usize);
serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

/// A [`Value`] serializes as itself — lets containers hold pre-serialized
/// subtrees (e.g. checkpoint payloads whose shape only the producing type
/// knows how to validate).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// -------------------------------------------------------------- Deserialize

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

fn integer_of(v: &Value) -> Option<i128> {
    match v {
        Value::Int(i) => Some(*i as i128),
        Value::UInt(u) => Some(*u as i128),
        Value::Float(f) if f.fract() == 0.0 && f.abs() < 9e18 => Some(*f as i128),
        _ => None,
    }
}

macro_rules! deserialize_int {
    ($($ty:ty),*) => {
        $(impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = integer_of(v)
                    .ok_or_else(|| Error::custom(format!("expected integer, got {v:?}")))?;
                <$ty>::try_from(i)
                    .map_err(|_| Error::custom(format!("integer {i} out of range")))
            }
        })*
    };
}

deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

/// `&'static str` deserializes by leaking — only used by `CrawlerSpec`,
/// whose tables are tiny and effectively static anyway.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing_field(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::custom(format!("expected 2-element array, got {other:?}"))),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error::custom(format!("expected 3-element array, got {other:?}"))),
        }
    }
}

/// A [`Value`] deserializes as itself (see the matching [`Serialize`] impl).
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
