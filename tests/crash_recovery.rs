//! Crash-kill smoke test: SIGKILL a real `mak-cli serve` process mid-run
//! and prove the survivors resume from their on-disk checkpoints to
//! results bit-identical with an uninterrupted run.
//!
//! The serve-crate tests (`crates/serve/tests/recovery.rs`) drop the
//! service in-process, which exercises the restore path but not the one
//! failure mode checkpoints exist for: the operating system taking the
//! process away mid-write with no destructors run. This test does it for
//! real — a child process, `SIGKILL` (what [`std::process::Child::kill`]
//! sends on Unix), a fresh process recovering from whatever bytes made
//! it to disk.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const CLI: &str = env!("CARGO_BIN_EXE_mak-cli");

/// A scratch checkpoint dir under the system temp dir, scoped to this
/// process so parallel test runs never share state.
fn tmp_ckpt_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mak-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Parses the per-session table `mak-cli serve` prints into
/// `seed -> whole row` (whitespace-normalized). Rows are pure functions
/// of `(app, crawler, seed, config)`, so equal rows mean equal reports.
fn session_rows(stdout: &str) -> BTreeMap<u64, String> {
    let mut rows = BTreeMap::new();
    for line in stdout.lines() {
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() == 5 {
            if let Ok(seed) = fields[0].parse::<u64>() {
                rows.insert(seed, fields.join(" "));
            }
        }
    }
    rows
}

fn any_checkpoint_on_disk(dir: &Path) -> bool {
    let Ok(entries) = std::fs::read_dir(dir) else { return false };
    entries.flatten().any(|e| {
        e.path().extension().is_some_and(|x| x == "ckpt")
            && !e.file_name().to_string_lossy().starts_with('.')
    })
}

#[test]
fn sigkilled_serve_resumes_bit_identically() {
    let dir = tmp_ckpt_dir("sigkill");
    // Enough work that the child cannot finish before we see a
    // checkpoint land: 16 sessions × ~900 virtual steps each, with a
    // checkpoint every 4 steps past each 64-step slice.
    let workload =
        ["serve", "phpbb2", "--crawler", "mak", "--seeds", "16", "--seed", "7", "--minutes", "30"];

    // Ground truth: the same workload, uninterrupted, no durability.
    let truth_out = Command::new(CLI)
        .args(workload)
        .env("MAK_LOG", "off")
        .output()
        .expect("run uninterrupted serve");
    assert!(truth_out.status.success(), "uninterrupted run failed: {truth_out:?}");
    let truth = session_rows(&String::from_utf8_lossy(&truth_out.stdout));
    assert_eq!(truth.len(), 16, "expected one row per seed");

    // Crash run: same workload with checkpoints on; SIGKILL the child
    // the moment the first checkpoint file is visible on disk.
    let mut child = Command::new(CLI)
        .args(workload)
        .args(["--checkpoint-dir", dir.to_str().unwrap(), "--checkpoint-every", "4"])
        .env("MAK_LOG", "off")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve child");
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut saw_checkpoint = false;
    while Instant::now() < deadline {
        if any_checkpoint_on_disk(&dir) {
            saw_checkpoint = true;
            break;
        }
        if child.try_wait().expect("poll child").is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    child.kill().expect("SIGKILL the serve child");
    child.wait().expect("reap the serve child");
    assert!(
        saw_checkpoint || any_checkpoint_on_disk(&dir),
        "the child finished before any checkpoint was written — workload too small"
    );

    // Recovery: a fresh process picks up whatever survived the kill.
    let resumed_out = Command::new(CLI)
        .args(["serve", "phpbb2", "--resume", "--checkpoint-dir", dir.to_str().unwrap()])
        .env("MAK_LOG", "off")
        .output()
        .expect("run resume");
    let resumed_stdout = String::from_utf8_lossy(&resumed_out.stdout);
    assert!(resumed_out.status.success(), "resume failed: {resumed_out:?}");
    assert!(
        !resumed_stdout.contains("no sessions to resume"),
        "SIGKILL landed after a checkpoint existed, so recovery must find work"
    );
    let resumed = session_rows(&resumed_stdout);
    assert!(!resumed.is_empty(), "resume printed no session rows:\n{resumed_stdout}");

    // Every recovered session finishes exactly as if never interrupted.
    // Sessions admitted but killed before their first checkpoint are
    // legitimately absent — the loss window the cadence bounds.
    for (seed, row) in &resumed {
        assert_eq!(Some(row), truth.get(seed), "seed {seed} diverged after crash recovery");
    }

    // Completion consumed the checkpoints; nothing was quarantined.
    assert!(!any_checkpoint_on_disk(&dir), "finished sessions must remove their checkpoints");
    let quarantined = std::fs::read_dir(dir.join("quarantine")).map(|it| it.count()).unwrap_or(0);
    assert_eq!(quarantined, 0, "a clean kill must not quarantine anything");
    let _ = std::fs::remove_dir_all(&dir);
}
