//! Workspace-level observability guarantees:
//!
//! - attaching a sink never changes the [`CrawlReport`] — sinks observe,
//!   they never steer;
//! - the JSONL event stream is byte-identical across reruns and across
//!   thread counts, because events carry only virtual-clock time;
//! - the legacy `record_trace` analyses (`usage_over_time`,
//!   `mean_reward_per_action`) computed from the event stream agree with
//!   the ones computed from the recorded trace, for every crawler.

use mak::framework::engine::{run_crawl, run_crawl_with_sink, CrawlReport, EngineConfig};
use mak::spec::{build_crawler, CRAWLER_NAMES};
use mak_metrics::trace::{events_to_trace, mean_reward_per_action, usage_over_time};
use mak_obs::event::Event;
use mak_obs::sink::{JsonlSink, SinkHandle, VecSink};
use mak_websim::apps;

const APP: &str = "addressbook";
const MINUTES: f64 = 2.0;

fn config() -> EngineConfig {
    EngineConfig::with_budget_minutes(MINUTES)
}

/// Runs one fully instrumented crawl, returning the report and the JSONL
/// byte stream.
fn traced_crawl(crawler: &str, seed: u64) -> (CrawlReport, Vec<u8>) {
    let (handle, cell) = SinkHandle::shared(JsonlSink::new(Vec::new()));
    let mut c = build_crawler(crawler, seed).expect("known crawler");
    let report = run_crawl_with_sink(&mut *c, apps::build(APP).unwrap(), &config(), seed, &handle);
    drop(c);
    drop(handle);
    let Ok(sink) = std::rc::Rc::try_unwrap(cell) else { panic!("all clones dropped") };
    let (bytes, error) = sink.into_inner().finish();
    assert!(error.is_none(), "in-memory writer cannot fail");
    (report, bytes)
}

/// Runs one crawl with a buffering sink, returning the report and events.
fn event_crawl(crawler: &str, seed: u64, record_trace: bool) -> (CrawlReport, Vec<Event>) {
    let mut cfg = config();
    cfg.record_trace = record_trace;
    let (handle, cell) = SinkHandle::shared(VecSink::new());
    let mut c = build_crawler(crawler, seed).expect("known crawler");
    let report = run_crawl_with_sink(&mut *c, apps::build(APP).unwrap(), &cfg, seed, &handle);
    let events = cell.borrow().events().to_vec();
    (report, events)
}

#[test]
fn report_is_identical_with_and_without_a_sink() {
    for crawler in CRAWLER_NAMES {
        let mut plain = build_crawler(crawler, 5).unwrap();
        let baseline = run_crawl(&mut *plain, apps::build(APP).unwrap(), &config(), 5);
        let (observed, events) = event_crawl(crawler, 5, false);
        assert_eq!(baseline, observed, "{crawler}: sink must not alter the report");
        assert!(
            events.iter().any(|e| matches!(e, Event::RunFinished { .. })),
            "{crawler}: instrumented run emitted a stream"
        );
    }
}

#[test]
fn jsonl_stream_is_byte_identical_across_reruns() {
    let (report_a, bytes_a) = traced_crawl("mak", 7);
    let (report_b, bytes_b) = traced_crawl("mak", 7);
    assert_eq!(report_a, report_b);
    assert!(!bytes_a.is_empty());
    assert_eq!(bytes_a, bytes_b, "rerun must reproduce the stream byte-for-byte");
}

#[test]
fn jsonl_stream_is_byte_identical_across_thread_counts() {
    // The MAK_THREADS analogue: the same cells crawled concurrently on
    // worker threads must produce the same per-run streams as crawling
    // them one after another on this thread.
    let cells: Vec<(&str, u64)> = vec![("mak", 1), ("mak", 2), ("bfs", 1), ("random", 3)];
    let sequential: Vec<Vec<u8>> = cells.iter().map(|(c, s)| traced_crawl(c, *s).1).collect();
    let parallel: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> =
            cells.iter().map(|(c, s)| scope.spawn(move || traced_crawl(c, *s).1)).collect();
        handles.into_iter().map(|h| h.join().expect("crawl thread")).collect()
    });
    assert_eq!(sequential, parallel, "thread schedule must not change any stream");
}

#[test]
fn event_stream_reproduces_the_legacy_trace_analyses() {
    for crawler in CRAWLER_NAMES {
        let (report, events) = event_crawl(crawler, 3, true);
        let from_events = events_to_trace(&events);
        assert_eq!(
            report.trace, from_events,
            "{crawler}: StepFinished events must rebuild the recorded trace exactly"
        );
        let horizon = MINUTES * 60.0;
        assert_eq!(
            usage_over_time(&report.trace, horizon, 4),
            usage_over_time(&from_events, horizon, 4),
            "{crawler}: usage_over_time agrees"
        );
        assert_eq!(
            mean_reward_per_action(&report.trace),
            mean_reward_per_action(&from_events),
            "{crawler}: mean_reward_per_action agrees"
        );
    }
}

#[test]
fn stream_carries_only_virtual_time() {
    // Every event's times are derived from the virtual clock, so the
    // stream's final timestamp matches the report's virtual elapsed time
    // and nothing resembles a wall-clock epoch.
    let (report, events) = event_crawl("mak", 11, false);
    let last = events.iter().rev().find_map(|e| match e {
        Event::RunFinished { t_ms, .. } => Some(*t_ms),
        _ => None,
    });
    // `elapsed_secs` is exactly `t_ms / 1000.0`, so compare in seconds to
    // avoid the non-associative `x / 1000 * 1000` round trip.
    assert_eq!(last.map(|t| t / 1000.0), Some(report.elapsed_secs));
}
