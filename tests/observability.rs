//! Workspace-level observability guarantees:
//!
//! - attaching a sink never changes the [`CrawlReport`] — sinks observe,
//!   they never steer;
//! - the JSONL event stream is byte-identical across reruns and across
//!   thread counts, because events carry only virtual-clock time;
//! - the legacy `record_trace` analyses (`usage_over_time`,
//!   `mean_reward_per_action`) computed from the event stream agree with
//!   the ones computed from the recorded trace, for every crawler;
//! - the trace tooling round-trips: a recorded stream reads back
//!   losslessly, `first_divergence` finds nothing between identical-seed
//!   runs and pinpoints an injected perturbation at its exact index, the
//!   flight-recorder rendering is byte-identical across reruns, and every
//!   `Event` variant is covered by the analyzer.

use mak::framework::engine::{run_crawl, run_crawl_with_sink, CrawlReport, EngineConfig};
use mak::spec::{build_crawler, CRAWLER_NAMES};
use mak_metrics::trace::{events_to_trace, mean_reward_per_action, usage_over_time};
use mak_obs::event::Event;
use mak_obs::flight::FlightRecorder;
use mak_obs::sink::{EventSink, JsonlSink, SinkHandle, VecSink};
use mak_obs::trace::{first_divergence, TraceIter};
use mak_websim::apps;

const APP: &str = "addressbook";
const MINUTES: f64 = 2.0;

fn config() -> EngineConfig {
    EngineConfig::with_budget_minutes(MINUTES)
}

/// Runs one fully instrumented crawl, returning the report and the JSONL
/// byte stream.
fn traced_crawl(crawler: &str, seed: u64) -> (CrawlReport, Vec<u8>) {
    let (handle, cell) = SinkHandle::shared(JsonlSink::new(Vec::new()));
    let mut c = build_crawler(crawler, seed).expect("known crawler");
    let report = run_crawl_with_sink(&mut *c, apps::build(APP).unwrap(), &config(), seed, &handle);
    drop(c);
    drop(handle);
    let Ok(sink) = std::sync::Arc::try_unwrap(cell) else { panic!("all clones dropped") };
    let (bytes, error) = sink.into_inner().unwrap_or_else(|p| p.into_inner()).finish();
    assert!(error.is_none(), "in-memory writer cannot fail");
    (report, bytes)
}

/// Runs one crawl with a buffering sink, returning the report and events.
fn event_crawl(crawler: &str, seed: u64, record_trace: bool) -> (CrawlReport, Vec<Event>) {
    let mut cfg = config();
    cfg.record_trace = record_trace;
    let (handle, cell) = SinkHandle::shared(VecSink::new());
    let mut c = build_crawler(crawler, seed).expect("known crawler");
    let report = run_crawl_with_sink(&mut *c, apps::build(APP).unwrap(), &cfg, seed, &handle);
    let events = cell.lock().unwrap().events().to_vec();
    (report, events)
}

#[test]
fn report_is_identical_with_and_without_a_sink() {
    for crawler in CRAWLER_NAMES {
        let mut plain = build_crawler(crawler, 5).unwrap();
        let baseline = run_crawl(&mut *plain, apps::build(APP).unwrap(), &config(), 5);
        let (observed, events) = event_crawl(crawler, 5, false);
        assert_eq!(baseline, observed, "{crawler}: sink must not alter the report");
        assert!(
            events.iter().any(|e| matches!(e, Event::RunFinished { .. })),
            "{crawler}: instrumented run emitted a stream"
        );
    }
}

#[test]
fn jsonl_stream_is_byte_identical_across_reruns() {
    let (report_a, bytes_a) = traced_crawl("mak", 7);
    let (report_b, bytes_b) = traced_crawl("mak", 7);
    assert_eq!(report_a, report_b);
    assert!(!bytes_a.is_empty());
    assert_eq!(bytes_a, bytes_b, "rerun must reproduce the stream byte-for-byte");
}

#[test]
fn jsonl_stream_is_byte_identical_across_thread_counts() {
    // The MAK_THREADS analogue: the same cells crawled concurrently on
    // worker threads must produce the same per-run streams as crawling
    // them one after another on this thread.
    let cells: Vec<(&str, u64)> = vec![("mak", 1), ("mak", 2), ("bfs", 1), ("random", 3)];
    let sequential: Vec<Vec<u8>> = cells.iter().map(|(c, s)| traced_crawl(c, *s).1).collect();
    let parallel: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> =
            cells.iter().map(|(c, s)| scope.spawn(move || traced_crawl(c, *s).1)).collect();
        handles.into_iter().map(|h| h.join().expect("crawl thread")).collect()
    });
    assert_eq!(sequential, parallel, "thread schedule must not change any stream");
}

#[test]
fn event_stream_reproduces_the_legacy_trace_analyses() {
    for crawler in CRAWLER_NAMES {
        let (report, events) = event_crawl(crawler, 3, true);
        let from_events = events_to_trace(&events);
        assert_eq!(
            report.trace, from_events,
            "{crawler}: StepFinished events must rebuild the recorded trace exactly"
        );
        let horizon = MINUTES * 60.0;
        assert_eq!(
            usage_over_time(&report.trace, horizon, 4),
            usage_over_time(&from_events, horizon, 4),
            "{crawler}: usage_over_time agrees"
        );
        assert_eq!(
            mean_reward_per_action(&report.trace),
            mean_reward_per_action(&from_events),
            "{crawler}: mean_reward_per_action agrees"
        );
    }
}

/// Parses a JSONL byte stream back into events, panicking on any error.
fn parse_stream(bytes: &[u8]) -> Vec<Event> {
    TraceIter::new(std::io::BufReader::new(bytes))
        .map(|r| r.expect("recorded stream parses"))
        .collect()
}

#[test]
fn recorded_stream_reads_back_losslessly() {
    let (_, events) = event_crawl("mak", 7, false);
    let (_, bytes) = traced_crawl("mak", 7);
    assert_eq!(parse_stream(&bytes), events, "JSONL round trip is lossless");
}

#[test]
fn identical_seed_runs_have_no_divergence() {
    let (_, bytes_a) = traced_crawl("mak", 9);
    let (_, bytes_b) = traced_crawl("mak", 9);
    assert_eq!(first_divergence(parse_stream(&bytes_a), parse_stream(&bytes_b)), None);
}

#[test]
fn injected_perturbation_is_reported_at_its_exact_index() {
    let (_, events) = event_crawl("mak", 9, false);
    // Perturb one event deep in the stream; diff must name that exact
    // index and echo both payloads.
    let index = events.len() / 2;
    let mut perturbed = events.clone();
    perturbed[index] = Event::EpochAdvanced { epoch: 99, gamma: 0.125 };
    let div = first_divergence(events.clone(), perturbed).expect("streams differ");
    assert_eq!(div.index as usize, index);
    assert_eq!(div.left.as_ref(), Some(&events[index]));
    assert_eq!(div.right, Some(Event::EpochAdvanced { epoch: 99, gamma: 0.125 }));
    let shown = div.to_string();
    assert!(shown.contains(&format!("event #{index}")), "{shown}");
    assert!(shown.contains("\"epoch\":99"), "right payload echoed: {shown}");

    // A truncated stream diverges at the first missing event.
    let div = first_divergence(events.clone(), events[..index].to_vec()).expect("lengths differ");
    assert_eq!(div.index as usize, index);
    assert_eq!(div.right, None, "right stream ended");
}

#[test]
fn flight_rendering_is_byte_identical_across_reruns() {
    let render_of = |bytes: &[u8]| {
        let mut rec = FlightRecorder::new();
        for ev in parse_stream(bytes) {
            rec.on_event(&ev);
        }
        mak_metrics::flight::render(&rec.into_report())
    };
    let (_, bytes_a) = traced_crawl("mak", 13);
    let (_, bytes_b) = traced_crawl("mak", 13);
    let (a, b) = (render_of(&bytes_a), render_of(&bytes_b));
    assert_eq!(a.markdown, b.markdown, "markdown summary must be rerun-identical");
    assert_eq!(a.svgs, b.svgs, "SVG charts must be rerun-identical");
    assert!(!a.markdown.is_empty() && !a.svgs.is_empty());
}

#[test]
fn flight_recorder_covers_every_event_variant() {
    // The exhaustiveness contract: `Event::samples` yields one event per
    // variant (enforced against `ALL_KINDS` in mak-obs), the recorder's
    // wildcard-free match breaks the build if a variant is added without
    // analyzer support, and this test fails if the census misses a kind.
    let mut rec = FlightRecorder::new();
    for ev in Event::samples() {
        rec.on_event(&ev);
    }
    let report = rec.into_report();
    assert_eq!(report.events as usize, Event::ALL_KINDS.len());
    for kind in Event::ALL_KINDS {
        assert_eq!(
            report.events_per_kind.get(kind),
            Some(&1),
            "variant {kind} must be counted by the flight recorder"
        );
    }
    assert_eq!(report.events_per_kind.len(), Event::ALL_KINDS.len(), "no unknown kinds");
}

#[test]
fn pre_span_traces_still_summarize() {
    // Backward compatibility: traces recorded before the span layer
    // existed carry no `SpanClosed` events. They must keep folding and
    // rendering cleanly — the span section is simply omitted, never an
    // error.
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/pre_span_trace.jsonl");
    let mut rec = FlightRecorder::new();
    for ev in mak_obs::trace::read(fixture).expect("fixture opens") {
        rec.on_event(&ev.expect("fixture parses"));
    }
    let report = rec.into_report();
    assert!(report.events > 0, "fixture is a real trace");
    assert!(report.span_phases.is_empty(), "pre-span traces have no span stats");
    let rendered = mak_metrics::flight::render(&report);
    assert!(
        !rendered.markdown.contains("Where the time goes"),
        "span section omitted for span-free traces"
    );
    assert!(rendered.svgs.iter().all(|(suffix, _)| suffix != "phases"));

    // And the CLI front door agrees: `trace summarize` exits zero.
    let out_dir = std::env::temp_dir().join(format!("mak_pre_span_{}", std::process::id()));
    std::fs::create_dir_all(&out_dir).expect("temp out dir");
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_mak-cli"))
        .args(["trace", "summarize", fixture])
        .current_dir(&out_dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("mak-cli runs");
    std::fs::remove_dir_all(&out_dir).ok();
    assert!(status.success(), "summarizing a pre-span trace must not fail");
}

#[test]
fn resumed_traces_check_clean_across_the_splice() {
    // A crash-recovery splice, recorded from a real interrupted run:
    // phpbb2/mak checkpointed at step 10, crashed at step 13, resumed
    // from the checkpoint — so the stream contains a `SessionResumed`
    // marker at which the clock and coverage counters legitimately
    // rewind (the three post-checkpoint steps died with the process and
    // are re-executed after the marker).
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/resumed_trace.jsonl");

    // The flight recorder counts the resume and keeps folding.
    let mut rec = FlightRecorder::new();
    for ev in mak_obs::trace::read(fixture).expect("fixture opens") {
        rec.on_event(&ev.expect("fixture parses"));
    }
    let report = rec.into_report();
    assert_eq!(report.resumes, 1, "exactly one resume marker in the fixture");
    assert!(report.events > 0);

    // The invariant oracle re-baselines at the marker instead of
    // flagging the rewind — and the CLI front door agrees.
    let mut oracle = mak_testkit::oracle::InvariantOracle::new();
    for ev in mak_obs::trace::read(fixture).expect("fixture opens") {
        oracle.on_event(&ev.expect("fixture parses"));
    }
    assert!(oracle.violations().is_empty(), "{:?}", oracle.violations());
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_mak-cli"))
        .args(["trace", "check", fixture])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("mak-cli runs");
    assert!(status.success(), "`trace check` must accept a resumed stream");
}

#[test]
fn stream_carries_only_virtual_time() {
    // Every event's times are derived from the virtual clock, so the
    // stream's final timestamp matches the report's virtual elapsed time
    // and nothing resembles a wall-clock epoch.
    let (report, events) = event_crawl("mak", 11, false);
    let last = events.iter().rev().find_map(|e| match e {
        Event::RunFinished { t_ms, .. } => Some(*t_ms),
        _ => None,
    });
    // `elapsed_secs` is exactly `t_ms / 1000.0`, so compare in seconds to
    // avoid the non-associative `x / 1000 * 1000` round trip.
    assert_eq!(last.map(|t| t / 1000.0), Some(report.elapsed_secs));
}
