//! Property-based tests over the core data structures and invariants,
//! spanning all crates.

use mak::mak::{Arm, LeveledDeque};
use mak_bandit::exp31::Exp31;
use mak_bandit::normalize::{logistic, StandardizedReward};
use mak_bandit::policy::BanditPolicy;
use mak_websim::coverage::{Block, CodeModel, CoverageMode, CoverageTracker};
use mak_websim::dom::Interactable;
use mak_websim::url::Url;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn url_strategy() -> impl Strategy<Value = String> {
    // hosts and paths from a safe alphabet; queries with small keys/values.
    (
        "[a-z]{1,8}(\\.[a-z]{1,5})?",
        proptest::collection::vec("[a-z0-9]{1,6}", 0..4),
        proptest::collection::vec(("[a-z]{1,4}", "[a-z0-9]{0,5}"), 0..4),
    )
        .prop_map(|(host, segments, query)| {
            let mut s = format!("http://{host}/{}", segments.join("/"));
            for (i, (k, v)) in query.iter().enumerate() {
                s.push(if i == 0 { '?' } else { '&' });
                s.push_str(k);
                s.push('=');
                s.push_str(v);
            }
            s
        })
}

proptest! {
    /// Parsing and re-displaying a well-formed URL is the identity.
    #[test]
    fn url_display_roundtrips(s in url_strategy()) {
        let url: Url = s.parse().expect("well-formed by construction");
        let redisplayed = url.to_string();
        let reparsed: Url = redisplayed.parse().expect("display is parseable");
        prop_assert_eq!(url, reparsed);
    }

    /// Normalization is idempotent and insensitive to query order.
    #[test]
    fn url_normalization_is_order_insensitive(
        host in "[a-z]{1,8}",
        path in "[a-z]{1,6}",
        mut query in proptest::collection::vec(("[a-z]{1,4}", "[a-z0-9]{1,4}"), 0..5),
    ) {
        let mut a = Url::new(host.clone(), format!("/{path}"));
        for (k, v) in &query {
            a = a.with_query(k.clone(), v.clone());
        }
        query.reverse();
        let mut b = Url::new(host, format!("/{path}"));
        for (k, v) in &query {
            b = b.with_query(k.clone(), v.clone());
        }
        prop_assert_eq!(a.normalized(), b.normalized());
    }

    /// Exp3.1's policy is always a probability distribution with full
    /// support, no matter what (clamped) rewards an adversary feeds it.
    #[test]
    fn exp31_policy_is_a_distribution(
        rewards in proptest::collection::vec((0usize..4, -1.0f64..2.0), 1..300),
    ) {
        let mut bandit = Exp31::new(4);
        let mut rng = StdRng::seed_from_u64(1);
        for (arm, reward) in rewards {
            let _ = bandit.choose(&mut rng);
            bandit.update(arm, reward);
            let probs = bandit.probabilities();
            let sum: f64 = probs.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            for p in &probs {
                prop_assert!(*p > 0.0 && *p <= 1.0, "full support: {:?}", probs);
            }
        }
    }

    /// The standardized reward transform always lands in [0, 1] and the
    /// logistic function is monotone.
    #[test]
    fn standardized_rewards_stay_in_unit_interval(
        increments in proptest::collection::vec(-1e6f64..1e6, 1..200),
    ) {
        let mut sr = StandardizedReward::new();
        for inc in increments {
            let r = sr.transform(inc);
            prop_assert!((0.0..=1.0).contains(&r), "reward {r}");
        }
    }

    #[test]
    fn logistic_is_monotone(a in -50.0f64..50.0, b in -50.0f64..50.0) {
        if a < b {
            prop_assert!(logistic(a) <= logistic(b));
        }
    }

    /// The leveled deque conserves elements: pops + remaining = pushes, and
    /// elements never change level except by reinsertion at +1.
    #[test]
    fn leveled_deque_conserves_elements(
        ops in proptest::collection::vec((0usize..3, 0u16..500), 1..200),
    ) {
        let mut deque = LeveledDeque::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mut inserted = 0usize;
        let mut popped = 0usize;
        for (arm_idx, path) in ops {
            let arm = Arm::from_index(arm_idx);
            let link = Interactable::Link {
                href: format!("http://h/p{path}").parse().expect("valid"),
                text: String::new(),
            };
            if deque.push_new(&link) {
                inserted += 1;
            }
            if let Some((el, level)) = deque.pop(arm, &mut rng) {
                popped += 1;
                // Reinsert every other pop, at level + 1.
                if popped.is_multiple_of(2) {
                    deque.reinsert(el, level + 1);
                    popped -= 1;
                }
            }
        }
        prop_assert_eq!(deque.len(), inserted - popped);
    }

    /// Coverage tracking: hits are monotone and merging is a commutative
    /// union bounded by the declared size.
    #[test]
    fn coverage_merge_is_commutative_union(
        blocks_a in proptest::collection::vec((1u32..100, 1u32..20), 0..20),
        blocks_b in proptest::collection::vec((1u32..100, 1u32..20), 0..20),
    ) {
        let mut model = CodeModel::new();
        let f = model.declare_file("f.php", 128);
        let fill = |blocks: &[(u32, u32)]| {
            let mut t = CoverageTracker::new(&model, CoverageMode::Live);
            let mut last = 0;
            for &(start, len) in blocks {
                let end = (start + len - 1).min(128);
                t.hit(Block { file: f, start, end });
                let now = t.lines_covered_unchecked();
                assert!(now >= last, "monotone");
                last = now;
            }
            t
        };
        let a = fill(&blocks_a);
        let b = fill(&blocks_b);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.lines_covered_unchecked(), ba.lines_covered_unchecked());
        prop_assert!(ab.lines_covered_unchecked() <= 128);
        prop_assert!(ab.lines_covered_unchecked() >= a.lines_covered_unchecked().max(b.lines_covered_unchecked()));
    }

    /// Element signatures are stable identities: equal signature iff equal
    /// normalized target for links.
    #[test]
    fn link_signatures_follow_normalization(
        q1 in proptest::collection::vec(("[a-z]{1,3}", "[0-9]{1,3}"), 0..3),
        q2 in proptest::collection::vec(("[a-z]{1,3}", "[0-9]{1,3}"), 0..3),
    ) {
        let build = |q: &[(String, String)]| {
            let mut url = Url::new("h", "/p");
            for (k, v) in q {
                url = url.with_query(k.clone(), v.clone());
            }
            Interactable::Link { href: url, text: String::new() }
        };
        let a = build(&q1);
        let b = build(&q2);
        let same_sig = a.signature() == b.signature();
        let same_norm = a.target_url().normalized() == b.target_url().normalized();
        prop_assert_eq!(same_sig, same_norm);
    }
}
