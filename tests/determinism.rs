//! Reproducibility guarantees: every run is a pure function of
//! `(app, crawler, seed, config)`.

use mak::framework::engine::{run_crawl, CrawlReport, EngineConfig};
use mak::spec::{build_crawler, CRAWLER_NAMES};
use mak_websim::apps;

fn run(crawler: &str, app: &str, seed: u64) -> CrawlReport {
    let cfg = EngineConfig::with_budget_minutes(3.0);
    let mut c = build_crawler(crawler, seed).expect("known crawler");
    run_crawl(&mut *c, apps::build(app).expect("known app"), &cfg, seed)
}

#[test]
fn every_crawler_is_deterministic_per_seed() {
    for crawler in CRAWLER_NAMES {
        let a = run(crawler, "vanilla", 9);
        let b = run(crawler, "vanilla", 9);
        assert_eq!(a.final_lines_covered, b.final_lines_covered, "{crawler}");
        assert_eq!(a.interactions, b.interactions, "{crawler}");
        assert_eq!(a.distinct_urls, b.distinct_urls, "{crawler}");
        assert_eq!(a.covered_lines, b.covered_lines, "{crawler}");
        assert_eq!(a.coverage_series, b.coverage_series, "{crawler}");
    }
}

#[test]
fn seeds_change_stochastic_crawlers() {
    let a = run("random", "phpbb2", 1);
    let b = run("random", "phpbb2", 2);
    assert!(
        a.covered_lines != b.covered_lines || a.interactions != b.interactions,
        "different seeds should explore differently"
    );
}

#[test]
fn app_models_are_identical_across_instantiations() {
    for name in apps::all_names() {
        let x = apps::build(name).unwrap();
        let y = apps::build(name).unwrap();
        assert_eq!(x.code_model().total_lines(), y.code_model().total_lines(), "{name}");
        assert_eq!(x.seed_url(), y.seed_url(), "{name}");
        assert_eq!(x.coverage_mode(), y.coverage_mode(), "{name}");
    }
}

#[test]
fn engine_budget_is_respected() {
    let report = run("mak", "addressbook", 4);
    // The run may overshoot only by the cost of its final in-flight step.
    assert!(report.elapsed_secs >= 0.95 * 180.0, "budget mostly used: {}", report.elapsed_secs);
    assert!(report.elapsed_secs <= 190.0, "no runaway: {}", report.elapsed_secs);
}
