//! End-to-end integration: the full measurement pipeline from run matrix to
//! Table-II-style numbers, across all five crates.

use mak::framework::engine::EngineConfig;
use mak_metrics::experiment::{run_matrix, RunMatrix};
use mak_metrics::ground_truth::UnionCoverage;
use mak_metrics::regret::{cumulative_regret, AppOutcome};
use mak_metrics::report::{from_json, to_json, RunSummary};
use mak_metrics::stats::mean;
use std::collections::BTreeMap;

fn small_matrix(apps: &[&str], crawlers: &[&str]) -> RunMatrix {
    RunMatrix::new(apps.iter().copied(), crawlers.iter().copied(), 2)
        .with_config(EngineConfig::with_budget_minutes(3.0))
}

#[test]
fn pipeline_produces_coherent_table2_cell() {
    let matrix = small_matrix(&["addressbook"], &["mak", "webexplor"]);
    let reports = run_matrix(&matrix, 4);
    assert_eq!(reports.len(), 4);

    let union = UnionCoverage::from_reports(reports.iter());
    assert!(!union.is_empty());
    for r in &reports {
        let cov = union.coverage_of(r);
        assert!((0.0..=1.0).contains(&cov), "coverage {cov} out of range");
        assert_eq!(r.covered_lines.len() as u64, r.final_lines_covered);
    }

    // Per-crawler means are comparable and MAK is at least competitive on
    // the smallest app even at this tiny budget.
    let mean_of = |name: &str| {
        mean(
            &reports
                .iter()
                .filter(|r| r.crawler == name)
                .map(|r| union.coverage_of(r))
                .collect::<Vec<_>>(),
        )
    };
    assert!(mean_of("mak") >= mean_of("webexplor") * 0.9);
}

#[test]
fn regret_pipeline_runs_over_multiple_apps() {
    let matrix = small_matrix(&["addressbook", "vanilla"], &["bfs", "dfs"]);
    let reports = run_matrix(&matrix, 4);

    let mut outcomes = Vec::new();
    for app in ["addressbook", "vanilla"] {
        let app_reports: Vec<_> = reports.iter().filter(|r| r.app == app).collect();
        let union = UnionCoverage::from_reports(app_reports.iter().copied());
        let mut runs: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for r in &app_reports {
            runs.entry(r.crawler.clone()).or_default().push(r.final_lines_covered as f64);
        }
        outcomes.push(AppOutcome::from_runs(app, &runs, union.len() as f64));
    }
    let cumulative = cumulative_regret(&outcomes);
    assert_eq!(cumulative.len(), 2);
    assert!(cumulative[0].1 <= cumulative[1].1, "sorted ascending");
    assert!(cumulative.iter().all(|(_, r)| *r >= 0.0));
}

#[test]
fn summaries_roundtrip_through_json() {
    let matrix = small_matrix(&["retroboard"], &["mak"]);
    let reports = run_matrix(&matrix, 2);
    let summaries: Vec<RunSummary> = reports.iter().map(RunSummary::from).collect();
    let json = to_json(&summaries).expect("serialize");
    let back = from_json(&json).expect("deserialize");
    assert_eq!(summaries, back);
    assert!(back.iter().all(|s| s.app == "retroboard" && s.final_lines_covered > 0));
}

#[test]
fn node_apps_report_totals_and_hide_live_series() {
    let matrix = small_matrix(&["docmost"], &["bfs"]);
    let reports = run_matrix(&matrix, 2);
    for r in &reports {
        assert!(r.coverage_series.is_empty(), "coverage-node has no live view");
        assert!(r.total_declared_lines > r.final_lines_covered, "dead code exists");
    }
}
