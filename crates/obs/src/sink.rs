//! Sinks: where events go.
//!
//! Two handle types cover the two emission regimes in the workspace:
//!
//! - [`SinkHandle`] — `Arc<Mutex<_>>`-based, cloneable, `Send + Sync`,
//!   for the per-run path (engine → browser → host → crawler → policy
//!   all share one handle). Each crawl session owns its handle
//!   exclusively, so the mutex is uncontended; it exists so a
//!   [`Session`](../../mak/framework/session/struct.Session.html) holding
//!   the handle can migrate between scheduler worker threads. Defaults
//!   to inert; `emit_with` is lazy so an inert handle costs one
//!   `Option` check per call site.
//! - [`SharedSink`] — also `Arc<Mutex<_>>`-based, for emitters shared
//!   *by reference* across threads (the run cache and the bench matrix
//!   runner, which execute cells on worker threads).
//!
//! Concrete sinks: [`JsonlSink`] (one event per line, deterministic
//! because events carry only virtual time), [`VecSink`] (buffering, for
//! tests and collectors), [`Fanout`] (duplicate a stream into several
//! handles), plus [`crate::aggregate::Aggregator`].

use crate::event::Event;
use crate::span::{Phase, SpanState, SpanToken};
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A consumer of [`Event`]s. Implementations must not feed anything back
/// into crawl state — sinks observe, they never steer.
pub trait EventSink {
    /// Consume one event.
    fn on_event(&mut self, event: &Event);
}

/// A cloneable, possibly-inert handle to a per-run sink.
///
/// The default handle is inert: `is_active()` is `false` and both emit
/// methods are no-ops. All crawl-path emission sites go through
/// [`SinkHandle::emit_with`] so that event construction is skipped when
/// nobody listens. The handle is `Send + Sync` so that a crawl session
/// owning one can migrate between scheduler worker threads; within a
/// run the handle is never contended, so the mutex lock is a plain
/// uncontended atomic.
#[derive(Clone, Default)]
pub struct SinkHandle {
    inner: Option<Arc<Mutex<dyn EventSink + Send>>>,
    /// Hierarchical-span bookkeeping, present only after
    /// [`SinkHandle::with_spans`]. Clones share it, so every
    /// instrumentation site holding a clone of one run's handle links
    /// its spans into one tree. `None` by default: every span method is
    /// then a single branch, keeping uninstrumented runs at zero cost.
    spans: Option<Arc<Mutex<SpanState>>>,
}

impl SinkHandle {
    /// The inert handle: every emit is a no-op.
    pub fn none() -> Self {
        SinkHandle { inner: None, spans: None }
    }

    /// Wraps a sink, consuming it. Use [`SinkHandle::shared`] when the
    /// sink must be read back after the run.
    pub fn new<S: EventSink + Send + 'static>(sink: S) -> Self {
        SinkHandle { inner: Some(Arc::new(Mutex::new(sink))), spans: None }
    }

    /// Wraps a sink and also returns the shared cell so the caller can
    /// inspect it after the run (handles cloned into crawlers may
    /// outlive the run, so sole-ownership unwrapping is not an option).
    pub fn shared<S: EventSink + Send + 'static>(sink: S) -> (Self, Arc<Mutex<S>>) {
        let cell = Arc::new(Mutex::new(sink));
        let dynamic: Arc<Mutex<dyn EventSink + Send>> = cell.clone();
        (SinkHandle { inner: Some(dynamic), spans: None }, cell)
    }

    /// Fans one stream out to every given handle (inert ones are
    /// dropped; an all-inert fanout collapses to the inert handle).
    /// Span state is not carried over — call [`SinkHandle::with_spans`]
    /// on the result to profile a fanned-out run.
    pub fn fanout(handles: Vec<SinkHandle>) -> Self {
        let live: Vec<SinkHandle> = handles.into_iter().filter(SinkHandle::is_active).collect();
        match live.len() {
            0 => SinkHandle::none(),
            1 => live.into_iter().next().expect("len checked"),
            _ => SinkHandle::new(Fanout { targets: live }),
        }
    }

    /// Whether a sink is attached.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Enables hierarchical span collection on this handle (see
    /// [`crate::span`]). A no-op on an inert handle — spans without a
    /// sink would have nowhere to go. Clones made *after* this call
    /// share the span stack; instrumentation sites holding such clones
    /// link their spans into one tree per run.
    pub fn with_spans(mut self) -> Self {
        if self.inner.is_some() {
            self.spans = Some(Arc::new(Mutex::new(SpanState::default())));
        }
        self
    }

    /// Whether span collection is enabled.
    pub fn spans_active(&self) -> bool {
        self.spans.is_some()
    }

    /// The span allocator's `(next_id, latched now_ms)`, for
    /// checkpointing; `None` without span collection. Call only between
    /// steps, when no span is open.
    pub fn span_snapshot(&self) -> Option<(u64, f64)> {
        let state = self.spans.as_ref()?;
        let guard = match state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        Some(guard.snapshot())
    }

    /// Enables span collection with the allocator seeded from a
    /// checkpoint, so ids continue exactly where the interrupted run's
    /// left off and post-resume `SpanClosed` events are byte-identical
    /// to the uninterrupted run's. A no-op on an inert handle, like
    /// [`SinkHandle::with_spans`].
    pub fn with_spans_restored(mut self, next_id: u64, now_ms: f64) -> Self {
        if self.inner.is_some() {
            self.spans = Some(Arc::new(Mutex::new(SpanState::restore(next_id, now_ms))));
        }
        self
    }

    /// Opens a span of `phase` starting at virtual `start_ms`, nested
    /// under the innermost open span. Returns the token to pass to
    /// [`SinkHandle::span_close`]; inert (span-less) handles return an
    /// inert token and the whole pair is two branches.
    pub fn span_open(&self, phase: Phase, start_ms: f64) -> SpanToken {
        let Some(state) = &self.spans else { return SpanToken::INERT };
        let mut guard = match state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let (id, parent) = guard.open(start_ms);
        SpanToken { id, parent, phase, start_ms }
    }

    /// Closes an open span at virtual `end_ms`, emitting one
    /// [`Event::SpanClosed`]. Tolerates out-of-order closes (the stack
    /// unwinds to the token) and inert tokens (no-op).
    pub fn span_close(&self, token: SpanToken, end_ms: f64) {
        if !token.is_active() {
            return;
        }
        if let Some(state) = &self.spans {
            let mut guard = match state.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.close(token.id, end_ms);
        }
        self.emit_with(|| Event::SpanClosed {
            id: token.id,
            parent: token.parent,
            phase: token.phase.as_str().to_owned(),
            t_ms: token.start_ms,
            dur_ms: (end_ms - token.start_ms).max(0.0),
        });
    }

    /// Emits a leaf span (`[start_ms, start_ms + dur_ms]`) under the
    /// innermost open span, without touching the stack — the form the
    /// browser uses for the arithmetic sub-intervals of one cost charge.
    pub fn span_leaf(&self, phase: Phase, start_ms: f64, dur_ms: f64) {
        let Some(state) = &self.spans else { return };
        let (id, parent) = {
            let mut guard = match state.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.leaf(start_ms + dur_ms)
        };
        self.emit_with(|| Event::SpanClosed {
            id,
            parent,
            phase: phase.as_str().to_owned(),
            t_ms: start_ms,
            dur_ms,
        });
    }

    /// Emits a zero-duration span at the latched virtual time — for
    /// instrumentation sites with no clock of their own (Exp3.1).
    pub fn span_instant(&self, phase: Phase) {
        let Some(state) = &self.spans else { return };
        let (id, parent, now) = {
            let mut guard = match state.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            let now = guard.now_ms();
            let (id, parent) = guard.leaf(now);
            (id, parent, now)
        };
        self.emit_with(|| Event::SpanClosed {
            id,
            parent,
            phase: phase.as_str().to_owned(),
            t_ms: now,
            dur_ms: 0.0,
        });
    }

    /// Latches the virtual clock for [`SinkHandle::span_instant`]
    /// emitters. Clock holders call this after advancing.
    pub fn span_set_now(&self, t_ms: f64) {
        let Some(state) = &self.spans else { return };
        let mut guard = match state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.set_now(t_ms);
    }

    /// Emits an already-built event.
    pub fn emit(&self, event: Event) {
        if let Some(sink) = &self.inner {
            deliver(sink, &event);
        }
    }

    /// Emits lazily: `make` runs only when a sink is attached. This is
    /// the form every crawl-path call site uses, so the no-sink cost is
    /// a single branch.
    pub fn emit_with<F: FnOnce() -> Event>(&self, make: F) {
        if let Some(sink) = &self.inner {
            let event = make();
            deliver(sink, &event);
        }
    }
}

/// Locks a sink cell and delivers one event, tolerating poison: a
/// panicked emitter on some other session must not cascade into this
/// one's observability.
fn deliver(sink: &Arc<Mutex<dyn EventSink + Send>>, event: &Event) {
    let mut guard = match sink.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    guard.on_event(event);
}

impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_active() { "SinkHandle(active)" } else { "SinkHandle(inert)" })
    }
}

/// A cloneable, possibly-inert handle to a sink shared across threads.
///
/// Used where the emitter itself is shared by `&self` across worker
/// threads: the run cache (`CacheHit`/`CacheMiss`) and the bench matrix
/// runner (`CellFinished`).
#[derive(Clone, Default)]
pub struct SharedSink {
    inner: Option<Arc<Mutex<dyn EventSink + Send>>>,
}

impl SharedSink {
    /// The inert handle.
    pub fn none() -> Self {
        SharedSink { inner: None }
    }

    /// Wraps a sink and returns both the handle and the shared cell for
    /// post-run inspection.
    pub fn shared<S: EventSink + Send + 'static>(sink: S) -> (Self, Arc<Mutex<S>>) {
        let cell = Arc::new(Mutex::new(sink));
        let dynamic: Arc<Mutex<dyn EventSink + Send>> = cell.clone();
        (SharedSink { inner: Some(dynamic) }, cell)
    }

    /// Whether a sink is attached.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Emits lazily; tolerant of a poisoned lock (a panicked worker must
    /// not cascade into observability).
    pub fn emit_with<F: FnOnce() -> Event>(&self, make: F) {
        if let Some(sink) = &self.inner {
            let event = make();
            let mut guard = match sink.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.on_event(&event);
        }
    }
}

impl fmt::Debug for SharedSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_active() { "SharedSink(active)" } else { "SharedSink(inert)" })
    }
}

/// Duplicates every event into each target handle.
struct Fanout {
    targets: Vec<SinkHandle>,
}

impl EventSink for Fanout {
    fn on_event(&mut self, event: &Event) {
        for target in &self.targets {
            if let Some(sink) = &target.inner {
                deliver(sink, event);
            }
        }
    }
}

/// Writes one JSON object per line. Streams are bit-identical across
/// reruns of the same `(app, crawler, seed, config)` because events
/// carry only virtual-clock time.
///
/// I/O errors are latched (first one wins) rather than panicking
/// mid-crawl; callers check [`JsonlSink::error`] after the run.
pub struct JsonlSink<W: Write> {
    out: W,
    lines: u64,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps any writer (a `BufWriter<File>`, a `Vec<u8>`, …).
    pub fn new(out: W) -> Self {
        JsonlSink { out, lines: 0, error: None }
    }

    /// Number of lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// The first I/O error hit, if any.
    pub fn error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Flushes and returns the writer; the second element is the latched
    /// error, if any.
    pub fn finish(mut self) -> (W, Option<std::io::Error>) {
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
            }
        }
        (self.out, self.error)
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn on_event(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        let line = serde_json::to_string(event).expect("Event serializes");
        let write = self.out.write_all(line.as_bytes()).and_then(|()| self.out.write_all(b"\n"));
        match write {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

/// Buffers every event in order. The workhorse of the determinism tests
/// and of bench-side collectors.
#[derive(Debug, Default)]
pub struct VecSink {
    events: Vec<Event>,
}

impl VecSink {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// All events seen so far, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consumes the sink, returning the buffer.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

impl EventSink for VecSink {
    fn on_event(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(step: u64) -> Event {
        Event::StepStarted { step, t_ms: step as f64 * 10.0, policy_ms: 2.0 }
    }

    #[test]
    fn sink_handle_is_send_and_sync() {
        // Crawl sessions own a SinkHandle and migrate between scheduler
        // worker threads; the handle must therefore be Send + Sync.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SinkHandle>();
    }

    #[test]
    fn handle_crosses_threads_with_its_session() {
        let (handle, cell) = SinkHandle::shared(VecSink::new());
        let moved = handle.clone();
        std::thread::spawn(move || moved.emit(step(7))).join().unwrap();
        handle.emit(step(8));
        assert_eq!(cell.lock().unwrap().events(), &[step(7), step(8)]);
    }

    #[test]
    fn inert_handle_never_builds_the_event() {
        let handle = SinkHandle::none();
        assert!(!handle.is_active());
        handle.emit_with(|| panic!("must not be called"));
    }

    #[test]
    fn vec_sink_buffers_in_order() {
        let (handle, cell) = SinkHandle::shared(VecSink::new());
        for i in 0..3 {
            handle.emit(step(i));
        }
        let events = cell.lock().unwrap().events().to_vec();
        assert_eq!(events, vec![step(0), step(1), step(2)]);
    }

    #[test]
    fn fanout_duplicates_and_collapses() {
        let (a, cell_a) = SinkHandle::shared(VecSink::new());
        let (b, cell_b) = SinkHandle::shared(VecSink::new());
        let fan = SinkHandle::fanout(vec![a, SinkHandle::none(), b]);
        fan.emit(step(1));
        assert_eq!(cell_a.lock().unwrap().events().len(), 1);
        assert_eq!(cell_b.lock().unwrap().events().len(), 1);
        assert!(!SinkHandle::fanout(vec![SinkHandle::none()]).is_active());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.on_event(&step(0));
        sink.on_event(&step(1));
        assert_eq!(sink.lines(), 2);
        let (bytes, err) = sink.finish();
        assert!(err.is_none());
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            let _: Event = serde_json::from_str(line).expect("each line parses");
        }
    }

    #[test]
    fn spans_are_inert_unless_enabled() {
        // Without with_spans(), every span method is a no-op branch:
        // no events, inert tokens, nothing to unwind.
        let (handle, cell) = SinkHandle::shared(VecSink::new());
        assert!(!handle.spans_active());
        let token = handle.span_open(Phase::Step, 0.0);
        assert!(!token.is_active());
        handle.span_leaf(Phase::Render, 0.0, 10.0);
        handle.span_instant(Phase::BanditChoose);
        handle.span_close(token, 50.0);
        assert!(cell.lock().unwrap().events().is_empty());

        // with_spans() on an inert handle stays inert.
        assert!(!SinkHandle::none().with_spans().spans_active());
    }

    #[test]
    fn spans_nest_and_emit_on_close() {
        let (handle, cell) = SinkHandle::shared(VecSink::new());
        let handle = handle.with_spans();
        assert!(handle.spans_active());

        let outer = handle.span_open(Phase::Step, 0.0);
        handle.span_leaf(Phase::PolicyChoose, 0.0, 2.0);
        let inner = handle.span_open(Phase::ExecuteAction, 2.0);
        handle.span_close(inner, 40.0);
        handle.span_close(outer, 50.0);

        let events = cell.lock().unwrap().events().to_vec();
        let spans: Vec<(u64, u64, String, f64, f64)> = events
            .iter()
            .map(|e| match e {
                Event::SpanClosed { id, parent, phase, t_ms, dur_ms } => {
                    (*id, *parent, phase.clone(), *t_ms, *dur_ms)
                }
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        // Children close (and emit) before their parents; ids are
        // allocated in open order, parents follow the stack.
        assert_eq!(
            spans,
            vec![
                (2, 1, "PolicyChoose".into(), 0.0, 2.0),
                (3, 1, "ExecuteAction".into(), 2.0, 38.0),
                (1, 0, "Step".into(), 0.0, 50.0),
            ]
        );
    }

    #[test]
    fn clones_share_one_span_tree() {
        let (handle, cell) = SinkHandle::shared(VecSink::new());
        let handle = handle.with_spans();
        let clone = handle.clone();

        let outer = handle.span_open(Phase::Step, 0.0);
        clone.span_leaf(Phase::Render, 0.0, 5.0); // nested via the clone
        handle.span_close(outer, 10.0);

        let events = cell.lock().unwrap().events().to_vec();
        match &events[0] {
            Event::SpanClosed { id, parent, .. } => {
                assert_eq!((*id, *parent), (2, 1), "clone's leaf nests under the open span");
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn span_instant_uses_the_latched_clock() {
        let (handle, cell) = SinkHandle::shared(VecSink::new());
        let handle = handle.with_spans();
        handle.span_set_now(123.5);
        handle.span_instant(Phase::RewardUpdate);
        let events = cell.lock().unwrap().events().to_vec();
        match &events[0] {
            Event::SpanClosed { phase, t_ms, dur_ms, .. } => {
                assert_eq!(phase, "RewardUpdate");
                assert_eq!(*t_ms, 123.5);
                assert_eq!(*dur_ms, 0.0);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn shared_sink_emits_across_threads() {
        let (shared, cell) = SharedSink::shared(VecSink::new());
        std::thread::scope(|scope| {
            for i in 0..4 {
                let shared = shared.clone();
                scope.spawn(move || {
                    shared.emit_with(|| Event::CacheMiss {
                        app: format!("app{i}"),
                        crawler: "mak".into(),
                        seed: i,
                    });
                });
            }
        });
        assert_eq!(cell.lock().unwrap().events().len(), 4);
    }
}
