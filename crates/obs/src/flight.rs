//! The flight recorder: folding one run's event stream into an
//! analysis-ready report.
//!
//! [`FlightRecorder`] is an [`EventSink`] (attach it live) that doubles as
//! an offline analyzer (feed it a recorded trace via
//! [`crate::trace::TraceIter`]). It folds the stream into a
//! [`FlightReport`] carrying the trajectories the paper's §V-C/§V-D
//! analyses need, regenerable from a trace file alone:
//!
//! - **arm-usage timeline** — every bandit arm choice with the virtual
//!   time it was made at;
//! - **coverage waterfall** — `(t, lines)` after every step, annotated
//!   with Exp3.1 epoch advances;
//! - **cost breakdown** — virtual milliseconds attributed to the
//!   fetch/think/interact/policy cost-model buckets;
//! - **reward distribution per arm** — count/mean/min/max of the rewards
//!   each arm earned;
//! - **deque-depth trajectory** — leveled-deque occupancy over time.
//!
//! The `match` in [`FlightRecorder::on_event`] is deliberately
//! wildcard-free: adding an [`Event`] variant without deciding how the
//! analyzer treats it is a compile error, not a silent gap (the
//! workspace's observability tests additionally assert every variant of
//! [`Event::ALL_KINDS`] is folded).

use crate::aggregate::{BudgetProfile, RewardStats};
use crate::event::Event;
use crate::sink::EventSink;
use std::collections::BTreeMap;

/// One bandit arm choice on the virtual timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmChoice {
    /// Virtual milliseconds at the step the choice was made in.
    pub t_ms: f64,
    /// The chosen arm label.
    pub arm: String,
}

/// One point of the coverage waterfall.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoveragePoint {
    /// Virtual milliseconds.
    pub t_ms: f64,
    /// Server-side lines covered.
    pub lines: u64,
}

/// One Exp3.1 epoch advance, as a waterfall annotation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochMark {
    /// Virtual milliseconds at the step the advance happened in.
    pub t_ms: f64,
    /// The epoch advanced *to*.
    pub epoch: u32,
    /// The new exploration rate.
    pub gamma: f64,
}

/// One point of the deque-depth trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DequePoint {
    /// Virtual milliseconds.
    pub t_ms: f64,
    /// Total deque occupancy.
    pub len: u64,
}

/// Aggregate statistics for one span phase — one row of the "where the
/// time goes" table.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStat {
    /// Spans of this phase closed.
    pub count: u64,
    /// Total duration, in ms (virtual inside a crawl).
    pub total_ms: f64,
}

/// Everything [`FlightRecorder`] extracts from one run's event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlightReport {
    /// Application name (from `RunStarted`; empty if the trace lacks one).
    pub app: String,
    /// Crawler name.
    pub crawler: String,
    /// Run seed.
    pub seed: u64,
    /// Virtual budget in milliseconds.
    pub budget_ms: f64,
    /// Total events folded in.
    pub events: u64,
    /// Events per variant kind (sorted by kind).
    pub events_per_kind: BTreeMap<&'static str, u64>,
    /// Completed steps.
    pub steps: u64,
    /// Final interaction count.
    pub interactions: u64,
    /// Final covered lines.
    pub lines: u64,
    /// Final distinct-URL count.
    pub distinct_urls: u64,
    /// Virtual clock at the end of the stream (ms).
    pub elapsed_ms: f64,
    /// Pages fetched.
    pub pages: u64,
    /// Redirect hops followed.
    pub redirects: u64,
    /// Coverage-growing requests observed server-side.
    pub coverage_deltas: u64,
    /// Cache hits seen in the stream (bench-side traces only).
    pub cache_hits: u64,
    /// Cache misses seen in the stream.
    pub cache_misses: u64,
    /// Bench-side `CellFinished` events seen (never in per-crawl traces).
    pub cells_finished: u64,
    /// Faults injected by the fault layer (0 on zero-fault traces).
    pub faults_injected: u64,
    /// Retries scheduled after retryable faults.
    pub retries: u64,
    /// Navigations that recovered after at least one fault.
    pub fault_recoveries: u64,
    /// Exp3.1 policy updates completed.
    pub policy_updates: u64,
    /// `SessionResumed` markers seen — 0 for an uninterrupted run, ≥ 1
    /// for a stream recorded after checkpoint/restore.
    pub resumes: u64,
    /// Virtual-budget attribution per cost bucket.
    pub cost: BudgetProfile,
    /// Every bandit arm choice, in order.
    pub arm_timeline: Vec<ArmChoice>,
    /// `(t, lines)` after every step, deduplicated to coverage changes
    /// (first and last step points always kept).
    pub coverage_waterfall: Vec<CoveragePoint>,
    /// Exp3.1 epoch advances on the virtual timeline.
    pub epoch_advances: Vec<EpochMark>,
    /// Reward distribution per acting arm.
    pub rewards_per_arm: BTreeMap<String, RewardStats>,
    /// Deque occupancy after each reporting step.
    pub deque_trajectory: Vec<DequePoint>,
    /// Largest deque occupancy seen.
    pub deque_peak: u64,
    /// Per-phase span statistics (sorted by phase label; empty on
    /// traces recorded without span collection — renderers omit the
    /// section instead of erroring).
    pub span_phases: BTreeMap<String, PhaseStat>,
}

impl FlightReport {
    /// Arm-usage counts over `slices` equal windows of the elapsed time:
    /// one `(window start ms, arm → choices)` row per window. Windows are
    /// right-open; choices at exactly the end land in the last window.
    ///
    /// # Panics
    ///
    /// Panics if `slices` is zero.
    pub fn arm_usage_slices(&self, slices: usize) -> Vec<(f64, BTreeMap<String, u64>)> {
        assert!(slices > 0, "need at least one slice");
        let horizon = if self.elapsed_ms > 0.0 { self.elapsed_ms } else { 1.0 };
        let width = horizon / slices as f64;
        let mut out: Vec<(f64, BTreeMap<String, u64>)> =
            (0..slices).map(|i| (i as f64 * width, BTreeMap::new())).collect();
        for choice in &self.arm_timeline {
            let idx = ((choice.t_ms / width) as usize).min(slices - 1);
            *out[idx].1.entry(choice.arm.clone()).or_insert(0) += 1;
        }
        out
    }

    /// All arm labels seen, sorted.
    pub fn arms(&self) -> Vec<&str> {
        let mut arms: Vec<&str> =
            self.rewards_per_arm.keys().map(String::as_str).collect::<Vec<_>>();
        for choice in &self.arm_timeline {
            if !arms.contains(&choice.arm.as_str()) {
                arms.push(&choice.arm);
            }
        }
        arms.sort_unstable();
        arms
    }
}

/// Folds an event stream into a [`FlightReport`]. Works attached to a
/// live run (it is an [`EventSink`]) or offline over a recorded trace.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    report: FlightReport,
    /// Virtual time of the most recent step boundary, used to timestamp
    /// events that do not carry their own clock reading.
    now_ms: f64,
}

impl FlightRecorder {
    /// A fresh recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes folding and returns the report.
    pub fn into_report(self) -> FlightReport {
        self.report
    }

    /// The report folded so far.
    pub fn report(&self) -> &FlightReport {
        &self.report
    }

    /// Appends a waterfall point only when coverage actually changed;
    /// plateaus stay implicit until `RunFinished` closes the curve.
    fn push_coverage(&mut self, t_ms: f64, lines: u64) {
        if self.report.coverage_waterfall.last().is_none_or(|last| last.lines != lines) {
            self.report.coverage_waterfall.push(CoveragePoint { t_ms, lines });
        }
    }
}

impl EventSink for FlightRecorder {
    fn on_event(&mut self, event: &Event) {
        let r = &mut self.report;
        r.events += 1;
        *r.events_per_kind.entry(event.kind()).or_insert(0) += 1;
        // Wildcard-free on purpose: a new Event variant must be given an
        // analyzer meaning here before the crate compiles again.
        match event {
            Event::RunStarted { app, crawler, seed, budget_ms } => {
                r.app = app.clone();
                r.crawler = crawler.clone();
                r.seed = *seed;
                r.budget_ms = *budget_ms;
            }
            Event::SessionResumed { app, crawler, seed, step, t_ms } => {
                // A resumed stream carries its identity here instead of in
                // `RunStarted`; splice it in and pick the clock up where
                // the checkpoint left it. Steps before the resume point are
                // not in this stream, so seed the step counter too.
                r.app = app.clone();
                r.crawler = crawler.clone();
                r.seed = *seed;
                r.resumes += 1;
                r.steps = r.steps.max(*step);
                self.now_ms = *t_ms;
                r.elapsed_ms = *t_ms;
            }
            Event::StepStarted { t_ms, policy_ms, .. } => {
                self.now_ms = *t_ms;
                r.cost.policy_ms += policy_ms;
            }
            Event::ActionChosen { arm, .. } => {
                r.arm_timeline.push(ArmChoice { t_ms: self.now_ms, arm: arm.clone() });
            }
            Event::PageFetched { fetch_ms, think_ms, interact_ms, .. } => {
                r.pages += 1;
                r.cost.fetch_ms += fetch_ms;
                r.cost.think_ms += think_ms;
                r.cost.interact_ms += interact_ms;
            }
            Event::RedirectFollowed { fetch_ms, .. } => {
                r.redirects += 1;
                r.cost.fetch_ms += fetch_ms;
            }
            Event::CoverageDelta { .. } => {
                r.coverage_deltas += 1;
            }
            Event::RewardComputed { action, reward, .. } => {
                r.rewards_per_arm.entry(action.clone()).or_default().record(*reward);
            }
            Event::PolicyUpdated { .. } => {
                r.policy_updates += 1;
            }
            Event::EpochAdvanced { epoch, gamma } => {
                r.epoch_advances.push(EpochMark {
                    t_ms: self.now_ms,
                    epoch: *epoch,
                    gamma: *gamma,
                });
            }
            Event::DequeDepth { len, .. } => {
                r.deque_trajectory.push(DequePoint { t_ms: self.now_ms, len: *len });
                r.deque_peak = r.deque_peak.max(*len);
            }
            Event::StepFinished { t_ms, interactions, lines, distinct_urls, .. } => {
                self.now_ms = *t_ms;
                r.steps += 1;
                r.interactions = *interactions;
                r.lines = *lines;
                r.distinct_urls = *distinct_urls;
                r.elapsed_ms = *t_ms;
                let (t, l) = (*t_ms, *lines);
                self.push_coverage(t, l);
            }
            Event::RunFinished { t_ms, interactions, lines, .. } => {
                self.now_ms = *t_ms;
                r.interactions = *interactions;
                r.lines = *lines;
                r.elapsed_ms = *t_ms;
                // Close the waterfall at the actual end of the run, so a
                // trailing plateau is visible and the curve spans the
                // whole crawl.
                if r.coverage_waterfall.last().is_none_or(|last| last.t_ms < *t_ms) {
                    r.coverage_waterfall.push(CoveragePoint { t_ms: *t_ms, lines: *lines });
                }
            }
            Event::CacheHit { .. } => r.cache_hits += 1,
            Event::CacheMiss { .. } => r.cache_misses += 1,
            Event::CellFinished { .. } => r.cells_finished += 1,
            Event::FaultInjected { wait_ms, .. } => {
                r.faults_injected += 1;
                // A failed attempt's wait is network time down the drain:
                // attribute it to the fetch bucket.
                r.cost.fetch_ms += wait_ms;
            }
            Event::RetryScheduled { backoff_ms, .. } => {
                r.retries += 1;
                r.cost.fetch_ms += backoff_ms;
            }
            Event::FaultRecovered { .. } => r.fault_recoveries += 1,
            Event::SpanClosed { phase, dur_ms, .. } => {
                let stat = r.span_phases.entry(phase.clone()).or_default();
                stat.count += 1;
                stat.total_ms += dur_ms;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold(events: &[Event]) -> FlightReport {
        let mut rec = FlightRecorder::new();
        for e in events {
            rec.on_event(e);
        }
        rec.into_report()
    }

    fn step_finished(step: u64, t_ms: f64, lines: u64) -> Event {
        Event::StepFinished {
            step,
            t_ms,
            action: "Head".into(),
            reward: Some(0.5),
            interactions: step + 1,
            lines,
            distinct_urls: 2 * (step + 1),
        }
    }

    #[test]
    fn folds_identity_and_trajectories() {
        let events = vec![
            Event::RunStarted {
                app: "phpbb2".into(),
                crawler: "mak".into(),
                seed: 7,
                budget_ms: 60_000.0,
            },
            Event::StepStarted { step: 0, t_ms: 0.0, policy_ms: 2.0 },
            Event::ActionChosen { arm: "Head".into(), probs: vec![0.4, 0.3, 0.3] },
            Event::PageFetched {
                url: "http://a/".into(),
                status: 200,
                fetch_ms: 100.0,
                think_ms: 1_350.0,
                interact_ms: 20.0,
                elements: 10,
            },
            Event::RewardComputed { step: 0, action: "Head".into(), reward: 0.5 },
            Event::DequeDepth { len: 7, levels: vec![3, 4] },
            step_finished(0, 1_472.0, 40),
            Event::StepStarted { step: 1, t_ms: 1_472.0, policy_ms: 2.0 },
            Event::ActionChosen { arm: "Tail".into(), probs: vec![0.3, 0.4, 0.3] },
            Event::EpochAdvanced { epoch: 1, gamma: 0.5 },
            step_finished(1, 3_000.0, 40),
            Event::RunFinished { t_ms: 3_100.0, steps: 2, interactions: 2, lines: 40 },
        ];
        let r = fold(&events);
        assert_eq!((r.app.as_str(), r.crawler.as_str(), r.seed), ("phpbb2", "mak", 7));
        assert_eq!(r.events, events.len() as u64);
        assert_eq!(r.steps, 2);
        assert_eq!(r.events_per_kind["StepFinished"], 2);
        assert_eq!(
            r.arm_timeline,
            vec![
                ArmChoice { t_ms: 0.0, arm: "Head".into() },
                ArmChoice { t_ms: 1_472.0, arm: "Tail".into() },
            ]
        );
        // Waterfall: first step point kept, flat second step folded away,
        // end pinned at RunFinished time.
        assert_eq!(
            r.coverage_waterfall,
            vec![
                CoveragePoint { t_ms: 1_472.0, lines: 40 },
                CoveragePoint { t_ms: 3_100.0, lines: 40 },
            ]
        );
        assert_eq!(r.epoch_advances, vec![EpochMark { t_ms: 1_472.0, epoch: 1, gamma: 0.5 }]);
        assert_eq!(r.deque_trajectory, vec![DequePoint { t_ms: 0.0, len: 7 }]);
        assert_eq!(r.deque_peak, 7);
        assert!((r.cost.policy_ms - 4.0).abs() < 1e-12);
        assert!((r.cost.total_ms() - (4.0 + 100.0 + 1_350.0 + 20.0)).abs() < 1e-9);
        assert_eq!(r.rewards_per_arm["Head"].count, 1);
        assert_eq!(r.arms(), vec!["Head", "Tail"]);
    }

    #[test]
    fn arm_usage_slices_bucket_choices() {
        let mut r = FlightReport { elapsed_ms: 100.0, ..Default::default() };
        r.arm_timeline = vec![
            ArmChoice { t_ms: 10.0, arm: "Head".into() },
            ArmChoice { t_ms: 40.0, arm: "Tail".into() },
            ArmChoice { t_ms: 90.0, arm: "Head".into() },
            ArmChoice { t_ms: 100.0, arm: "Head".into() },
        ];
        let slices = r.arm_usage_slices(2);
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0].0, 0.0);
        assert_eq!(slices[0].1["Head"], 1);
        assert_eq!(slices[0].1["Tail"], 1);
        assert_eq!(slices[1].1["Head"], 2, "end-of-horizon choice lands in the last slice");
    }

    #[test]
    fn waterfall_keeps_only_coverage_changes() {
        let events = vec![
            step_finished(0, 100.0, 10),
            step_finished(1, 200.0, 10),
            step_finished(2, 300.0, 25),
            Event::RunFinished { t_ms: 400.0, steps: 3, interactions: 3, lines: 25 },
        ];
        let r = fold(&events);
        assert_eq!(
            r.coverage_waterfall,
            vec![
                CoveragePoint { t_ms: 100.0, lines: 10 },
                CoveragePoint { t_ms: 300.0, lines: 25 },
                CoveragePoint { t_ms: 400.0, lines: 25 },
            ],
            "flat step folded away; RunFinished closes the trailing plateau"
        );
    }

    #[test]
    fn empty_stream_folds_to_default() {
        let r = fold(&[]);
        assert_eq!(r, FlightReport::default());
    }
}
