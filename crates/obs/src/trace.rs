//! Reading recorded JSONL traces back, and comparing two of them.
//!
//! A trace file is what [`JsonlSink`](crate::sink::JsonlSink) writes: one
//! [`Event`] as JSON per line, in emission order, carrying only
//! virtual-clock time. [`TraceIter`] streams such a file back one event at
//! a time — it never loads the whole file — so multi-hundred-megabyte
//! traces of long crawls analyze in constant memory.
//!
//! [`first_divergence`] is the debugging half: given two event streams it
//! finds the first index at which they disagree and reports both payloads
//! plus the step the streams were in. Every "reports differ" determinism
//! failure becomes a pinpointed diagnosis: *which* event, at *which* step,
//! changed first.

use crate::event::Event;
use std::fmt;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// Why reading a trace line failed.
#[derive(Debug)]
pub enum TraceError {
    /// The underlying reader failed.
    Io {
        /// 1-based line number at which the failure happened.
        line: u64,
        /// The I/O error.
        source: std::io::Error,
    },
    /// A line was not a valid serialized [`Event`].
    Parse {
        /// 1-based line number of the malformed line.
        line: u64,
        /// Parser message.
        message: String,
        /// The offending line, truncated to a printable length.
        content: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io { line, source } => write!(f, "line {line}: I/O error: {source}"),
            TraceError::Parse { line, message, content } => {
                write!(f, "line {line}: not a valid event ({message}): {content}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Truncation bound for malformed-line echoes in [`TraceError::Parse`].
const MAX_ECHO: usize = 120;

/// A streaming reader over a JSONL event trace.
///
/// Yields one `Result<Event, TraceError>` per line; blank lines are
/// skipped (a trailing newline is normal). The iterator holds only the
/// current line in memory.
pub struct TraceIter<R: BufRead> {
    reader: R,
    line: u64,
    buf: String,
}

impl<R: BufRead> TraceIter<R> {
    /// Wraps any buffered reader.
    pub fn new(reader: R) -> Self {
        TraceIter { reader, line: 0, buf: String::new() }
    }

    /// The 1-based number of the most recently read line.
    pub fn line(&self) -> u64 {
        self.line
    }
}

impl<R: BufRead> Iterator for TraceIter<R> {
    type Item = Result<Event, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.buf.clear();
            self.line += 1;
            match self.reader.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {
                    let text = self.buf.trim();
                    if text.is_empty() {
                        continue;
                    }
                    return Some(serde_json::from_str(text).map_err(|e| TraceError::Parse {
                        line: self.line,
                        message: e.to_string(),
                        content: if text.len() > MAX_ECHO {
                            let mut cut = MAX_ECHO;
                            while !text.is_char_boundary(cut) {
                                cut -= 1;
                            }
                            format!("{}…", &text[..cut])
                        } else {
                            text.to_owned()
                        },
                    }));
                }
                Err(source) => return Some(Err(TraceError::Io { line: self.line, source })),
            }
        }
    }
}

/// Opens `path` as a streaming trace.
///
/// # Errors
///
/// Returns the I/O error if the file cannot be opened.
pub fn read(path: impl AsRef<Path>) -> std::io::Result<TraceIter<BufReader<std::fs::File>>> {
    Ok(TraceIter::new(BufReader::new(std::fs::File::open(path)?)))
}

/// The first point at which two event streams disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// 0-based index of the first differing event.
    pub index: u64,
    /// The engine step both streams were in when they diverged (the step
    /// of the last `StepStarted` at or before the divergence), if any
    /// step had started.
    pub step: Option<u64>,
    /// The left stream's event at `index`; `None` if it ended first.
    pub left: Option<Event>,
    /// The right stream's event at `index`; `None` if it ended first.
    pub right: Option<Event>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let render = |e: &Option<Event>| match e {
            Some(ev) => serde_json::to_string(ev).expect("Event serializes"),
            None => "<stream ended>".to_owned(),
        };
        let step = match self.step {
            Some(s) => format!("step {s}"),
            None => "before the first step".to_owned(),
        };
        write!(
            f,
            "first divergence at event #{} ({step}):\n  left : {}\n  right: {}",
            self.index,
            render(&self.left),
            render(&self.right),
        )
    }
}

/// Compares two event streams and returns the first divergence, or `None`
/// when the streams are identical (same events, same length).
///
/// Both iterators are consumed only up to the divergence, so comparing two
/// on-disk traces via [`read`] stays streaming.
pub fn first_divergence<L, R>(left: L, right: R) -> Option<Divergence>
where
    L: IntoIterator<Item = Event>,
    R: IntoIterator<Item = Event>,
{
    let mut left = left.into_iter();
    let mut right = right.into_iter();
    let mut index: u64 = 0;
    let mut step: Option<u64> = None;
    loop {
        let (a, b) = (left.next(), right.next());
        match (a, b) {
            (None, None) => return None,
            (a, b) => {
                if a != b {
                    return Some(Divergence { index, step, left: a, right: b });
                }
                // Streams agree here; track the step we are in so the next
                // divergence can be attributed.
                if let Some(Event::StepStarted { step: s, .. }) = &a {
                    step = Some(*s);
                }
            }
        }
        index += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{EventSink, JsonlSink};

    fn sample_stream() -> Vec<Event> {
        vec![
            Event::RunStarted {
                app: "addressbook".into(),
                crawler: "mak".into(),
                seed: 1,
                budget_ms: 60_000.0,
            },
            Event::StepStarted { step: 0, t_ms: 0.0, policy_ms: 2.0 },
            Event::ActionChosen { arm: "Head".into(), probs: vec![0.5, 0.25, 0.25] },
            Event::StepFinished {
                step: 0,
                t_ms: 1_500.0,
                action: "Head".into(),
                reward: Some(0.5),
                interactions: 1,
                lines: 40,
                distinct_urls: 2,
            },
            Event::RunFinished { t_ms: 1_500.0, steps: 1, interactions: 1, lines: 40 },
        ]
    }

    fn jsonl_bytes(events: &[Event]) -> Vec<u8> {
        let mut sink = JsonlSink::new(Vec::new());
        for e in events {
            sink.on_event(e);
        }
        let (bytes, err) = sink.finish();
        assert!(err.is_none());
        bytes
    }

    #[test]
    fn round_trips_a_jsonl_stream() {
        let events = sample_stream();
        let bytes = jsonl_bytes(&events);
        let back: Vec<Event> =
            TraceIter::new(bytes.as_slice()).collect::<Result<_, _>>().expect("every line parses");
        assert_eq!(back, events);
    }

    #[test]
    fn skips_blank_lines_and_reports_line_numbers() {
        let text = "\n{\"EpochAdvanced\":{\"epoch\":1,\"gamma\":0.5}}\n\nnot json\n";
        let mut it = TraceIter::new(text.as_bytes());
        assert!(matches!(it.next(), Some(Ok(Event::EpochAdvanced { epoch: 1, .. }))));
        assert_eq!(it.line(), 2);
        match it.next() {
            Some(Err(TraceError::Parse { line: 4, content, .. })) => {
                assert_eq!(content, "not json");
            }
            other => panic!("expected a parse error on line 4, got {other:?}"),
        }
        assert!(it.next().is_none());
    }

    #[test]
    fn malformed_line_echo_is_truncated() {
        let long = format!("{{\"bogus\": \"{}\"}}", "x".repeat(500));
        let mut it = TraceIter::new(long.as_bytes());
        match it.next() {
            Some(Err(TraceError::Parse { content, .. })) => {
                assert!(content.chars().count() <= MAX_ECHO + 1, "echo is bounded");
                assert!(content.ends_with('…'));
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn identical_streams_have_no_divergence() {
        assert_eq!(first_divergence(sample_stream(), sample_stream()), None);
    }

    #[test]
    fn perturbed_event_is_pinpointed_with_step() {
        let left = sample_stream();
        let mut right = sample_stream();
        let Event::StepFinished { lines, .. } = &mut right[3] else { panic!("fixture") };
        *lines += 1;
        let d = first_divergence(left.clone(), right.clone()).expect("streams differ");
        assert_eq!(d.index, 3);
        assert_eq!(d.step, Some(0), "divergence attributed to the running step");
        assert_eq!(d.left.as_ref(), Some(&left[3]));
        assert_eq!(d.right.as_ref(), Some(&right[3]));
        let shown = d.to_string();
        assert!(shown.contains("event #3") && shown.contains("step 0"), "{shown}");
    }

    #[test]
    fn truncated_stream_diverges_at_the_missing_event() {
        let left = sample_stream();
        let right = left[..4].to_vec();
        let d = first_divergence(left.clone(), right).expect("lengths differ");
        assert_eq!(d.index, 4);
        assert_eq!(d.left.as_ref(), Some(&left[4]));
        assert_eq!(d.right, None);
        assert!(d.to_string().contains("<stream ended>"));
    }

    #[test]
    fn divergence_before_any_step_has_no_step() {
        let left = sample_stream();
        let mut right = sample_stream();
        let Event::RunStarted { seed, .. } = &mut right[0] else { panic!("fixture") };
        *seed = 2;
        let d = first_divergence(left, right).expect("streams differ");
        assert_eq!((d.index, d.step), (0, None));
        assert!(d.to_string().contains("before the first step"));
    }
}
