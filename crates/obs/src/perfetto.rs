//! Chrome / Perfetto `trace_events` export of span streams.
//!
//! [`PerfettoTrace`] folds [`Event::SpanClosed`] records into the JSON
//! object format both `chrome://tracing` and [ui.perfetto.dev] load
//! directly: a top-level `traceEvents` array of *complete* events
//! (`"ph": "X"`) with microsecond `ts`/`dur`, plus a `process_name`
//! metadata record. Timestamps are virtual-clock milliseconds scaled to
//! microseconds, so the file is byte-deterministic whenever the source
//! stream is (same contract as the JSONL trace itself).
//!
//! Nesting falls out of timing alone: Perfetto stacks events on one
//! track by containment, which matches the parent links produced by
//! [`crate::sink::SinkHandle::span_open`]'s stack discipline — a child
//! span always closes before its parent and lies inside its parent's
//! `[ts, ts + dur]` window. The raw `id`/`parent` links are still
//! carried in `args` for tooling that wants them.
//!
//! [ui.perfetto.dev]: https://ui.perfetto.dev

use serde::Value;

use crate::event::Event;

/// Adapter: the vendored serde's [`Value`] does not implement the
/// serialization traits itself, so wrap it for `serde_json`.
struct Raw(Value);

impl serde::Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

impl serde::Deserialize for Raw {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        Ok(Raw(v.clone()))
    }
}

/// Accumulates span-close records and renders the `trace_events` JSON.
#[derive(Debug, Clone)]
pub struct PerfettoTrace {
    /// Label for the `process_name` metadata record.
    process_name: String,
    /// One entry per closed span, in arrival order.
    spans: Vec<SpanRow>,
}

#[derive(Debug, Clone)]
struct SpanRow {
    id: u64,
    parent: u64,
    phase: String,
    t_ms: f64,
    dur_ms: f64,
}

impl PerfettoTrace {
    /// Creates an empty trace; `process_name` labels the single process
    /// row in the Perfetto UI (e.g. `"phpbb2 / mak / seed 0"`).
    pub fn new(process_name: impl Into<String>) -> Self {
        PerfettoTrace { process_name: process_name.into(), spans: Vec::new() }
    }

    /// Records `event` if it is a span close; every other kind is
    /// ignored, so a whole trace stream can be fed through unchanged.
    pub fn push(&mut self, event: &Event) {
        if let Event::SpanClosed { id, parent, phase, t_ms, dur_ms } = event {
            self.spans.push(SpanRow {
                id: *id,
                parent: *parent,
                phase: phase.clone(),
                t_ms: *t_ms,
                dur_ms: *dur_ms,
            });
        }
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Renders the `{"traceEvents": [...], "displayTimeUnit": "ms"}`
    /// object. Every span becomes a complete event (`"ph": "X"`) on
    /// pid 1 / tid 1 with `ts`/`dur` in microseconds.
    pub fn to_value(&self) -> Value {
        let mut events = Vec::with_capacity(self.spans.len() + 1);
        events.push(Value::Object(vec![
            ("name".into(), Value::Str("process_name".into())),
            ("ph".into(), Value::Str("M".into())),
            ("pid".into(), Value::UInt(1)),
            ("tid".into(), Value::UInt(1)),
            (
                "args".into(),
                Value::Object(vec![("name".into(), Value::Str(self.process_name.clone()))]),
            ),
        ]));
        for span in &self.spans {
            events.push(Value::Object(vec![
                ("name".into(), Value::Str(span.phase.clone())),
                ("cat".into(), Value::Str("mak".into())),
                ("ph".into(), Value::Str("X".into())),
                ("ts".into(), Value::Float(span.t_ms * 1000.0)),
                ("dur".into(), Value::Float(span.dur_ms * 1000.0)),
                ("pid".into(), Value::UInt(1)),
                ("tid".into(), Value::UInt(1)),
                (
                    "args".into(),
                    Value::Object(vec![
                        ("id".into(), Value::UInt(span.id)),
                        ("parent".into(), Value::UInt(span.parent)),
                    ]),
                ),
            ]));
        }
        Value::Object(vec![
            ("traceEvents".into(), Value::Array(events)),
            ("displayTimeUnit".into(), Value::Str("ms".into())),
        ])
    }

    /// Renders the trace as a JSON string (one line, stable field order).
    pub fn to_json(&self) -> String {
        serde_json::to_string(&Raw(self.to_value())).expect("perfetto trace serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: u64, phase: &str, t_ms: f64, dur_ms: f64) -> Event {
        Event::SpanClosed { id, parent, phase: phase.into(), t_ms, dur_ms }
    }

    #[test]
    fn non_span_events_are_ignored() {
        let mut trace = PerfettoTrace::new("test");
        for event in Event::samples() {
            trace.push(&event);
        }
        // Exactly one sample is a SpanClosed.
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn output_matches_the_trace_events_shape() {
        let mut trace = PerfettoTrace::new("phpbb2 / mak / seed 0");
        trace.push(&span(1, 0, "Step", 0.0, 1500.0));
        trace.push(&span(2, 1, "Render", 2.0, 100.0));
        let text = trace.to_json();
        let value = serde_json::from_str::<Raw>(&text).expect("parses back").0;

        assert_eq!(value.get("displayTimeUnit"), Some(&Value::Str("ms".into())));
        let events = match value.get("traceEvents") {
            Some(Value::Array(events)) => events,
            other => panic!("traceEvents missing or not an array: {other:?}"),
        };
        assert_eq!(events.len(), 3, "metadata record + two spans");

        // Metadata record first.
        assert_eq!(events[0].get("ph"), Some(&Value::Str("M".into())));
        assert_eq!(events[0].get("name"), Some(&Value::Str("process_name".into())));
        let meta_args = events[0].get("args").expect("metadata args");
        assert_eq!(meta_args.get("name"), Some(&Value::Str("phpbb2 / mak / seed 0".into())));

        // Spans are complete events with µs timestamps and span links.
        for event in &events[1..] {
            assert_eq!(event.get("ph"), Some(&Value::Str("X".into())));
            assert_eq!(event.get("cat"), Some(&Value::Str("mak".into())));
            assert_eq!(event.get("pid"), Some(&Value::UInt(1)));
            assert_eq!(event.get("tid"), Some(&Value::UInt(1)));
            assert!(matches!(event.get("ts"), Some(Value::Float(_))));
            assert!(matches!(event.get("dur"), Some(Value::Float(_))));
        }
        assert_eq!(events[2].get("name"), Some(&Value::Str("Render".into())));
        assert_eq!(events[2].get("ts"), Some(&Value::Float(2000.0)));
        assert_eq!(events[2].get("dur"), Some(&Value::Float(100_000.0)));
        let args = events[2].get("args").expect("span args");
        assert_eq!(args.get("id"), Some(&Value::UInt(2)));
        assert_eq!(args.get("parent"), Some(&Value::UInt(1)));
    }

    #[test]
    fn child_spans_nest_inside_their_parents_window() {
        // The stack discipline means containment carries the hierarchy;
        // assert the invariant the Perfetto UI relies on.
        let mut trace = PerfettoTrace::new("nesting");
        trace.push(&span(2, 1, "Render", 10.0, 40.0));
        trace.push(&span(1, 0, "Step", 0.0, 100.0));
        let value = trace.to_value();
        let events = match value.get("traceEvents") {
            Some(Value::Array(events)) => events.clone(),
            _ => unreachable!(),
        };
        let (child, parent) = (&events[1], &events[2]);
        let ts = |e: &Value| match e.get("ts") {
            Some(Value::Float(v)) => *v,
            _ => panic!("ts"),
        };
        let dur = |e: &Value| match e.get("dur") {
            Some(Value::Float(v)) => *v,
            _ => panic!("dur"),
        };
        assert!(ts(child) >= ts(parent));
        assert!(ts(child) + dur(child) <= ts(parent) + dur(parent));
    }

    #[test]
    fn empty_trace_still_renders_valid_json() {
        let trace = PerfettoTrace::new("empty");
        assert!(trace.is_empty());
        let value = serde_json::from_str::<Raw>(&trace.to_json()).expect("parses").0;
        match value.get("traceEvents") {
            Some(Value::Array(events)) => assert_eq!(events.len(), 1),
            _ => panic!("traceEvents missing"),
        }
    }
}
