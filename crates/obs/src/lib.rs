//! `mak-obs` — the structured, deterministic observability layer.
//!
//! Every other crate in the workspace emits typed [`Event`]s into an
//! [`EventSink`] instead of printing ad-hoc diagnostics. Three rules keep
//! the layer compatible with the workspace determinism contract
//! (CLAUDE.md):
//!
//! 1. **Events are derived observations.** Emitting an event never
//!    mutates crawl state, draws from a seeded RNG, or advances the
//!    virtual clock; a crawl with a sink attached produces a
//!    [`CrawlReport`] byte-identical to one without (enforced by
//!    `tests/observability.rs`).
//! 2. **Virtual time only inside a run.** Per-crawl events carry
//!    virtual-clock milliseconds, never wall time, so a JSONL stream is
//!    bit-identical across reruns and thread counts. The single
//!    exception is [`Event::CellFinished`], a *bench-side* event emitted
//!    outside any crawl (through [`sink::SharedSink`]) that records
//!    wall-clock cost for `BENCH_perf.json`; it never enters a per-crawl
//!    trace.
//! 3. **No-op by default, lazy when attached.** [`sink::SinkHandle`]
//!    defaults to inert; `emit_with` takes a closure so event
//!    construction (string formatting, prob-vector clones) is skipped
//!    entirely when no sink listens.
//!
//! Modules: [`event`] (the taxonomy), [`sink`] (the trait, handles, and
//! JSONL/Vec sinks), [`aggregate`] (counters, histograms, and the
//! budget-attribution profile), [`trace`] (streaming JSONL readback and
//! stream diffing), [`flight`] (the flight-recorder analyzer), [`logger`]
//! (the `MAK_LOG` stderr logger).
//!
//! [`Event`]: event::Event
//! [`EventSink`]: sink::EventSink
//! [`CrawlReport`]: https://docs.rs/ (see `mak::framework::engine`)

pub mod aggregate;
pub mod event;
pub mod flight;
pub mod logger;
pub mod perfetto;
pub mod sink;
pub mod span;
pub mod trace;

pub use aggregate::Aggregator;
pub use event::Event;
pub use flight::{FlightRecorder, FlightReport};
pub use sink::{EventSink, JsonlSink, SharedSink, SinkHandle, VecSink};
pub use span::{Phase, PhaseTotals, SpanToken};
pub use trace::{first_divergence, Divergence, TraceIter};
