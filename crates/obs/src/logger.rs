//! The `MAK_LOG` stderr logger.
//!
//! One environment variable controls every human-facing stderr line the
//! workspace prints (bench banners, matrix progress, cache chatter):
//!
//! - `MAK_LOG=off` (or `0`, `none`, `quiet`) — silence everything.
//! - `MAK_LOG=progress` — banners and progress lines (the default).
//! - `MAK_LOG=debug` (or `verbose`, `trace`) — progress plus per-cell
//!   diagnostics.
//!
//! The variable is read on every call, not latched, so tests can flip it
//! with `std::env::set_var` and bench binaries pick it up without any
//! init call. Log output is presentation only: it never carries crawl
//! state and is allowed to include wall-clock quantities.

use std::fmt;

/// Verbosity levels, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// No stderr output at all.
    Off,
    /// Banners and progress lines (default).
    Progress,
    /// Progress plus per-cell diagnostics.
    Debug,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Off => "off",
            Level::Progress => "progress",
            Level::Debug => "debug",
        })
    }
}

impl Level {
    /// Parses one `MAK_LOG` value (case-insensitive, surrounding
    /// whitespace ignored). `None` means the value is not recognized.
    pub fn parse(value: &str) -> Option<Level> {
        match value.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" | "quiet" => Some(Level::Off),
            "progress" => Some(Level::Progress),
            "debug" | "verbose" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// The warning printed once when `MAK_LOG` holds an unrecognized value —
/// without it a typo (`MAK_LOG=quite`) silently degrades to the default.
pub fn unrecognized_warning(value: &str) -> String {
    format!(
        "warning: unrecognized MAK_LOG value `{value}` — accepted values are \
         off|0|none|quiet, progress, debug|verbose|trace; using the default (progress)"
    )
}

/// The current level from `MAK_LOG` (default [`Level::Progress`]). An
/// unrecognized value falls back to the default and warns once per
/// process on stderr, naming the accepted values.
pub fn level() -> Level {
    match std::env::var("MAK_LOG") {
        Ok(v) => Level::parse(&v).unwrap_or_else(|| {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| eprintln!("{}", unrecognized_warning(&v)));
            Level::Progress
        }),
        Err(_) => Level::Progress,
    }
}

/// Whether output at `wanted` is currently enabled.
pub fn enabled(wanted: Level) -> bool {
    level() >= wanted
}

/// Prints a line to stderr at [`Level::Progress`].
#[macro_export]
macro_rules! progress {
    ($($arg:tt)*) => {
        if $crate::logger::enabled($crate::logger::Level::Progress) {
            eprintln!($($arg)*);
        }
    };
}

/// Prints a line to stderr at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::logger::enabled($crate::logger::Level::Debug) {
            eprintln!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-var mutation is process-global, so exercise all cases in one
    // test to avoid cross-test races.
    #[test]
    fn level_parsing_and_ordering() {
        assert!(Level::Off < Level::Progress && Level::Progress < Level::Debug);

        std::env::set_var("MAK_LOG", "off");
        assert_eq!(level(), Level::Off);
        assert!(!enabled(Level::Progress));

        std::env::set_var("MAK_LOG", "0");
        assert_eq!(level(), Level::Off);

        std::env::set_var("MAK_LOG", "debug");
        assert_eq!(level(), Level::Debug);
        assert!(enabled(Level::Progress));

        std::env::set_var("MAK_LOG", "Progress");
        assert_eq!(level(), Level::Progress);
        assert!(!enabled(Level::Debug));

        std::env::set_var("MAK_LOG", "definitely-not-a-level");
        assert_eq!(level(), Level::Progress);

        std::env::remove_var("MAK_LOG");
        assert_eq!(level(), Level::Progress);
        assert_eq!(level().to_string(), "progress");
    }

    #[test]
    fn parse_recognizes_every_documented_value() {
        for v in ["off", "0", "none", "quiet", " OFF "] {
            assert_eq!(Level::parse(v), Some(Level::Off), "{v}");
        }
        assert_eq!(Level::parse("progress"), Some(Level::Progress));
        assert_eq!(Level::parse("Progress"), Some(Level::Progress));
        for v in ["debug", "verbose", "trace"] {
            assert_eq!(Level::parse(v), Some(Level::Debug), "{v}");
        }
        for v in ["quite", "loud", "2", ""] {
            assert_eq!(Level::parse(v), None, "`{v}` must not be silently accepted");
        }
    }

    #[test]
    fn unrecognized_value_warning_names_the_accepted_values() {
        let msg = unrecognized_warning("quite");
        assert!(msg.contains("`quite`"), "offending value echoed: {msg}");
        for accepted in ["off", "progress", "debug"] {
            assert!(msg.contains(accepted), "accepted value `{accepted}` named: {msg}");
        }
        assert!(!msg.contains('\n'), "one-line warning");
    }
}
