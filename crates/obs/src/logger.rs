//! The `MAK_LOG` stderr logger.
//!
//! One environment variable controls every human-facing stderr line the
//! workspace prints (bench banners, matrix progress, cache chatter):
//!
//! - `MAK_LOG=off` (or `0`, `none`, `quiet`) — silence everything.
//! - `MAK_LOG=progress` — banners and progress lines (the default).
//! - `MAK_LOG=debug` (or `verbose`, `trace`) — progress plus per-cell
//!   diagnostics.
//!
//! The variable is read on every call, not latched, so tests can flip it
//! with `std::env::set_var` and bench binaries pick it up without any
//! init call. Log output is presentation only: it never carries crawl
//! state and is allowed to include wall-clock quantities.

use std::fmt;

/// Verbosity levels, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// No stderr output at all.
    Off,
    /// Banners and progress lines (default).
    Progress,
    /// Progress plus per-cell diagnostics.
    Debug,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Off => "off",
            Level::Progress => "progress",
            Level::Debug => "debug",
        })
    }
}

/// The current level from `MAK_LOG` (default [`Level::Progress`];
/// unrecognized values also fall back to the default).
pub fn level() -> Level {
    match std::env::var("MAK_LOG") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" | "quiet" => Level::Off,
            "debug" | "verbose" | "trace" => Level::Debug,
            _ => Level::Progress,
        },
        Err(_) => Level::Progress,
    }
}

/// Whether output at `wanted` is currently enabled.
pub fn enabled(wanted: Level) -> bool {
    level() >= wanted
}

/// Prints a line to stderr at [`Level::Progress`].
#[macro_export]
macro_rules! progress {
    ($($arg:tt)*) => {
        if $crate::logger::enabled($crate::logger::Level::Progress) {
            eprintln!($($arg)*);
        }
    };
}

/// Prints a line to stderr at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::logger::enabled($crate::logger::Level::Debug) {
            eprintln!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-var mutation is process-global, so exercise all cases in one
    // test to avoid cross-test races.
    #[test]
    fn level_parsing_and_ordering() {
        assert!(Level::Off < Level::Progress && Level::Progress < Level::Debug);

        std::env::set_var("MAK_LOG", "off");
        assert_eq!(level(), Level::Off);
        assert!(!enabled(Level::Progress));

        std::env::set_var("MAK_LOG", "0");
        assert_eq!(level(), Level::Off);

        std::env::set_var("MAK_LOG", "debug");
        assert_eq!(level(), Level::Debug);
        assert!(enabled(Level::Progress));

        std::env::set_var("MAK_LOG", "Progress");
        assert_eq!(level(), Level::Progress);
        assert!(!enabled(Level::Debug));

        std::env::set_var("MAK_LOG", "definitely-not-a-level");
        assert_eq!(level(), Level::Progress);

        std::env::remove_var("MAK_LOG");
        assert_eq!(level(), Level::Progress);
        assert_eq!(level().to_string(), "progress");
    }
}
