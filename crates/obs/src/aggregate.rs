//! In-memory aggregation: counters, reward stats, histograms, and the
//! virtual-budget profile.
//!
//! [`Aggregator`] is an [`EventSink`] that folds a stream into the
//! summary the `mak-cli profile` command prints: steps per arm, reward
//! distribution per arm, a fetch-cost histogram, deque depth over time,
//! epoch trajectory, cache hit rate, and a [`BudgetProfile`] attributing
//! virtual time to the cost-model buckets (`fetch` / `think` /
//! `interact` / `policy`).

use crate::event::Event;
use crate::sink::EventSink;
use std::collections::BTreeMap;

/// A string-keyed counter with deterministic (sorted) iteration order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    counts: BTreeMap<String, u64>,
}

impl Counter {
    /// An empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to `key`'s count.
    pub fn add(&mut self, key: &str, n: u64) {
        *self.counts.entry(key.to_owned()).or_insert(0) += n;
    }

    /// The count for `key` (0 when absent).
    pub fn get(&self, key: &str) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Sum over all keys.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no key was ever counted.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// `(key, count)` pairs in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

/// Running min/max/mean of a stream of rewards (or any f64s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RewardStats {
    /// Number of samples folded in.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample seen.
    pub min: f64,
    /// Largest sample seen.
    pub max: f64,
}

impl Default for RewardStats {
    fn default() -> Self {
        RewardStats { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }
}

impl RewardStats {
    /// Folds one sample in.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A fixed-bucket histogram over `f64` values.
///
/// `bounds` are upper edges; a value lands in the first bucket whose
/// bound is `>=` it, or in the implicit overflow bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
}

impl Histogram {
    /// A histogram with the given ascending upper edges.
    pub fn new(bounds: Vec<f64>) -> Self {
        let buckets = bounds.len() + 1;
        Histogram { bounds, counts: vec![0; buckets] }
    }

    /// Folds one value in.
    pub fn record(&mut self, value: f64) {
        let idx = self.bounds.iter().position(|b| value <= *b).unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
    }

    /// Total number of recorded values.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(label, count)` rows, e.g. `("<= 1500", 12)`, ending with the
    /// overflow bucket `("> last", n)`.
    pub fn rows(&self) -> Vec<(String, u64)> {
        let mut rows = Vec::with_capacity(self.counts.len());
        for (i, count) in self.counts.iter().enumerate() {
            let label = if i < self.bounds.len() {
                format!("<= {}", self.bounds[i])
            } else if let Some(last) = self.bounds.last() {
                format!("> {last}")
            } else {
                "all".to_owned()
            };
            rows.push((label, *count));
        }
        rows
    }
}

/// Where the virtual budget went, in cost-model buckets (all ms).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BudgetProfile {
    /// Network cost: jittered base latency plus redirect hops.
    pub fetch_ms: f64,
    /// The fixed per-page think/parse charge.
    pub think_ms: f64,
    /// Per-element interaction cost.
    pub interact_ms: f64,
    /// Policy overhead charged before each step.
    pub policy_ms: f64,
}

impl BudgetProfile {
    /// Sum over all buckets.
    pub fn total_ms(&self) -> f64 {
        self.fetch_ms + self.think_ms + self.interact_ms + self.policy_ms
    }

    /// `(bucket, ms)` rows in a fixed order.
    pub fn rows(&self) -> [(&'static str, f64); 4] {
        [
            ("fetch", self.fetch_ms),
            ("think", self.think_ms),
            ("interact", self.interact_ms),
            ("policy", self.policy_ms),
        ]
    }
}

/// Default fetch-cost histogram edges (ms): the cost model charges
/// roughly `latency × jitter + 1350 + 2·elements`, so pages cluster
/// between ~1.4 s and a few seconds.
fn fetch_cost_bounds() -> Vec<f64> {
    vec![1400.0, 1500.0, 1600.0, 1800.0, 2000.0, 2500.0, 3000.0]
}

/// Folds an event stream into counters, histograms, and the budget
/// profile.
#[derive(Debug, Clone)]
pub struct Aggregator {
    /// Identity from `RunStarted` (empty until seen).
    pub app: String,
    /// Crawler name from `RunStarted`.
    pub crawler: String,
    /// Seed from `RunStarted`.
    pub seed: u64,
    /// Virtual budget from `RunStarted` (ms).
    pub budget_ms: f64,
    /// Completed steps (`StepFinished` count).
    pub steps: u64,
    /// Steps per chosen arm (`ActionChosen`).
    pub steps_per_arm: Counter,
    /// Reward distribution per acting arm (`RewardComputed`).
    pub rewards_per_arm: BTreeMap<String, RewardStats>,
    /// Reward distribution over all steps.
    pub rewards: RewardStats,
    /// Histogram of total page cost (fetch + think + interact, ms).
    pub fetch_cost: Histogram,
    /// Pages fetched (`PageFetched`).
    pub pages: u64,
    /// Redirect hops followed.
    pub redirects: u64,
    /// Deque depth after each reporting step, in order.
    pub deque_depth: Vec<u64>,
    /// Largest deque depth seen.
    pub deque_peak: u64,
    /// Highest Exp3.1 epoch seen.
    pub max_epoch: u32,
    /// Number of `EpochAdvanced` events.
    pub epoch_advances: u64,
    /// Cache hits (`CacheHit`).
    pub cache_hits: u64,
    /// Cache misses (`CacheMiss`).
    pub cache_misses: u64,
    /// Faults injected (`FaultInjected`).
    pub faults_injected: u64,
    /// Retries scheduled (`RetryScheduled`).
    pub retries: u64,
    /// Recovered navigations (`FaultRecovered`).
    pub fault_recoveries: u64,
    /// Final covered lines (last `StepFinished` / `RunFinished`).
    pub lines: u64,
    /// Final interaction count.
    pub interactions: u64,
    /// Virtual clock at the end of the stream (ms).
    pub elapsed_ms: f64,
    /// Budget attribution.
    pub profile: BudgetProfile,
    /// Spans closed (`SpanClosed`; 0 on span-less streams).
    pub spans: u64,
    /// Total span duration per phase label, in ms, sorted by phase.
    pub span_phase_ms: BTreeMap<String, f64>,
}

impl Default for Aggregator {
    fn default() -> Self {
        Aggregator {
            app: String::new(),
            crawler: String::new(),
            seed: 0,
            budget_ms: 0.0,
            steps: 0,
            steps_per_arm: Counter::new(),
            rewards_per_arm: BTreeMap::new(),
            rewards: RewardStats::default(),
            fetch_cost: Histogram::new(fetch_cost_bounds()),
            pages: 0,
            redirects: 0,
            deque_depth: Vec::new(),
            deque_peak: 0,
            max_epoch: 0,
            epoch_advances: 0,
            cache_hits: 0,
            cache_misses: 0,
            faults_injected: 0,
            retries: 0,
            fault_recoveries: 0,
            lines: 0,
            interactions: 0,
            elapsed_ms: 0.0,
            profile: BudgetProfile::default(),
            spans: 0,
            span_phase_ms: BTreeMap::new(),
        }
    }
}

impl Aggregator {
    /// A fresh aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cache hit rate in `[0, 1]` (0.0 when no cache events were seen).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Steps per virtual second (0.0 before any time passed).
    pub fn steps_per_virtual_sec(&self) -> f64 {
        if self.elapsed_ms <= 0.0 {
            0.0
        } else {
            self.steps as f64 / (self.elapsed_ms / 1000.0)
        }
    }
}

impl EventSink for Aggregator {
    fn on_event(&mut self, event: &Event) {
        match event {
            Event::RunStarted { app, crawler, seed, budget_ms } => {
                self.app = app.clone();
                self.crawler = crawler.clone();
                self.seed = *seed;
                self.budget_ms = *budget_ms;
            }
            Event::SessionResumed { app, crawler, seed, t_ms, .. } => {
                // Resumed streams carry their identity here; the clock
                // picks up from the checkpoint.
                self.app = app.clone();
                self.crawler = crawler.clone();
                self.seed = *seed;
                self.elapsed_ms = *t_ms;
            }
            Event::StepStarted { policy_ms, .. } => {
                self.profile.policy_ms += policy_ms;
            }
            Event::ActionChosen { arm, .. } => {
                self.steps_per_arm.add(arm, 1);
            }
            Event::PageFetched { fetch_ms, think_ms, interact_ms, .. } => {
                self.pages += 1;
                self.profile.fetch_ms += fetch_ms;
                self.profile.think_ms += think_ms;
                self.profile.interact_ms += interact_ms;
                self.fetch_cost.record(fetch_ms + think_ms + interact_ms);
            }
            Event::RedirectFollowed { fetch_ms, .. } => {
                self.redirects += 1;
                self.profile.fetch_ms += fetch_ms;
            }
            Event::RewardComputed { action, reward, .. } => {
                self.rewards.record(*reward);
                self.rewards_per_arm.entry(action.clone()).or_default().record(*reward);
            }
            Event::PolicyUpdated { epoch, .. } => {
                self.max_epoch = self.max_epoch.max(*epoch);
            }
            Event::EpochAdvanced { epoch, .. } => {
                self.epoch_advances += 1;
                self.max_epoch = self.max_epoch.max(*epoch);
            }
            Event::DequeDepth { len, .. } => {
                self.deque_depth.push(*len);
                self.deque_peak = self.deque_peak.max(*len);
            }
            Event::StepFinished { t_ms, interactions, lines, .. } => {
                self.steps += 1;
                self.elapsed_ms = *t_ms;
                self.interactions = *interactions;
                self.lines = *lines;
            }
            Event::RunFinished { t_ms, interactions, lines, .. } => {
                self.elapsed_ms = *t_ms;
                self.interactions = *interactions;
                self.lines = *lines;
            }
            Event::CacheHit { .. } => self.cache_hits += 1,
            Event::CacheMiss { .. } => self.cache_misses += 1,
            Event::FaultInjected { wait_ms, .. } => {
                self.faults_injected += 1;
                self.profile.fetch_ms += wait_ms;
            }
            Event::RetryScheduled { backoff_ms, .. } => {
                self.retries += 1;
                self.profile.fetch_ms += backoff_ms;
            }
            Event::FaultRecovered { .. } => self.fault_recoveries += 1,
            Event::SpanClosed { phase, dur_ms, .. } => {
                self.spans += 1;
                *self.span_phase_ms.entry(phase.clone()).or_insert(0.0) += dur_ms;
            }
            Event::CoverageDelta { .. } | Event::CellFinished { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_sorted_and_totals() {
        let mut c = Counter::new();
        c.add("tail", 2);
        c.add("head", 1);
        c.add("tail", 1);
        assert_eq!(c.get("tail"), 3);
        assert_eq!(c.get("missing"), 0);
        assert_eq!(c.total(), 4);
        let keys: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["head", "tail"]);
    }

    #[test]
    fn reward_stats_track_extremes_and_mean() {
        let mut s = RewardStats::default();
        s.record(0.2);
        s.record(0.8);
        assert_eq!(s.count, 2);
        assert!((s.mean() - 0.5).abs() < 1e-12);
        assert_eq!(s.min, 0.2);
        assert_eq!(s.max, 0.8);
        assert_eq!(RewardStats::default().mean(), 0.0);
    }

    #[test]
    fn histogram_buckets_including_overflow() {
        let mut h = Histogram::new(vec![10.0, 20.0]);
        h.record(5.0);
        h.record(15.0);
        h.record(99.0);
        assert_eq!(h.total(), 3);
        let rows = h.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], ("<= 10".to_owned(), 1));
        assert_eq!(rows[2], ("> 20".to_owned(), 1));
    }

    #[test]
    fn aggregator_folds_a_synthetic_stream() {
        let mut agg = Aggregator::new();
        let events = [
            Event::RunStarted {
                app: "phpbb2".into(),
                crawler: "mak".into(),
                seed: 3,
                budget_ms: 60_000.0,
            },
            Event::StepStarted { step: 0, t_ms: 0.0, policy_ms: 2.0 },
            Event::ActionChosen { arm: "Head".into(), probs: vec![0.4, 0.3, 0.3] },
            Event::PageFetched {
                url: "http://a/".into(),
                status: 200,
                fetch_ms: 100.0,
                think_ms: 1350.0,
                interact_ms: 20.0,
                elements: 10,
            },
            Event::RewardComputed { step: 0, action: "Head".into(), reward: 0.5 },
            Event::DequeDepth { len: 7, levels: vec![3, 4] },
            Event::StepFinished {
                step: 0,
                t_ms: 1472.0,
                action: "Head".into(),
                reward: Some(0.5),
                interactions: 1,
                lines: 40,
                distinct_urls: 2,
            },
            Event::CacheHit { app: "phpbb2".into(), crawler: "mak".into(), seed: 3 },
            Event::CacheMiss { app: "phpbb2".into(), crawler: "bfs".into(), seed: 3 },
            Event::RunFinished { t_ms: 1472.0, steps: 1, interactions: 1, lines: 40 },
        ];
        for ev in &events {
            agg.on_event(ev);
        }
        assert_eq!(agg.app, "phpbb2");
        assert_eq!(agg.steps, 1);
        assert_eq!(agg.steps_per_arm.get("Head"), 1);
        assert_eq!(agg.pages, 1);
        assert_eq!(agg.deque_peak, 7);
        assert_eq!(agg.lines, 40);
        assert!((agg.profile.total_ms() - 1472.0).abs() < 1e-9);
        assert!((agg.cache_hit_rate() - 0.5).abs() < 1e-12);
        assert!((agg.rewards_per_arm["Head"].mean() - 0.5).abs() < 1e-12);
        assert!(agg.steps_per_virtual_sec() > 0.0);
    }
}
