//! Hierarchical span profiling: *where* the time goes, not just how much.
//!
//! A span is one timed phase of work — a whole engine step, the browser
//! executing an action, the server rendering a page — with a parent link
//! to the span it ran inside of. Spans ride on the existing
//! [`SinkHandle`](crate::sink::SinkHandle): opening one on the shared
//! span stack and closing it emits a single
//! [`Event::SpanClosed`](crate::event::Event::SpanClosed) into whatever
//! sink the handle carries, so span streams inherit every property of the
//! event layer (JSONL recording, flight-recorder analysis, diffing).
//!
//! Three rules keep the layer inside the determinism contract:
//!
//! 1. **Opt-in.** A handle carries span state only after
//!    [`SinkHandle::with_spans`](crate::sink::SinkHandle::with_spans);
//!    by default every span call is a single `Option` check and a
//!    return, so uninstrumented runs pay nothing.
//! 2. **Virtual time inside a run.** Per-crawl spans carry virtual-clock
//!    milliseconds, so a span stream is a pure function of
//!    `(app, crawler, seed, config)` — byte-identical across reruns,
//!    thread counts, and scheduler orders. Bench-side spans
//!    ([`Phase::CacheIo`]) carry wall time, mirroring the
//!    `CellFinished` precedent: they are emitted outside any crawl and
//!    never enter a per-crawl trace.
//! 3. **Ids are allocation order.** Span ids count up from 1 per span
//!    state (0 is "no parent"), so the id sequence is as deterministic
//!    as the instrumentation call sequence itself.
//!
//! [`PhaseTotals`] is the always-on counterpart: a fixed set of leaf
//! phases whose virtual milliseconds partition a crawl's elapsed time
//! exactly. The browser accumulates it unconditionally (a few float adds
//! per navigation), the engine folds it into the `CrawlReport`, and the
//! bench/regress layers gate on the per-phase *shares* it yields.

use serde::{Deserialize, Serialize};

/// The phase taxonomy: what kind of work a span timed.
///
/// `Step` and `ExecuteAction` are umbrella phases (they contain other
/// spans); the rest are leaves. Leaf phases `PolicyChoose`, `Render`,
/// `Think`, `ExtractInteractables`, and `Backoff` partition a crawl's
/// virtual time exactly — see [`PhaseTotals`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// One whole engine step (`Session::step`): policy charge through
    /// coverage sampling. Umbrella.
    Step,
    /// The modeled cost of the crawler deciding what to do next — the
    /// per-step policy-overhead charge.
    PolicyChoose,
    /// Exp3.1 drawing an arm (instantaneous in virtual time; the charge
    /// is accounted under [`Phase::PolicyChoose`]).
    BanditChoose,
    /// Exp3.1 folding a reward in (instantaneous in virtual time).
    RewardUpdate,
    /// The browser executing one interactable (link, button, or form).
    /// Umbrella over `Render`/`Think`/`ExtractInteractables`/`Backoff`.
    ExecuteAction,
    /// Server-side page production plus network: the jittered base
    /// latency, redirect hops, and fault waits.
    Render,
    /// The fixed client think/parse charge per fetched page.
    Think,
    /// Per-element interactable extraction on the fetched page.
    ExtractInteractables,
    /// Retry backoff after a retryable fault.
    Backoff,
    /// Run-cache load/save I/O (bench-side; wall milliseconds).
    CacheIo,
    /// One scheduler slice dispatched to a worker (serve-side; wall
    /// milliseconds, surfaced via wall-domain telemetry only).
    SchedulerDispatch,
}

impl Phase {
    /// Every phase, in declaration order.
    pub const ALL: [Phase; 11] = [
        Phase::Step,
        Phase::PolicyChoose,
        Phase::BanditChoose,
        Phase::RewardUpdate,
        Phase::ExecuteAction,
        Phase::Render,
        Phase::Think,
        Phase::ExtractInteractables,
        Phase::Backoff,
        Phase::CacheIo,
        Phase::SchedulerDispatch,
    ];

    /// The stable string form carried in events, metric labels, and
    /// blessed gate files.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Step => "Step",
            Phase::PolicyChoose => "PolicyChoose",
            Phase::BanditChoose => "BanditChoose",
            Phase::RewardUpdate => "RewardUpdate",
            Phase::ExecuteAction => "ExecuteAction",
            Phase::Render => "Render",
            Phase::Think => "Think",
            Phase::ExtractInteractables => "ExtractInteractables",
            Phase::Backoff => "Backoff",
            Phase::CacheIo => "CacheIo",
            Phase::SchedulerDispatch => "SchedulerDispatch",
        }
    }

    /// Parses the string form back; `None` for unknown phases (a newer
    /// trace read by an older analyzer).
    pub fn parse(s: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.as_str() == s)
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A handle to an open span, returned by
/// [`SinkHandle::span_open`](crate::sink::SinkHandle::span_open) and
/// consumed by `span_close`. The inert token (from a handle without span
/// state) makes the close a no-op.
#[derive(Debug)]
#[must_use = "an open span must be closed"]
pub struct SpanToken {
    pub(crate) id: u64,
    pub(crate) parent: u64,
    pub(crate) phase: Phase,
    pub(crate) start_ms: f64,
}

impl SpanToken {
    /// The token every span call on a span-less handle returns.
    pub(crate) const INERT: SpanToken =
        SpanToken { id: 0, parent: 0, phase: Phase::Step, start_ms: 0.0 };

    /// Whether this token refers to a real open span.
    pub fn is_active(&self) -> bool {
        self.id != 0
    }
}

/// The per-handle span bookkeeping: the id allocator, the open-span
/// stack (for parent links), and the latched "now" used by
/// instrumentation sites that have no clock of their own (Exp3.1).
#[derive(Debug, Default)]
pub(crate) struct SpanState {
    next_id: u64,
    stack: Vec<u64>,
    now_ms: f64,
}

impl SpanState {
    /// Allocates the next span id (ids start at 1; 0 means "no parent").
    pub(crate) fn open(&mut self, start_ms: f64) -> (u64, u64) {
        self.next_id += 1;
        let id = self.next_id;
        let parent = self.stack.last().copied().unwrap_or(0);
        self.stack.push(id);
        self.now_ms = self.now_ms.max(start_ms);
        (id, parent)
    }

    /// Pops `id` off the stack, tolerating mismatched nesting (an
    /// early-returned frame that closed out of order must not poison
    /// later parents).
    pub(crate) fn close(&mut self, id: u64, end_ms: f64) {
        while let Some(top) = self.stack.pop() {
            if top == id {
                break;
            }
        }
        self.now_ms = self.now_ms.max(end_ms);
    }

    /// Allocates an id for a leaf span without pushing it on the stack.
    pub(crate) fn leaf(&mut self, end_ms: f64) -> (u64, u64) {
        self.next_id += 1;
        let parent = self.stack.last().copied().unwrap_or(0);
        self.now_ms = self.now_ms.max(end_ms);
        (self.next_id, parent)
    }

    /// The latched virtual time (for clock-less emitters).
    pub(crate) fn now_ms(&self) -> f64 {
        self.now_ms
    }

    /// `(next_id, now_ms)` for checkpointing. Only meaningful between
    /// steps, when the open-span stack is empty — the id allocator and
    /// latched clock are all that must survive a restore for post-resume
    /// `SpanClosed` events to be byte-identical.
    pub(crate) fn snapshot(&self) -> (u64, f64) {
        debug_assert!(self.stack.is_empty(), "snapshot with open spans");
        (self.next_id, self.now_ms)
    }

    /// Rebuilds the allocator mid-run with an empty stack.
    pub(crate) fn restore(next_id: u64, now_ms: f64) -> Self {
        SpanState { next_id, stack: Vec::new(), now_ms }
    }

    /// Latches the virtual time.
    pub(crate) fn set_now(&mut self, t_ms: f64) {
        self.now_ms = t_ms;
    }
}

/// Always-on per-phase virtual-time totals for one crawl.
///
/// The five buckets partition the virtual clock exactly: every
/// `clock.advance` in the browser/engine is attributed to exactly one of
/// them, so `total_ms()` equals the run's elapsed virtual milliseconds
/// (up to float summation order). Accumulated unconditionally — a few
/// float adds per navigation — so the breakdown is available in every
/// `CrawlReport`, cached cells included.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTotals {
    /// [`Phase::PolicyChoose`]: per-decision policy overhead.
    pub policy_ms: f64,
    /// [`Phase::Render`]: base latency, redirect hops, fault waits.
    pub render_ms: f64,
    /// [`Phase::Think`]: fixed client think/parse charge.
    pub think_ms: f64,
    /// [`Phase::ExtractInteractables`]: per-element extraction cost.
    pub extract_ms: f64,
    /// [`Phase::Backoff`]: retry backoff after retryable faults.
    pub backoff_ms: f64,
}

impl PhaseTotals {
    /// Sum over all buckets.
    pub fn total_ms(&self) -> f64 {
        self.policy_ms + self.render_ms + self.think_ms + self.extract_ms + self.backoff_ms
    }

    /// `(phase, ms)` rows in a fixed order, keyed by [`Phase::as_str`].
    pub fn rows(&self) -> [(Phase, f64); 5] {
        [
            (Phase::PolicyChoose, self.policy_ms),
            (Phase::Render, self.render_ms),
            (Phase::Think, self.think_ms),
            (Phase::ExtractInteractables, self.extract_ms),
            (Phase::Backoff, self.backoff_ms),
        ]
    }

    /// The bucket's share of the total, in `[0, 1]` (0.0 on an empty
    /// profile).
    pub fn share(&self, phase: Phase) -> f64 {
        let total = self.total_ms();
        if total <= 0.0 {
            return 0.0;
        }
        self.rows().iter().find(|(p, _)| *p == phase).map_or(0.0, |(_, ms)| ms / total)
    }

    /// Folds another profile in (bench-side aggregation across cells).
    pub fn add(&mut self, other: &PhaseTotals) {
        self.policy_ms += other.policy_ms;
        self.render_ms += other.render_ms;
        self.think_ms += other.think_ms;
        self.extract_ms += other.extract_ms;
        self.backoff_ms += other.backoff_ms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_strings_round_trip() {
        for phase in Phase::ALL {
            assert_eq!(Phase::parse(phase.as_str()), Some(phase));
            assert_eq!(phase.to_string(), phase.as_str());
        }
        assert_eq!(Phase::parse("NotAPhase"), None);
    }

    #[test]
    fn span_state_links_parents_by_stack() {
        let mut s = SpanState::default();
        let (step, root) = s.open(0.0);
        assert_eq!((step, root), (1, 0));
        let (child, parent) = s.open(1.0);
        assert_eq!((child, parent), (2, 1));
        let (leaf, leaf_parent) = s.leaf(2.0);
        assert_eq!((leaf, leaf_parent), (3, 2));
        s.close(child, 3.0);
        let (leaf2, leaf2_parent) = s.leaf(3.0);
        assert_eq!(leaf2_parent, step, "after closing the child, leaves hang off the step");
        assert_eq!(leaf2, 4);
        s.close(step, 4.0);
        assert_eq!(s.now_ms(), 4.0);
    }

    #[test]
    fn mismatched_close_unwinds_to_the_target() {
        let mut s = SpanState::default();
        let (outer, _) = s.open(0.0);
        let (_inner, _) = s.open(1.0);
        // Closing the outer span with the inner still open (an early
        // return skipped the inner close) unwinds both.
        s.close(outer, 2.0);
        let (_, parent) = s.leaf(3.0);
        assert_eq!(parent, 0, "stack fully unwound");
    }

    #[test]
    fn totals_partition_and_share() {
        let mut t = PhaseTotals {
            policy_ms: 10.0,
            render_ms: 50.0,
            think_ms: 30.0,
            extract_ms: 10.0,
            backoff_ms: 0.0,
        };
        assert_eq!(t.total_ms(), 100.0);
        assert!((t.share(Phase::Render) - 0.5).abs() < 1e-12);
        assert_eq!(t.share(Phase::Backoff), 0.0);
        assert_eq!(PhaseTotals::default().share(Phase::Render), 0.0);
        let other = PhaseTotals { backoff_ms: 5.0, ..PhaseTotals::default() };
        t.add(&other);
        assert_eq!(t.backoff_ms, 5.0);
        assert_eq!(t.total_ms(), 105.0);
    }

    #[test]
    fn totals_round_trip_through_json() {
        let t = PhaseTotals {
            policy_ms: 1.5,
            render_ms: 2.5,
            think_ms: 3.5,
            extract_ms: 4.5,
            backoff_ms: 0.0,
        };
        let json = serde_json::to_string(&t).unwrap();
        let back: PhaseTotals = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
