//! The event taxonomy: one externally tagged enum, every variant a
//! named-field struct so the vendored `serde_derive` (no attributes, no
//! tuple variants) can round-trip it.
//!
//! Emission sites, in stack order:
//!
//! | variant | emitted by |
//! |---|---|
//! | `RunStarted` / `RunFinished` | `mak::framework::engine` |
//! | `StepStarted` / `RewardComputed` / `StepFinished` | `mak::framework::engine` |
//! | `ActionChosen` / `DequeDepth` | `mak::mak::{crawler,ensemble}` |
//! | `PolicyUpdated` / `EpochAdvanced` | `mak_bandit::exp31` |
//! | `PageFetched` / `RedirectFollowed` | `mak_browser::client` |
//! | `CoverageDelta` | `mak_websim::server::AppHost` |
//! | `CacheHit` / `CacheMiss` | `mak_metrics::store::RunStore` |
//! | `CellFinished` | `mak_metrics::experiment` (bench-side) |
//! | `FaultInjected` / `RetryScheduled` / `FaultRecovered` | `mak_browser::client` (fault layer) |
//! | `SpanClosed` | every span-instrumented site (see [`crate::span`]) |
//!
//! All `t_ms` / `*_ms` fields inside a run are **virtual-clock**
//! milliseconds. `CellFinished::wall_ms` is the one wall-clock field; it
//! is emitted outside any crawl and never appears in a per-crawl trace.

use serde::{Deserialize, Serialize};

/// A structured observation from somewhere in the stack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A crawl began: identity of the cell plus the virtual budget.
    RunStarted { app: String, crawler: String, seed: u64, budget_ms: f64 },
    /// A checkpointed crawl resumed mid-run: identity of the cell plus
    /// where the restored session picks up. Emitted *instead of*
    /// `RunStarted` by a restored session, so a resumed JSONL stream is
    /// `SessionResumed` followed by exactly the events the uninterrupted
    /// run would have produced from `step` onward.
    SessionResumed { app: String, crawler: String, seed: u64, step: u64, t_ms: f64 },
    /// The engine is about to run step `step`; `policy_ms` is the
    /// virtual policy-overhead charge made before the step.
    StepStarted { step: u64, t_ms: f64, policy_ms: f64 },
    /// A MAK-family crawler chose deque arm `arm` under the current
    /// arm distribution `probs` (indexed Head, Tail, Random).
    ActionChosen { arm: String, probs: Vec<f64> },
    /// The browser fetched an HTML page. Cost is split into the three
    /// cost-model buckets; their sum is exactly what the virtual clock
    /// was charged.
    PageFetched {
        url: String,
        status: u16,
        fetch_ms: f64,
        think_ms: f64,
        interact_ms: f64,
        elements: u64,
    },
    /// The browser followed one redirect hop toward `url`.
    RedirectFollowed { url: String, fetch_ms: f64 },
    /// Server-side line coverage grew to `lines` (by `delta`) while
    /// handling request number `request`.
    CoverageDelta { request: u64, lines: u64, delta: u64 },
    /// The engine observed reward `reward` for `action` at step `step`.
    RewardComputed { step: u64, action: String, reward: f64 },
    /// Exp3.1 finished an importance-weighted update. `updates` counts
    /// completed updates, `max_gain` is max Ĝᵢ, `bound` the
    /// epoch-termination bound g_m − K/γ_m; weights are summarized by
    /// their extremes so sinks can check finiteness/positivity.
    PolicyUpdated {
        probs: Vec<f64>,
        gamma: f64,
        epoch: u32,
        updates: u64,
        max_gain: f64,
        bound: f64,
        min_weight: f64,
        max_weight: f64,
    },
    /// Exp3.1 advanced to `epoch` (new exploration rate `gamma`).
    EpochAdvanced { epoch: u32, gamma: f64 },
    /// Leveled-deque occupancy after a step: total and per-level.
    DequeDepth { len: u64, levels: Vec<u64> },
    /// A step completed. `t_ms` is the virtual clock after the step;
    /// `lines` is server-side coverage, `distinct_urls` the crawler's
    /// count. `reward` is `None` for steps that performed no rewarded
    /// interaction.
    StepFinished {
        step: u64,
        t_ms: f64,
        action: String,
        reward: Option<f64>,
        interactions: u64,
        lines: u64,
        distinct_urls: u64,
    },
    /// The crawl ended (budget exhausted or crawler finished).
    RunFinished { t_ms: f64, steps: u64, interactions: u64, lines: u64 },
    /// The run cache served this cell without executing it.
    CacheHit { app: String, crawler: String, seed: u64 },
    /// The run cache had no entry (or was disabled) for this cell.
    CacheMiss { app: String, crawler: String, seed: u64 },
    /// Bench-side: one matrix cell finished. `wall_ms` is **wall-clock**
    /// host time (the only non-virtual quantity in the taxonomy);
    /// `virtual_secs` is the crawl's virtual duration.
    CellFinished {
        app: String,
        crawler: String,
        seed: u64,
        wall_ms: f64,
        virtual_secs: f64,
        interactions: u64,
        cached: bool,
    },
    /// The fault layer injected a fault of `kind` while handling `url`;
    /// `wait_ms` is the virtual time the failed attempt wasted (0 for
    /// session expiry, which proceeds anonymously).
    FaultInjected { kind: String, url: String, wait_ms: f64 },
    /// A retryable fault scheduled retry number `attempt` after a
    /// capped-exponential backoff of `backoff_ms` virtual milliseconds.
    RetryScheduled { attempt: u64, backoff_ms: f64 },
    /// A navigation succeeded after `attempts` failed attempts.
    FaultRecovered { attempts: u64 },
    /// A profiling span closed (see [`crate::span`]): work of `phase`
    /// ran `[t_ms, t_ms + dur_ms]` nested under span `parent` (0 = no
    /// parent). Ids count up from 1 in allocation order. Times are
    /// virtual-clock ms inside a crawl; bench-side `CacheIo` spans carry
    /// wall ms and, like `CellFinished`, never enter a per-crawl trace.
    SpanClosed { id: u64, parent: u64, phase: String, t_ms: f64, dur_ms: f64 },
}

impl Event {
    /// Every variant name, in declaration order. Paired with
    /// [`Event::samples`] and the wildcard-free matches in
    /// [`Event::kind`] and `flight::FlightRecorder`, this is the
    /// exhaustiveness contract: a variant added without analyzer support
    /// fails to compile (the matches) or fails the workspace
    /// observability tests (this list).
    pub const ALL_KINDS: [&'static str; 20] = [
        "RunStarted",
        "SessionResumed",
        "StepStarted",
        "ActionChosen",
        "PageFetched",
        "RedirectFollowed",
        "CoverageDelta",
        "RewardComputed",
        "PolicyUpdated",
        "EpochAdvanced",
        "DequeDepth",
        "StepFinished",
        "RunFinished",
        "CacheHit",
        "CacheMiss",
        "CellFinished",
        "FaultInjected",
        "RetryScheduled",
        "FaultRecovered",
        "SpanClosed",
    ];

    /// One synthetic sample of every variant, in [`Event::ALL_KINDS`]
    /// order — test scaffolding for exhaustiveness guards and sink tests.
    pub fn samples() -> Vec<Event> {
        vec![
            Event::RunStarted {
                app: "app".into(),
                crawler: "mak".into(),
                seed: 1,
                budget_ms: 60_000.0,
            },
            Event::SessionResumed {
                app: "app".into(),
                crawler: "mak".into(),
                seed: 1,
                step: 4,
                t_ms: 6_000.0,
            },
            Event::StepStarted { step: 0, t_ms: 0.0, policy_ms: 2.0 },
            Event::ActionChosen { arm: "Head".into(), probs: vec![0.4, 0.3, 0.3] },
            Event::PageFetched {
                url: "http://a/".into(),
                status: 200,
                fetch_ms: 100.0,
                think_ms: 1_350.0,
                interact_ms: 20.0,
                elements: 10,
            },
            Event::RedirectFollowed { url: "http://a/b".into(), fetch_ms: 50.0 },
            Event::CoverageDelta { request: 1, lines: 40, delta: 40 },
            Event::RewardComputed { step: 0, action: "Head".into(), reward: 0.5 },
            Event::PolicyUpdated {
                probs: vec![0.4, 0.3, 0.3],
                gamma: 0.5,
                epoch: 1,
                updates: 1,
                max_gain: 1.0,
                bound: 10.0,
                min_weight: 1.0,
                max_weight: 2.0,
            },
            Event::EpochAdvanced { epoch: 2, gamma: 0.25 },
            Event::DequeDepth { len: 7, levels: vec![3, 4] },
            Event::StepFinished {
                step: 0,
                t_ms: 1_500.0,
                action: "Head".into(),
                reward: Some(0.5),
                interactions: 1,
                lines: 40,
                distinct_urls: 2,
            },
            Event::RunFinished { t_ms: 1_500.0, steps: 1, interactions: 1, lines: 40 },
            Event::CacheHit { app: "app".into(), crawler: "mak".into(), seed: 1 },
            Event::CacheMiss { app: "app".into(), crawler: "bfs".into(), seed: 1 },
            Event::CellFinished {
                app: "app".into(),
                crawler: "mak".into(),
                seed: 1,
                wall_ms: 12.0,
                virtual_secs: 60.0,
                interactions: 1,
                cached: false,
            },
            Event::FaultInjected {
                kind: "Timeout".into(),
                url: "http://a/slow".into(),
                wait_ms: 2_200.0,
            },
            Event::RetryScheduled { attempt: 1, backoff_ms: 500.0 },
            Event::FaultRecovered { attempts: 1 },
            Event::SpanClosed {
                id: 2,
                parent: 1,
                phase: "Render".into(),
                t_ms: 2.0,
                dur_ms: 100.0,
            },
        ]
    }

    /// The variant name, e.g. `"StepFinished"` — handy for counting and
    /// for asserting on JSONL streams.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunStarted { .. } => "RunStarted",
            Event::SessionResumed { .. } => "SessionResumed",
            Event::StepStarted { .. } => "StepStarted",
            Event::ActionChosen { .. } => "ActionChosen",
            Event::PageFetched { .. } => "PageFetched",
            Event::RedirectFollowed { .. } => "RedirectFollowed",
            Event::CoverageDelta { .. } => "CoverageDelta",
            Event::RewardComputed { .. } => "RewardComputed",
            Event::PolicyUpdated { .. } => "PolicyUpdated",
            Event::EpochAdvanced { .. } => "EpochAdvanced",
            Event::DequeDepth { .. } => "DequeDepth",
            Event::StepFinished { .. } => "StepFinished",
            Event::RunFinished { .. } => "RunFinished",
            Event::CacheHit { .. } => "CacheHit",
            Event::CacheMiss { .. } => "CacheMiss",
            Event::CellFinished { .. } => "CellFinished",
            Event::FaultInjected { .. } => "FaultInjected",
            Event::RetryScheduled { .. } => "RetryScheduled",
            Event::FaultRecovered { .. } => "FaultRecovered",
            Event::SpanClosed { .. } => "SpanClosed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_json() {
        let events = vec![
            Event::RunStarted {
                app: "phpbb2".into(),
                crawler: "mak".into(),
                seed: 7,
                budget_ms: 1_800_000.0,
            },
            Event::ActionChosen { arm: "Head".into(), probs: vec![0.4, 0.3, 0.3] },
            Event::StepFinished {
                step: 3,
                t_ms: 4_500.5,
                action: "Head".into(),
                reward: Some(0.25),
                interactions: 4,
                lines: 120,
                distinct_urls: 9,
            },
            Event::StepFinished {
                step: 4,
                t_ms: 6_000.0,
                action: "Tail".into(),
                reward: None,
                interactions: 4,
                lines: 120,
                distinct_urls: 9,
            },
            Event::CacheHit { app: "a".into(), crawler: "bfs".into(), seed: 0 },
        ];
        for ev in &events {
            let json = serde_json::to_string(ev).unwrap();
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, ev, "round trip of {json}");
        }
    }

    #[test]
    fn samples_cover_every_kind_in_order() {
        let kinds: Vec<&str> = Event::samples().iter().map(Event::kind).collect();
        assert_eq!(kinds, Event::ALL_KINDS, "one sample per variant, declaration order");
        for ev in Event::samples() {
            let json = serde_json::to_string(&ev).unwrap();
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(back, ev, "sample round trip of {json}");
        }
    }

    #[test]
    fn kind_matches_serialized_tag() {
        let ev = Event::EpochAdvanced { epoch: 2, gamma: 0.5 };
        let json = serde_json::to_string(&ev).unwrap();
        assert!(json.contains("\"EpochAdvanced\""), "{json}");
        assert_eq!(ev.kind(), "EpochAdvanced");
    }
}
