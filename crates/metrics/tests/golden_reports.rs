//! Golden-snapshot tests: one canonical [`CrawlReport`] per registered
//! crawler, for a fixed `(app, seed, small budget)` cell, committed under
//! `tests/golden/`. Any behavioural drift in a crawler, the engine, the
//! cost model, or the app shows up as a byte-level diff here.
//!
//! To bless new snapshots after an *intentional* behaviour change:
//!
//! ```text
//! MAK_BLESS=1 cargo test -p mak-metrics --test golden_reports
//! ```
//!
//! (and re-run the bench binaries so EXPERIMENTS.md follows).

use mak::framework::engine::EngineConfig;
use mak::spec::CRAWLER_NAMES;
use mak_metrics::experiment::run_one;
use std::path::PathBuf;

const GOLDEN_APP: &str = "addressbook";
const GOLDEN_SEED: u64 = 0;
const GOLDEN_MINUTES: f64 = 2.0;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

fn canonical_report(crawler: &str) -> String {
    let config = EngineConfig::with_budget_minutes(GOLDEN_MINUTES);
    let report = run_one(GOLDEN_APP, crawler, GOLDEN_SEED, &config);
    let mut json = serde_json::to_string_pretty(&report).expect("report serializes");
    json.push('\n');
    json
}

#[test]
fn reports_match_committed_goldens() {
    let dir = golden_dir();
    let bless = std::env::var("MAK_BLESS").is_ok();
    for crawler in CRAWLER_NAMES {
        let json = canonical_report(crawler);
        let path = dir.join(format!("{crawler}.json"));
        if bless {
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(&path, &json).unwrap();
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden {} ({e}); bless with MAK_BLESS=1 cargo test -p mak-metrics \
                 --test golden_reports",
                path.display()
            )
        });
        assert_eq!(
            json, golden,
            "{crawler} on {GOLDEN_APP} diverged from its golden snapshot. If the change is \
             intentional, re-bless with MAK_BLESS=1 and refresh EXPERIMENTS.md via the bench \
             binaries."
        );
    }
}

#[test]
fn report_regeneration_is_bit_identical() {
    for crawler in CRAWLER_NAMES {
        assert_eq!(
            canonical_report(crawler),
            canonical_report(crawler),
            "{crawler}: two in-process regenerations must serialize identically"
        );
    }
}

#[test]
fn reports_are_identical_across_threads() {
    // The hot path interns signatures and URLs into per-run tables; symbol
    // ids are insertion-ordered, never hash- or thread-dependent, so a run
    // on a worker thread serializes byte-for-byte like one on the main
    // thread. This is what lets the run cache and the golden snapshots
    // survive the interning layer unchanged.
    for crawler in ["mak", "webexplor"] {
        let main = canonical_report(crawler);
        let worker = std::thread::spawn(move || canonical_report(crawler))
            .join()
            .expect("worker run completes");
        assert_eq!(main, worker, "{crawler}: thread placement leaked into the report");
    }
}
