//! Rendering and persistence of experiment results.

use mak::framework::engine::CrawlReport;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Renders a GitHub-style markdown table.
///
/// # Panics
///
/// Panics if any row's width differs from the header's.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", headers.join(" | "));
    let _ = writeln!(out, "|{}|", headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width mismatch");
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

/// Renders comma-separated values with a header line.
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", headers.join(","));
    for row in rows {
        let _ = writeln!(out, "{}", row.join(","));
    }
    out
}

/// A compact, JSON-serializable view of a [`CrawlReport`] without the bulky
/// per-line coverage set — what the bench harness persists for
/// EXPERIMENTS.md regeneration.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct RunSummary {
    /// Crawler name.
    pub crawler: String,
    /// Application name.
    pub app: String,
    /// Seed of the run.
    pub seed: u64,
    /// Atomic interactions performed.
    pub interactions: u64,
    /// Lines covered at the end of the run.
    pub final_lines_covered: u64,
    /// Total declared server-side lines.
    pub total_declared_lines: u64,
    /// Distinct same-origin URLs gathered.
    pub distinct_urls: usize,
    /// States created (state-based crawlers only).
    pub state_count: Option<usize>,
}

impl From<&CrawlReport> for RunSummary {
    fn from(r: &CrawlReport) -> Self {
        RunSummary {
            crawler: r.crawler.clone(),
            app: r.app.clone(),
            seed: r.seed,
            interactions: r.interactions,
            final_lines_covered: r.final_lines_covered,
            total_declared_lines: r.total_declared_lines,
            distinct_urls: r.distinct_urls,
            state_count: r.state_count,
        }
    }
}

/// Serializes summaries to pretty JSON.
///
/// # Errors
///
/// Returns a [`serde_json::Error`] if serialization fails (practically
/// impossible for this data shape).
pub fn to_json(summaries: &[RunSummary]) -> serde_json::Result<String> {
    serde_json::to_string_pretty(summaries)
}

/// Deserializes summaries from JSON.
///
/// # Errors
///
/// Returns a [`serde_json::Error`] on malformed input.
pub fn from_json(json: &str) -> serde_json::Result<Vec<RunSummary>> {
    serde_json::from_str(json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_has_separator_row() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("---"));
        assert!(lines[2].starts_with("| 1 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn markdown_rejects_ragged_rows() {
        markdown_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn csv_roundtrips_shape() {
        let t = csv(&["x", "y"], &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]]);
        assert_eq!(t, "x,y\n1,2\n3,4\n");
    }

    #[test]
    fn json_roundtrip() {
        let s = RunSummary {
            crawler: "mak".into(),
            app: "drupal".into(),
            seed: 3,
            interactions: 880,
            final_lines_covered: 50_445,
            total_declared_lines: 100_000,
            distinct_urls: 900,
            state_count: None,
        };
        let json = to_json(std::slice::from_ref(&s)).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(back, vec![s]);
        assert!(from_json("not json").is_err());
    }
}
