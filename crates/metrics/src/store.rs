//! Content-addressed on-disk cache of crawl runs.
//!
//! Every run is — by the repository's central invariant — a pure function
//! of `(app, crawler, seed, config)`. The paper's evaluation (§V-A.4) is a
//! grid of such runs, and the bench binaries re-execute overlapping cells
//! of that grid from scratch. A [`RunStore`] memoizes whole
//! [`CrawlReport`]s on disk so the second invocation of any bench binary is
//! near-instant while staying bit-identical to an uncached run.
//!
//! ## Layout
//!
//! One JSON file per cached run under `results/cache/` (override with
//! `MAK_CACHE_DIR`), named
//!
//! ```text
//! <app>__<crawler>__s<seed>__<key>.json
//! ```
//!
//! where `<key>` is a 128-bit FNV-1a hash of the canonical JSON encoding of
//! `(app, crawler, seed, EngineConfig)` — the config embeds the
//! [`CostModel`](mak_browser::cost::CostModel) — mixed with a fingerprint
//! of the workspace's source tree. Changing any config field *or any source
//! file* therefore changes the key and forces re-execution; stale entries
//! are simply never addressed again.
//!
//! ## Modes
//!
//! The `MAK_CACHE` environment variable selects a [`CacheMode`]:
//!
//! - `rw` (default) — load hits, execute and store misses;
//! - `ro` — load hits, execute misses without writing;
//! - `off` — execute everything, touch nothing on disk.

use mak::framework::engine::{CrawlReport, EngineConfig};
use mak_obs::aggregate::Counter;
use mak_obs::event::Event;
use mak_obs::sink::SharedSink;
use mak_telemetry::{Domain, TelemetryHandle};
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Default cache directory, relative to the invocation directory (the
/// workspace root for `cargo run`).
pub const DEFAULT_CACHE_DIR: &str = "results/cache";

/// Bumped whenever the on-disk entry format changes incompatibly, so old
/// caches are invalidated instead of misread.
const SCHEMA_VERSION: u32 = 1;

/// What the cache is allowed to do (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Never read or write: every run executes.
    Off,
    /// Read hits, write misses — the default.
    ReadWrite,
    /// Read hits, never write.
    ReadOnly,
}

impl CacheMode {
    /// Parses `MAK_CACHE` (`off` / `rw` / `ro`, default `rw`; unknown
    /// values fall back to the default rather than erroring).
    pub fn from_env() -> Self {
        match std::env::var("MAK_CACHE").as_deref() {
            Ok("off") | Ok("0") | Ok("none") => CacheMode::Off,
            Ok("ro") | Ok("readonly") => CacheMode::ReadOnly,
            _ => CacheMode::ReadWrite,
        }
    }
}

/// 64-bit FNV-1a over a byte stream.
fn fnv1a64(init: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = init;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The standard FNV-1a 64-bit offset basis.
const FNV64_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// 128-bit FNV-1a over a byte stream.
fn fnv1a128(init: u128, bytes: &[u8]) -> u128 {
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = init;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The standard FNV-1a 128-bit offset basis.
const FNV128_BASIS: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;

/// Canonical key material. Serialized with `serde_json` — struct field
/// order is fixed and float formatting is shortest-round-trip, so the
/// encoding (and hence the hash) is stable across processes.
#[derive(Serialize)]
struct KeyMaterial<'a> {
    schema: u32,
    fingerprint: u64,
    app: &'a str,
    crawler: &'a str,
    seed: u64,
    config: &'a EngineConfig,
}

/// Walks `dir` collecting every `.rs` file and `Cargo.toml`, recursively,
/// skipping build artifacts.
fn collect_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "target" && name != ".git" {
                collect_sources(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") || name == "Cargo.toml" {
            out.push(path);
        }
    }
}

/// Finds the workspace root by walking up from the current directory
/// looking for a `Cargo.toml` declaring `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// A fingerprint of the workspace's source tree (every `.rs` and
/// `Cargo.toml` under the workspace root, paths and contents), computed
/// once per process.
///
/// Baked into every cache key so that *any* code change invalidates the
/// whole cache — conservative, but the alternative (trusting stale reports
/// after an engine change) would silently break the determinism invariant.
/// Falls back to a constant when no workspace root is found (e.g. when the
/// library is embedded elsewhere); such users should scope the cache
/// directory themselves.
pub fn workspace_fingerprint() -> u64 {
    static FP: OnceLock<u64> = OnceLock::new();
    *FP.get_or_init(|| {
        let Some(root) = find_workspace_root() else { return FNV64_BASIS };
        let mut files = Vec::new();
        collect_sources(&root, &mut files);
        let mut keyed: Vec<(String, PathBuf)> = files
            .into_iter()
            .map(|p| (p.strip_prefix(&root).unwrap_or(&p).display().to_string(), p))
            .collect();
        keyed.sort();
        let mut h = FNV64_BASIS;
        for (rel, path) in keyed {
            h = fnv1a64(h, rel.as_bytes());
            h = fnv1a64(h, &[0]);
            if let Ok(contents) = std::fs::read(&path) {
                h = fnv1a64(h, &contents);
            }
            h = fnv1a64(h, &[0xff]);
        }
        h
    })
}

/// Per-`(app, crawler)` cache accounting (see [`CacheStats::per_pair`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairStats {
    /// Number of cached run entries for the pair.
    pub entries: usize,
    /// Total size of those entries, in bytes.
    pub bytes: u64,
}

/// Aggregate statistics over a cache directory (see [`RunStore::stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of cached run entries.
    pub entries: usize,
    /// Total size of the entries, in bytes.
    pub bytes: u64,
    /// Entry counts and byte totals per `(app, crawler)` pair, in sorted
    /// order.
    pub per_pair: BTreeMap<(String, String), PairStats>,
}

impl CacheStats {
    /// Entry counts per application, folded from the per-pair stats.
    pub fn per_app(&self) -> Counter {
        let mut counter = Counter::new();
        for ((app, _), stats) in &self.per_pair {
            counter.add(app, stats.entries as u64);
        }
        counter
    }

    /// Entry counts per crawler, folded from the per-pair stats.
    pub fn per_crawler(&self) -> Counter {
        let mut counter = Counter::new();
        for ((_, crawler), stats) in &self.per_pair {
            counter.add(crawler, stats.entries as u64);
        }
        counter
    }

    /// Entry counts *and byte totals* per application.
    pub fn per_app_stats(&self) -> BTreeMap<String, PairStats> {
        let mut out: BTreeMap<String, PairStats> = BTreeMap::new();
        for ((app, _), stats) in &self.per_pair {
            let slot = out.entry(app.clone()).or_default();
            slot.entries += stats.entries;
            slot.bytes += stats.bytes;
        }
        out
    }

    /// Entry counts *and byte totals* per crawler.
    pub fn per_crawler_stats(&self) -> BTreeMap<String, PairStats> {
        let mut out: BTreeMap<String, PairStats> = BTreeMap::new();
        for ((_, crawler), stats) in &self.per_pair {
            let slot = out.entry(crawler.clone()).or_default();
            slot.entries += stats.entries;
            slot.bytes += stats.bytes;
        }
        out
    }
}

/// The content-addressed run cache (see the [module docs](self)).
#[derive(Debug)]
pub struct RunStore {
    root: PathBuf,
    mode: CacheMode,
    fingerprint: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    sink: SharedSink,
    telemetry: TelemetryHandle,
}

impl RunStore {
    /// A store rooted at `root` with the given mode, keyed with the
    /// workspace fingerprint.
    pub fn at(root: impl Into<PathBuf>, mode: CacheMode) -> Self {
        RunStore {
            root: root.into(),
            mode,
            fingerprint: workspace_fingerprint(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            sink: SharedSink::none(),
            telemetry: TelemetryHandle::none(),
        }
    }

    /// Attaches a thread-safe event sink; the store emits
    /// `CacheHit` / `CacheMiss` on every [`load`](Self::load). The sink
    /// must be [`SharedSink`] because matrix runners call `load` from
    /// worker threads.
    #[must_use]
    pub fn with_shared_sink(mut self, sink: SharedSink) -> Self {
        self.sink = sink;
        self
    }

    /// Attaches a telemetry handle; the store counts
    /// `mak_cache_hits_total` / `mak_cache_misses_total` (labeled by app
    /// and crawler) and read/written byte totals into it. The default
    /// handle is inert, so an unattached store pays one skipped branch
    /// per lookup.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Counts one lookup outcome. Cache traffic depends on prior on-disk
    /// state, so these families live in the wall-clock domain: excluded
    /// from deterministic artifacts.
    fn count_lookup(&self, hit: bool, app: &str, crawler: &str, bytes_read: u64) {
        self.telemetry.with(|r| {
            let metric = if hit { "mak_cache_hits_total" } else { "mak_cache_misses_total" };
            r.register_counter(metric, Domain::Wall, "Run-cache lookups, by outcome");
            r.inc(metric, &[("app", app), ("crawler", crawler)], 1);
            if bytes_read > 0 {
                r.register_counter(
                    "mak_cache_io_bytes_total",
                    Domain::Wall,
                    "Bytes moved through the run cache, by direction",
                );
                r.inc("mak_cache_io_bytes_total", &[("direction", "read")], bytes_read);
            }
        });
    }

    /// Counts bytes written by one `save`.
    fn count_write(&self, bytes_written: u64) {
        self.telemetry.with(|r| {
            r.register_counter(
                "mak_cache_io_bytes_total",
                Domain::Wall,
                "Bytes moved through the run cache, by direction",
            );
            r.inc("mak_cache_io_bytes_total", &[("direction", "written")], bytes_written);
        });
    }

    /// The store implied by the environment: `MAK_CACHE_DIR` (default
    /// [`DEFAULT_CACHE_DIR`]) and `MAK_CACHE` (default `rw`).
    pub fn from_env() -> Self {
        let root = std::env::var("MAK_CACHE_DIR").unwrap_or_else(|_| DEFAULT_CACHE_DIR.to_owned());
        Self::at(root, CacheMode::from_env())
    }

    /// A store that never reads or writes — [`CacheMode::Off`] regardless
    /// of the environment.
    pub fn disabled() -> Self {
        Self::at(DEFAULT_CACHE_DIR, CacheMode::Off)
    }

    /// Overrides the code fingerprint — test hook for simulating a source
    /// change without editing files.
    #[must_use]
    pub fn with_fingerprint(mut self, fingerprint: u64) -> Self {
        self.fingerprint = fingerprint;
        self
    }

    /// The cache directory this store addresses.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The store's mode.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// The code fingerprint baked into this store's keys.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Cache hits served by this store instance.
    pub fn session_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses recorded by this store instance (lookups that found no
    /// usable entry, including every lookup in [`CacheMode::Off`]).
    pub fn session_misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries this store instance found on disk but could not use —
    /// truncated writes, bit flips, schema drift, or an identity mismatch.
    /// Every one is also a [`session_misses`](Self::session_misses) miss.
    pub fn session_corrupt(&self) -> u64 {
        self.corrupt.load(Ordering::Relaxed)
    }

    /// The content-address of one run cell.
    pub fn key(&self, app: &str, crawler: &str, seed: u64, config: &EngineConfig) -> u128 {
        let material = KeyMaterial {
            schema: SCHEMA_VERSION,
            fingerprint: self.fingerprint,
            app,
            crawler,
            seed,
            config,
        };
        let bytes = serde_json::to_vec(&material).expect("key material serializes");
        fnv1a128(FNV128_BASIS, &bytes)
    }

    fn entry_path(&self, app: &str, crawler: &str, seed: u64, key: u128) -> PathBuf {
        self.root.join(format!("{app}__{crawler}__s{seed}__{key:032x}.json"))
    }

    /// Loads the cached report for a cell, if present and readable.
    ///
    /// Corrupt or mismatched entries — truncated JSON, bit flips, an
    /// entry whose embedded identity disagrees with its file name — are
    /// treated as misses, never panics: the caller re-executes the run
    /// and the next [`save`](Self::save) overwrites the bad bytes. The
    /// first such entry warns once per process on stderr (gated by
    /// `MAK_LOG`, like all cache chatter); the rest are counted silently
    /// ([`session_corrupt`](Self::session_corrupt)).
    pub fn load(
        &self,
        app: &str,
        crawler: &str,
        seed: u64,
        config: &EngineConfig,
    ) -> Option<CrawlReport> {
        if self.mode == CacheMode::Off {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.count_lookup(false, app, crawler, 0);
            self.sink.emit_with(|| Event::CacheMiss {
                app: app.to_owned(),
                crawler: crawler.to_owned(),
                seed,
            });
            return None;
        }
        let path = self.entry_path(app, crawler, seed, self.key(app, crawler, seed, config));
        let io_start = self.sink.is_active().then(std::time::Instant::now);
        let text = std::fs::read_to_string(&path).ok();
        self.emit_cache_io(io_start);
        let entry_bytes = text.as_ref().map_or(0, |t| t.len() as u64);
        let report = text
            .and_then(|text| match serde_json::from_str::<CrawlReport>(&text) {
                Ok(report) => Some(report),
                Err(e) => {
                    self.note_corrupt(&path, &format!("parse error: {e}"));
                    None
                }
            })
            .and_then(|r| {
                if r.app == app && r.crawler == crawler && r.seed == seed {
                    Some(r)
                } else {
                    self.note_corrupt(
                        &path,
                        &format!("identity mismatch: entry is {}/{}/s{}", r.app, r.crawler, r.seed),
                    );
                    None
                }
            });
        match report {
            Some(r) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.count_lookup(true, app, crawler, entry_bytes);
                self.sink.emit_with(|| Event::CacheHit {
                    app: app.to_owned(),
                    crawler: crawler.to_owned(),
                    seed,
                });
                Some(r)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.count_lookup(false, app, crawler, 0);
                self.sink.emit_with(|| Event::CacheMiss {
                    app: app.to_owned(),
                    crawler: crawler.to_owned(),
                    seed,
                });
                None
            }
        }
    }

    /// Counts one unusable on-disk entry and warns about the first in
    /// the process. One line total, not one per entry: a damaged cache
    /// directory can hold thousands of bad files, and the remedy (let
    /// the runs re-execute, or `mak-cli cache clear`) is the same for
    /// all of them.
    fn note_corrupt(&self, path: &Path, reason: &str) {
        self.corrupt.fetch_add(1, Ordering::Relaxed);
        static WARNED: std::sync::Once = std::sync::Once::new();
        WARNED.call_once(|| {
            mak_obs::progress!(
                "run cache: ignoring corrupt entry {} ({reason}); treating as a miss — \
                 further corrupt entries are counted silently",
                path.display()
            );
        });
    }

    /// Persists a freshly executed report under its cell's key. A no-op
    /// unless the store is [`CacheMode::ReadWrite`]; I/O errors are
    /// reported to stderr but never fail the run (the cache is an
    /// accelerator, not a dependency).
    pub fn save(&self, report: &CrawlReport, config: &EngineConfig) {
        if self.mode != CacheMode::ReadWrite {
            return;
        }
        let key = self.key(&report.app, &report.crawler, report.seed, config);
        let path = self.entry_path(&report.app, &report.crawler, report.seed, key);
        let json = match serde_json::to_string(report) {
            Ok(j) => j,
            Err(e) => {
                mak_obs::progress!("run cache: serialize {}: {e}", path.display());
                return;
            }
        };
        let io_start = self.sink.is_active().then(std::time::Instant::now);
        let write = self.write_atomic(&path, json.as_bytes());
        self.emit_cache_io(io_start);
        if let Err(e) = write {
            mak_obs::progress!("run cache: write {}: {e}", path.display());
        } else {
            self.count_write(json.len() as u64);
        }
    }

    /// Emits one bench-side `CacheIo` span covering a cache read or
    /// write. Wall milliseconds, mirroring the `CellFinished` precedent:
    /// these flow only through the bench's [`SharedSink`], never into a
    /// per-crawl trace, so crawl-path determinism is untouched. Span ids
    /// are 0 — bench-side spans carry no tree.
    fn emit_cache_io(&self, io_start: Option<std::time::Instant>) {
        if let Some(start) = io_start {
            let dur_ms = start.elapsed().as_secs_f64() * 1000.0;
            self.sink.emit_with(|| Event::SpanClosed {
                id: 0,
                parent: 0,
                phase: mak_obs::span::Phase::CacheIo.as_str().to_owned(),
                t_ms: 0.0,
                dur_ms,
            });
        }
    }

    /// Writes via a unique temporary file plus rename, so concurrent
    /// processes caching the same cell never observe torn entries.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.root)?;
        let file_name = path.file_name().and_then(|n| n.to_str()).unwrap_or("entry");
        let tmp = self.root.join(format!(".{file_name}.tmp{}", std::process::id()));
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, path)
    }

    /// Scans the cache directory and aggregates entry statistics.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats::default();
        let Ok(entries) = std::fs::read_dir(&self.root) else { return stats };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !name.ends_with(".json") {
                continue;
            }
            let mut parts = name.split("__");
            let (Some(app), Some(crawler)) = (parts.next(), parts.next()) else { continue };
            let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
            stats.entries += 1;
            stats.bytes += bytes;
            let pair = stats.per_pair.entry((app.to_owned(), crawler.to_owned())).or_default();
            pair.entries += 1;
            pair.bytes += bytes;
        }
        stats
    }

    /// Deletes every cached entry, returning how many were removed.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered while deleting.
    pub fn clear(&self) -> std::io::Result<usize> {
        let mut removed = 0;
        let entries = match std::fs::read_dir(&self.root) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let is_entry = name.to_str().is_some_and(|n| n.ends_with(".json"));
            if is_entry && entry.path().is_file() {
                std::fs::remove_file(entry.path())?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mak-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_report(seed: u64) -> CrawlReport {
        CrawlReport {
            crawler: "bfs".into(),
            app: "addressbook".into(),
            seed,
            interactions: 42,
            final_lines_covered: 1_000,
            total_declared_lines: 5_000,
            coverage_series: vec![],
            covered_lines: vec![(0, 1), (0, 2)],
            distinct_urls: 7,
            state_count: None,
            elapsed_secs: 59.5,
            trace: vec![],
            faults: Default::default(),
            phase: Default::default(),
        }
    }

    #[test]
    fn keys_are_stable_and_config_sensitive() {
        let store = RunStore::at(tmp_root("keys"), CacheMode::Off);
        let cfg = EngineConfig::with_budget_minutes(1.0);
        assert_eq!(store.key("a", "bfs", 0, &cfg), store.key("a", "bfs", 0, &cfg));
        assert_ne!(store.key("a", "bfs", 0, &cfg), store.key("a", "bfs", 1, &cfg));
        assert_ne!(store.key("a", "bfs", 0, &cfg), store.key("b", "bfs", 0, &cfg));
        let mut cfg2 = cfg.clone();
        cfg2.cost.think_ms += 1.0;
        assert_ne!(store.key("a", "bfs", 0, &cfg), store.key("a", "bfs", 0, &cfg2));
        let fp = RunStore::at(store.root(), CacheMode::Off).with_fingerprint(123);
        assert_ne!(store.key("a", "bfs", 0, &cfg), fp.key("a", "bfs", 0, &cfg));
    }

    #[test]
    fn fault_plans_partition_the_cache() {
        use mak_browser::fault::FaultPlan;
        let clean = EngineConfig::with_budget_minutes(1.0);
        let mut faulty = clean.clone();
        faulty.faults = FaultPlan::profile("moderate").unwrap();

        // The fault plan is part of the cache key…
        let keyed = RunStore::at(tmp_root("fault-keys"), CacheMode::Off);
        assert_ne!(keyed.key("a", "bfs", 0, &clean), keyed.key("a", "bfs", 0, &faulty));
        let mut seeded = clean.clone();
        seeded.faults = FaultPlan::profile("moderate").unwrap();
        seeded.faults.fault_seed = 99;
        assert_ne!(keyed.key("a", "bfs", 0, &faulty), keyed.key("a", "bfs", 0, &seeded));

        // …so a clean-run entry is never served for a faulty config…
        let store = RunStore::at(tmp_root("fault-clean"), CacheMode::ReadWrite);
        store.save(&sample_report(3), &clean);
        assert!(store.load("addressbook", "bfs", 3, &faulty).is_none());
        assert!(store.load("addressbook", "bfs", 3, &clean).is_some());

        // …and a faulty-run entry is never served for a clean config.
        let store = RunStore::at(tmp_root("fault-dirty"), CacheMode::ReadWrite);
        store.save(&sample_report(3), &faulty);
        assert!(store.load("addressbook", "bfs", 3, &clean).is_none());
        assert!(store.load("addressbook", "bfs", 3, &faulty).is_some());
    }

    #[test]
    fn save_load_roundtrip_is_identical() {
        let store = RunStore::at(tmp_root("roundtrip"), CacheMode::ReadWrite);
        let cfg = EngineConfig::with_budget_minutes(1.0);
        let report = sample_report(3);
        assert!(store.load("addressbook", "bfs", 3, &cfg).is_none());
        store.save(&report, &cfg);
        let back = store.load("addressbook", "bfs", 3, &cfg).expect("hit after save");
        assert_eq!(back, report, "cached reload must be field-for-field identical");
        assert_eq!(store.session_hits(), 1);
        assert_eq!(store.session_misses(), 1);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn off_mode_never_touches_disk() {
        let store = RunStore::at(tmp_root("off"), CacheMode::Off);
        let cfg = EngineConfig::default();
        store.save(&sample_report(0), &cfg);
        assert!(!store.root().exists(), "Off mode must not create the cache dir");
        assert!(store.load("addressbook", "bfs", 0, &cfg).is_none());
        assert_eq!(store.session_misses(), 1);
    }

    #[test]
    fn readonly_mode_reads_but_never_writes() {
        let root = tmp_root("ro");
        let rw = RunStore::at(&root, CacheMode::ReadWrite);
        let cfg = EngineConfig::default();
        rw.save(&sample_report(5), &cfg);
        let ro = RunStore::at(&root, CacheMode::ReadOnly);
        assert!(ro.load("addressbook", "bfs", 5, &cfg).is_some());
        ro.save(&sample_report(6), &cfg);
        assert!(ro.load("addressbook", "bfs", 6, &cfg).is_none(), "ro must not have written");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_entries_fall_back_to_miss() {
        let root = tmp_root("corrupt");
        let store = RunStore::at(&root, CacheMode::ReadWrite);
        let cfg = EngineConfig::default();
        let report = sample_report(9);
        store.save(&report, &cfg);
        let key = store.key("addressbook", "bfs", 9, &cfg);
        let path = store.entry_path("addressbook", "bfs", 9, key);
        std::fs::write(&path, "{ not json").expect("corrupt the entry");
        assert!(store.load("addressbook", "bfs", 9, &cfg).is_none());
        assert_eq!(store.session_corrupt(), 1);
        store.save(&report, &cfg); // heals the entry
        assert!(store.load("addressbook", "bfs", 9, &cfg).is_some());
        assert_eq!(store.session_corrupt(), 1, "a healed entry is no longer corrupt");
        let _ = std::fs::remove_dir_all(&root);
    }

    /// The disk is not trusted: a single flipped bit, a write cut short
    /// mid-entry, or an entry renamed over the wrong cell must each
    /// degrade to a cache miss — rerun and overwrite — never a panic and
    /// never a wrong report served as a hit.
    #[test]
    fn bit_flipped_and_truncated_entries_degrade_to_misses() {
        let root = tmp_root("bitrot");
        let store = RunStore::at(&root, CacheMode::ReadWrite);
        let cfg = EngineConfig::default();

        // Truncation: keep only the first half of the entry's bytes,
        // simulating a torn write by a crashed process.
        store.save(&sample_report(1), &cfg);
        let path1 =
            store.entry_path("addressbook", "bfs", 1, store.key("addressbook", "bfs", 1, &cfg));
        let bytes = std::fs::read(&path1).expect("entry exists");
        std::fs::write(&path1, &bytes[..bytes.len() / 2]).expect("truncate");
        assert!(store.load("addressbook", "bfs", 1, &cfg).is_none(), "truncated entry is a miss");

        // Bit flip in the middle of the payload. Flipping a bit inside a
        // JSON number or string may still parse, so flip one inside a
        // structural character region: corrupt the `"crawler"` key name.
        store.save(&sample_report(2), &cfg);
        let path2 =
            store.entry_path("addressbook", "bfs", 2, store.key("addressbook", "bfs", 2, &cfg));
        let mut bytes = std::fs::read(&path2).expect("entry exists");
        let at = std::str::from_utf8(&bytes).unwrap().find("\"crawler\"").expect("key present");
        bytes[at] ^= 0x01; // '"' -> '#': unquoted key, invalid JSON
        std::fs::write(&path2, &bytes).expect("flip");
        assert!(store.load("addressbook", "bfs", 2, &cfg).is_none(), "bit-flipped entry is a miss");

        // Identity mismatch: a well-formed entry for the wrong cell
        // copied over this cell's file (e.g. a bad manual restore).
        store.save(&sample_report(3), &cfg);
        let path3 =
            store.entry_path("addressbook", "bfs", 3, store.key("addressbook", "bfs", 3, &cfg));
        let other = serde_json::to_string(&sample_report(99)).unwrap();
        std::fs::write(&path3, other).expect("swap in foreign entry");
        assert!(store.load("addressbook", "bfs", 3, &cfg).is_none(), "foreign entry is a miss");

        assert_eq!(store.session_corrupt(), 3);
        assert_eq!(store.session_hits(), 0);
        assert_eq!(store.session_misses(), 3);

        // Re-saving heals every cell.
        for seed in 1..=3 {
            store.save(&sample_report(seed), &cfg);
            assert_eq!(store.load("addressbook", "bfs", seed, &cfg), Some(sample_report(seed)));
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn stats_and_clear_account_for_entries() {
        let root = tmp_root("stats");
        let store = RunStore::at(&root, CacheMode::ReadWrite);
        let cfg = EngineConfig::default();
        for seed in 0..3 {
            store.save(&sample_report(seed), &cfg);
        }
        let stats = store.stats();
        assert_eq!(stats.entries, 3);
        assert!(stats.bytes > 0);
        assert_eq!(stats.per_app().get("addressbook"), 3);
        assert_eq!(stats.per_crawler().get("bfs"), 3);
        let pair = stats.per_pair[&("addressbook".to_owned(), "bfs".to_owned())];
        assert_eq!(pair.entries, 3);
        assert_eq!(pair.bytes, stats.bytes, "single pair owns all bytes");
        assert_eq!(store.clear().expect("clear"), 3);
        assert_eq!(store.stats(), CacheStats::default());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn load_emits_cache_events_through_a_shared_sink() {
        use mak_obs::sink::VecSink;
        let root = tmp_root("sink");
        let (shared, cell) = SharedSink::shared(VecSink::new());
        let store = RunStore::at(&root, CacheMode::ReadWrite).with_shared_sink(shared);
        let cfg = EngineConfig::default();
        assert!(store.load("addressbook", "bfs", 1, &cfg).is_none());
        store.save(&sample_report(1), &cfg);
        assert!(store.load("addressbook", "bfs", 1, &cfg).is_some());
        let events = cell.lock().unwrap().events().to_vec();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        // Each load wraps its read in a CacheIo span, and the save wraps
        // its write: read → miss, write, read → hit.
        assert_eq!(kinds, vec!["SpanClosed", "CacheMiss", "SpanClosed", "SpanClosed", "CacheHit"]);
        for event in &events {
            if let Event::SpanClosed { phase, dur_ms, .. } = event {
                assert_eq!(phase, "CacheIo");
                assert!(*dur_ms >= 0.0);
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn fingerprint_is_stable_within_a_process() {
        assert_eq!(workspace_fingerprint(), workspace_fingerprint());
    }

    #[test]
    fn telemetry_counts_lookups_and_bytes() {
        let root = tmp_root("telemetry");
        let (handle, registry) = TelemetryHandle::shared();
        let store = RunStore::at(&root, CacheMode::ReadWrite).with_telemetry(handle);
        let cfg = EngineConfig::default();
        assert!(store.load("addressbook", "bfs", 1, &cfg).is_none());
        store.save(&sample_report(1), &cfg);
        assert!(store.load("addressbook", "bfs", 1, &cfg).is_some());
        let entry_bytes = store.stats().bytes;
        let reg = registry.lock().unwrap();
        let labels = [("app", "addressbook"), ("crawler", "bfs")];
        assert_eq!(reg.counter_value("mak_cache_hits_total", &labels), 1.0);
        assert_eq!(reg.counter_value("mak_cache_misses_total", &labels), 1.0);
        assert_eq!(
            reg.counter_value("mak_cache_io_bytes_total", &[("direction", "written")]),
            entry_bytes as f64
        );
        assert_eq!(
            reg.counter_value("mak_cache_io_bytes_total", &[("direction", "read")]),
            entry_bytes as f64
        );
        drop(reg);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn per_app_and_per_crawler_stats_fold_bytes() {
        let root = tmp_root("dimstats");
        let store = RunStore::at(&root, CacheMode::ReadWrite);
        let cfg = EngineConfig::default();
        for seed in 0..2 {
            store.save(&sample_report(seed), &cfg);
        }
        let mut other = sample_report(0);
        other.app = "vanilla".into();
        other.crawler = "mak".into();
        store.save(&other, &cfg);
        let stats = store.stats();
        let by_app = stats.per_app_stats();
        let by_crawler = stats.per_crawler_stats();
        assert_eq!(by_app["addressbook"].entries, 2);
        assert_eq!(by_app["vanilla"].entries, 1);
        assert_eq!(by_crawler["bfs"].entries, 2);
        assert_eq!(by_crawler["mak"].entries, 1);
        assert!(by_app["addressbook"].bytes > 0);
        assert_eq!(
            by_app.values().map(|s| s.bytes).sum::<u64>(),
            stats.bytes,
            "per-app bytes partition the total"
        );
        assert_eq!(by_crawler.values().map(|s| s.bytes).sum::<u64>(), stats.bytes);
        let _ = std::fs::remove_dir_all(&root);
    }
}
