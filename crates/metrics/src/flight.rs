//! Rendering of flight-recorder reports: markdown plus SVG charts.
//!
//! [`FlightRecorder`](mak_obs::flight::FlightRecorder) folds a trace into
//! a [`FlightReport`]; this module turns that report into the artifacts
//! `mak-cli trace summarize` writes under `results/` — a markdown summary
//! (identity, totals, cost breakdown, per-arm rewards, epoch advances,
//! arm-usage timeline) and up to three [`LineChart`] SVGs: the coverage
//! waterfall (annotated with Exp3.1 epoch advances), the arm-usage
//! timeline, and the deque-depth trajectory. Everything here is a pure
//! function of the report, so reruns over the same trace are
//! byte-identical.

use crate::plot::{BarChart, BarSeries, LineChart, Series};
use crate::report::markdown_table;
use mak_obs::flight::FlightReport;
use std::fmt::Write as _;

/// Time slices used for the arm-usage timeline (markdown and SVG).
pub const ARM_SLICES: usize = 8;

/// A fully rendered flight report.
#[derive(Debug, Clone)]
pub struct RenderedFlight {
    /// The markdown summary.
    pub markdown: String,
    /// `(suffix, svg)` pairs, e.g. `("coverage", "<svg…")`; callers pick
    /// the file names. Charts that would be empty are omitted.
    pub svgs: Vec<(String, String)>,
}

fn minutes(t_ms: f64) -> f64 {
    t_ms / 60_000.0
}

fn fmt_ms_as_s(ms: f64) -> String {
    format!("{:.1}", ms / 1_000.0)
}

/// The coverage waterfall chart: lines over virtual minutes, with one
/// marker series per report carrying the Exp3.1 epoch advances (the
/// coverage value at each advance), so policy restarts are visible on the
/// curve. `None` when the report has no waterfall points.
fn coverage_chart(report: &FlightReport) -> Option<String> {
    if report.coverage_waterfall.is_empty() {
        return None;
    }
    let mut points: Vec<(f64, f64)> =
        report.coverage_waterfall.iter().map(|p| (minutes(p.t_ms), p.lines as f64)).collect();
    // Anchor the curve at the origin so the first fetch's jump is visible.
    if points.first().is_some_and(|p| p.0 > 0.0) {
        points.insert(0, (0.0, 0.0));
    }
    let title =
        format!("Coverage waterfall — {} on {} (seed {})", report.crawler, report.app, report.seed);
    let mut chart = LineChart::new(title, "virtual minutes", "lines covered").series(Series {
        name: "coverage".into(),
        points,
        band: vec![],
    });
    if !report.epoch_advances.is_empty() {
        // Lines covered at each advance, read off the waterfall.
        let lines_at = |t_ms: f64| -> f64 {
            report
                .coverage_waterfall
                .iter()
                .take_while(|p| p.t_ms <= t_ms)
                .last()
                .map(|p| p.lines as f64)
                .unwrap_or(0.0)
        };
        let points: Vec<(f64, f64)> =
            report.epoch_advances.iter().map(|e| (minutes(e.t_ms), lines_at(e.t_ms))).collect();
        chart = chart.series(Series { name: "epoch advance".into(), points, band: vec![] });
    }
    Some(chart.to_svg())
}

/// The arm-usage timeline: per-arm share of choices in each time slice.
/// `None` for non-bandit traces (no `ActionChosen` events).
fn arms_chart(report: &FlightReport) -> Option<String> {
    if report.arm_timeline.is_empty() {
        return None;
    }
    let slices = report.arm_usage_slices(ARM_SLICES);
    let title = format!(
        "Arm usage over time — {} on {} (seed {})",
        report.crawler, report.app, report.seed
    );
    let mut chart = LineChart::new(title, "virtual minutes (slice start)", "% of slice choices");
    for arm in report.arms() {
        let points: Vec<(f64, f64)> = slices
            .iter()
            .map(|(start_ms, counts)| {
                let total: u64 = counts.values().sum();
                let share = if total == 0 {
                    0.0
                } else {
                    100.0 * counts.get(arm).copied().unwrap_or(0) as f64 / total as f64
                };
                (minutes(*start_ms), share)
            })
            .collect();
        chart = chart.series(Series { name: arm.to_owned(), points, band: vec![] });
    }
    Some(chart.to_svg())
}

/// The "where the time goes" chart: total seconds per span phase. `None`
/// for traces recorded without span profiling (pre-span traces included)
/// — the section is omitted, never an error.
fn phases_chart(report: &FlightReport) -> Option<String> {
    if report.span_phases.is_empty() {
        return None;
    }
    let groups: Vec<String> = report.span_phases.keys().cloned().collect();
    let values: Vec<f64> =
        report.span_phases.values().map(|stat| stat.total_ms / 1_000.0).collect();
    let title = format!(
        "Where the time goes — {} on {} (seed {})",
        report.crawler, report.app, report.seed
    );
    Some(
        BarChart::new(title, "virtual seconds", groups)
            .series(BarSeries { name: "total".into(), values })
            .to_svg(),
    )
}

/// The deque-depth trajectory. `None` when the trace carries no
/// `DequeDepth` events.
fn deque_chart(report: &FlightReport) -> Option<String> {
    if report.deque_trajectory.is_empty() {
        return None;
    }
    let points: Vec<(f64, f64)> =
        report.deque_trajectory.iter().map(|p| (minutes(p.t_ms), p.len as f64)).collect();
    let title =
        format!("Deque depth — {} on {} (seed {})", report.crawler, report.app, report.seed);
    Some(
        LineChart::new(title, "virtual minutes", "deque occupancy")
            .series(Series { name: "depth".into(), points, band: vec![] })
            .to_svg(),
    )
}

/// Renders the markdown summary.
fn markdown(report: &FlightReport, svgs: &[(String, String)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Flight report — {} on {} (seed {})\n",
        report.crawler, report.app, report.seed
    );
    let _ = writeln!(
        out,
        "{} events, {} steps, {} interactions, {} lines covered, {} distinct URLs, \
         {:.1} of {:.1} virtual minutes used.\n",
        report.events,
        report.steps,
        report.interactions,
        report.lines,
        report.distinct_urls,
        minutes(report.elapsed_ms),
        minutes(report.budget_ms),
    );

    let _ = writeln!(out, "## Cost breakdown (virtual seconds)\n");
    let total = report.cost.total_ms().max(1.0);
    let rows: Vec<Vec<String>> = report
        .cost
        .rows()
        .iter()
        .map(|(bucket, ms)| {
            vec![(*bucket).to_owned(), fmt_ms_as_s(*ms), format!("{:.1}%", 100.0 * ms / total)]
        })
        .collect();
    let _ = writeln!(out, "{}", markdown_table(&["bucket", "seconds", "share"], &rows));

    if !report.span_phases.is_empty() {
        let _ = writeln!(out, "## Where the time goes (spans)\n");
        let _ = writeln!(
            out,
            "Per-phase span totals. Umbrella phases (`Step`, `ExecuteAction`) \
             contain the leaves, so shares are relative to elapsed time and \
             do not sum to 100%.\n"
        );
        let elapsed = report.elapsed_ms.max(1.0);
        let rows: Vec<Vec<String>> = report
            .span_phases
            .iter()
            .map(|(phase, stat)| {
                vec![
                    phase.clone(),
                    stat.count.to_string(),
                    fmt_ms_as_s(stat.total_ms),
                    format!("{:.1}%", 100.0 * stat.total_ms / elapsed),
                ]
            })
            .collect();
        let _ = writeln!(
            out,
            "{}",
            markdown_table(&["phase", "spans", "seconds", "% of elapsed"], &rows)
        );
    }

    if !report.rewards_per_arm.is_empty() {
        let _ = writeln!(out, "## Reward distribution per arm\n");
        let rows: Vec<Vec<String>> = report
            .rewards_per_arm
            .iter()
            .map(|(arm, stats)| {
                vec![
                    arm.clone(),
                    stats.count.to_string(),
                    format!("{:.3}", stats.mean()),
                    format!("{:.3}", stats.min),
                    format!("{:.3}", stats.max),
                ]
            })
            .collect();
        let _ =
            writeln!(out, "{}", markdown_table(&["arm", "rewards", "mean", "min", "max"], &rows));
    }

    if !report.arm_timeline.is_empty() {
        let _ = writeln!(out, "## Arm usage over time ({ARM_SLICES} slices)\n");
        let arms = report.arms();
        let mut headers = vec!["slice start (min)"];
        headers.extend(arms.iter().copied());
        let rows: Vec<Vec<String>> = report
            .arm_usage_slices(ARM_SLICES)
            .iter()
            .map(|(start_ms, counts)| {
                let mut row = vec![format!("{:.1}", minutes(*start_ms))];
                row.extend(arms.iter().map(|a| counts.get(*a).copied().unwrap_or(0).to_string()));
                row
            })
            .collect();
        let _ = writeln!(out, "{}", markdown_table(&headers, &rows));
    }

    if !report.epoch_advances.is_empty() {
        let _ = writeln!(out, "## Exp3.1 epoch advances\n");
        let rows: Vec<Vec<String>> = report
            .epoch_advances
            .iter()
            .map(|e| {
                vec![
                    format!("{:.2}", minutes(e.t_ms)),
                    e.epoch.to_string(),
                    format!("{:.4}", e.gamma),
                ]
            })
            .collect();
        let _ = writeln!(out, "{}", markdown_table(&["minute", "epoch", "gamma"], &rows));
    }

    if !report.deque_trajectory.is_empty() {
        let _ = writeln!(out, "## Deque\n");
        let _ = writeln!(
            out,
            "{} depth samples, peak occupancy {}.\n",
            report.deque_trajectory.len(),
            report.deque_peak
        );
    }

    if report.faults_injected > 0 || report.retries > 0 {
        let _ = writeln!(out, "## Faults\n");
        let _ = writeln!(
            out,
            "{} faults injected, {} retries scheduled, {} recovered requests.\n",
            report.faults_injected, report.retries, report.fault_recoveries,
        );
    }

    let _ = writeln!(out, "## Event census\n");
    let rows: Vec<Vec<String>> = report
        .events_per_kind
        .iter()
        .map(|(kind, n)| vec![(*kind).to_owned(), n.to_string()])
        .collect();
    let _ = writeln!(out, "{}", markdown_table(&["event", "count"], &rows));

    if !svgs.is_empty() {
        let _ = writeln!(out, "## Charts\n");
        for (suffix, _) in svgs {
            let _ = writeln!(out, "- {suffix}.svg");
        }
    }
    out
}

/// Renders a flight report to markdown plus SVG charts. Pure and
/// deterministic: the same report always renders to the same bytes.
pub fn render(report: &FlightReport) -> RenderedFlight {
    let mut svgs = Vec::new();
    if let Some(svg) = coverage_chart(report) {
        svgs.push(("coverage".to_owned(), svg));
    }
    if let Some(svg) = arms_chart(report) {
        svgs.push(("arms".to_owned(), svg));
    }
    if let Some(svg) = deque_chart(report) {
        svgs.push(("deque".to_owned(), svg));
    }
    if let Some(svg) = phases_chart(report) {
        svgs.push(("phases".to_owned(), svg));
    }
    RenderedFlight { markdown: markdown(report, &svgs), svgs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mak_obs::event::Event;
    use mak_obs::flight::FlightRecorder;
    use mak_obs::sink::EventSink;

    fn mak_report() -> FlightReport {
        let mut rec = FlightRecorder::new();
        for ev in Event::samples() {
            rec.on_event(&ev);
        }
        rec.into_report()
    }

    #[test]
    fn renders_all_charts_for_a_bandit_trace() {
        let rendered = render(&mak_report());
        let suffixes: Vec<&str> = rendered.svgs.iter().map(|(s, _)| s.as_str()).collect();
        assert_eq!(suffixes, vec!["coverage", "arms", "deque", "phases"]);
        for (suffix, svg) in &rendered.svgs {
            assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"), "{suffix}");
        }
        assert!(rendered.markdown.contains("# Flight report — mak on app (seed 1)"));
        assert!(rendered.markdown.contains("## Cost breakdown"));
        assert!(rendered.markdown.contains("## Event census"));
        assert!(rendered.markdown.contains("| StepFinished | 1 |"));
    }

    #[test]
    fn span_section_renders_from_span_events() {
        // The samples fixture carries one SpanClosed (Render, 100 ms).
        let rendered = render(&mak_report());
        assert!(rendered.markdown.contains("## Where the time goes (spans)"));
        assert!(rendered.markdown.contains("| Render | 1 | 0.1 |"));
    }

    #[test]
    fn pre_span_traces_omit_the_span_section() {
        // A trace recorded before span profiling existed has no
        // SpanClosed events: the section and the phases chart are
        // silently omitted, never an error.
        let mut rec = FlightRecorder::new();
        for ev in Event::samples() {
            if !matches!(ev, Event::SpanClosed { .. }) {
                rec.on_event(&ev);
            }
        }
        let rendered = render(rec.report());
        assert!(!rendered.markdown.contains("Where the time goes"));
        assert!(rendered.svgs.iter().all(|(s, _)| s != "phases"));
        assert!(rendered.markdown.contains("## Cost breakdown"), "the rest still renders");
    }

    #[test]
    fn fault_counters_render_only_when_faults_occurred() {
        // The sample fixture carries one FaultInjected / RetryScheduled /
        // FaultRecovered event each.
        let rendered = render(&mak_report());
        assert!(rendered.markdown.contains("## Faults"));
        assert!(rendered
            .markdown
            .contains("1 faults injected, 1 retries scheduled, 1 recovered requests."));
        assert!(rendered.markdown.contains("| FaultInjected | 1 |"), "census includes faults");
    }

    #[test]
    fn coverage_chart_is_annotated_with_epoch_advances() {
        let report = mak_report();
        assert!(!report.epoch_advances.is_empty(), "fixture has an advance");
        let svg = coverage_chart(&report).expect("waterfall present");
        assert!(svg.contains(">epoch advance</text>"), "annotation series labelled");
    }

    #[test]
    fn non_bandit_report_omits_arm_and_deque_charts() {
        let mut rec = FlightRecorder::new();
        rec.on_event(&Event::RunStarted {
            app: "a".into(),
            crawler: "bfs".into(),
            seed: 0,
            budget_ms: 60_000.0,
        });
        rec.on_event(&Event::StepFinished {
            step: 0,
            t_ms: 1_000.0,
            action: "fetch".into(),
            reward: None,
            interactions: 1,
            lines: 10,
            distinct_urls: 1,
        });
        rec.on_event(&Event::RunFinished { t_ms: 1_000.0, steps: 1, interactions: 1, lines: 10 });
        let rendered = render(rec.report());
        let suffixes: Vec<&str> = rendered.svgs.iter().map(|(s, _)| s.as_str()).collect();
        assert_eq!(suffixes, vec!["coverage"]);
        assert!(!rendered.markdown.contains("## Reward distribution"));
        assert!(!rendered.markdown.contains("## Exp3.1 epoch advances"));
        assert!(!rendered.markdown.contains("## Faults"), "fault-free traces skip the section");
    }

    #[test]
    fn rendering_is_deterministic() {
        let report = mak_report();
        let a = render(&report);
        let b = render(&report);
        assert_eq!(a.markdown, b.markdown);
        assert_eq!(a.svgs, b.svgs);
    }
}
