//! # mak-metrics — measurement and experiment harness
//!
//! Everything the paper's evaluation (§V) needs on the measurement side:
//!
//! - [`stats`] — mean / standard-deviation helpers for aggregating runs;
//! - [`timeseries`] — resampling and aggregation of the live coverage
//!   curves plotted in Fig. 2;
//! - [`ground_truth`] — the union ground-truth estimation of §V-B: "the
//!   union of the unique lines of code covered by all crawlers, across all
//!   runs, for each application";
//! - [`regret`] — the §V-C ablation metric: per-application regret against
//!   the best crawler and its cumulative sum;
//! - [`experiment`] — the run matrix executor (apps × crawlers × seeds,
//!   multithreaded, deterministic per seed);
//! - [`store`] — the content-addressed on-disk run cache that makes
//!   repeated matrix executions incremental (`MAK_CACHE`);
//! - [`report`] — markdown/CSV rendering and JSON persistence of results.
//!
//! ## Example: a miniature Table II
//!
//! ```no_run
//! use mak_metrics::experiment::{run_matrix, RunMatrix};
//! use mak_metrics::ground_truth::UnionCoverage;
//!
//! let matrix = RunMatrix::new(["addressbook"], ["mak", "webexplor"], 3);
//! let reports = run_matrix(&matrix, 4);
//! let union = UnionCoverage::from_reports(reports.iter().filter(|r| r.app == "addressbook"));
//! println!("union ground truth: {} lines", union.len());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiment;
pub mod flight;
pub mod ground_truth;
pub mod plot;
pub mod regret;
pub mod report;
pub mod stats;
pub mod store;
pub mod timeseries;
pub mod trace;
