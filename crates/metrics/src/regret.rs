//! The §V-C ablation metric.
//!
//! "We define the *regret* of the crawler c on the web application w as the
//! difference between the average number of lines of code covered by the
//! best crawler minus the average number of lines of code covered by c,
//! divided by the total number of lines of code of w. […] The *cumulative
//! regret* of a crawler is just the sum of its regrets over the different
//! applications." Regrets are expressed in percentage points, matching the
//! paper's reported magnitudes (MAK 14.9, BFS 36.0, Random 70.2,
//! DFS 126.7).

use crate::stats::{argmax, mean};
use std::collections::BTreeMap;

/// Mean lines covered per crawler on one application, plus the total-lines
/// estimate used as the regret denominator.
#[derive(Debug, Clone)]
pub struct AppOutcome {
    /// Application name.
    pub app: String,
    /// `(crawler, mean lines covered over its runs)` pairs.
    pub mean_lines: Vec<(String, f64)>,
    /// The application's total-lines estimate (§V-B union ground truth).
    pub total_lines: f64,
}

impl AppOutcome {
    /// Builds an outcome from per-run line counts.
    ///
    /// # Panics
    ///
    /// Panics if `total_lines` is not positive or any crawler has no runs.
    pub fn from_runs(
        app: impl Into<String>,
        runs_per_crawler: &BTreeMap<String, Vec<f64>>,
        total_lines: f64,
    ) -> Self {
        assert!(total_lines > 0.0, "total lines must be positive");
        let mean_lines = runs_per_crawler
            .iter()
            .map(|(c, runs)| {
                assert!(!runs.is_empty(), "crawler {c} has no runs");
                (c.clone(), mean(runs))
            })
            .collect();
        AppOutcome { app: app.into(), mean_lines, total_lines }
    }

    /// The per-crawler regret on this application, in percentage points.
    pub fn regrets(&self) -> Vec<(String, f64)> {
        let values: Vec<f64> = self.mean_lines.iter().map(|(_, v)| *v).collect();
        let best = values[argmax(&values).expect("non-empty outcome")];
        self.mean_lines
            .iter()
            .map(|(c, v)| (c.clone(), 100.0 * (best - v) / self.total_lines))
            .collect()
    }
}

/// Sums per-application regrets into each crawler's cumulative regret,
/// sorted ascending (best adaptivity first).
pub fn cumulative_regret(outcomes: &[AppOutcome]) -> Vec<(String, f64)> {
    let mut totals: BTreeMap<String, f64> = BTreeMap::new();
    for outcome in outcomes {
        for (crawler, regret) in outcome.regrets() {
            *totals.entry(crawler).or_insert(0.0) += regret;
        }
    }
    let mut out: Vec<(String, f64)> = totals.into_iter().collect();
    out.sort_by(|a, b| a.1.total_cmp(&b.1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(app: &str, pairs: &[(&str, f64)], total: f64) -> AppOutcome {
        let runs: BTreeMap<String, Vec<f64>> =
            pairs.iter().map(|(c, v)| ((*c).to_owned(), vec![*v])).collect();
        AppOutcome::from_runs(app, &runs, total)
    }

    #[test]
    fn best_crawler_has_zero_regret() {
        let o = outcome("a", &[("mak", 90.0), ("bfs", 80.0)], 100.0);
        let r: BTreeMap<_, _> = o.regrets().into_iter().collect();
        assert_eq!(r["mak"], 0.0);
        assert!((r["bfs"] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn cumulative_sums_and_sorts() {
        let o1 = outcome("a", &[("mak", 90.0), ("bfs", 80.0), ("dfs", 50.0)], 100.0);
        let o2 = outcome("b", &[("mak", 70.0), ("bfs", 75.0), ("dfs", 60.0)], 100.0);
        let cum = cumulative_regret(&[o1, o2]);
        assert_eq!(cum[0].0, "mak");
        assert!((cum[0].1 - 5.0).abs() < 1e-12); // 0 + 5
        assert_eq!(cum[1].0, "bfs");
        assert!((cum[1].1 - 10.0).abs() < 1e-12); // 10 + 0
        assert_eq!(cum[2].0, "dfs");
        assert!((cum[2].1 - 55.0).abs() < 1e-12); // 40 + 15
    }

    #[test]
    fn mean_over_runs_is_used() {
        let mut runs = BTreeMap::new();
        runs.insert("mak".to_owned(), vec![80.0, 100.0]);
        runs.insert("bfs".to_owned(), vec![85.0, 85.0]);
        let o = AppOutcome::from_runs("a", &runs, 100.0);
        let r: BTreeMap<_, _> = o.regrets().into_iter().collect();
        assert_eq!(r["mak"], 0.0, "mean 90 beats mean 85");
        assert!((r["bfs"] - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_total() {
        outcome("a", &[("mak", 1.0)], 0.0);
    }
}
