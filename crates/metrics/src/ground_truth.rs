//! Union ground-truth estimation (§V-B).
//!
//! "Calculating the total lines of server-side code for each application is
//! challenging and error-prone […]. To address this, we estimate the total
//! number of lines of server-side code for PHP-based web applications by
//! taking the union of the unique lines of code covered by all crawlers,
//! across all runs, for each application." Node.js applications instead use
//! the tool-reported total (coverage-node provides it; so does the
//! simulator's [`CodeModel`](mak_websim::coverage::CodeModel)).

use mak::framework::engine::CrawlReport;
use std::collections::HashSet;

/// The union of covered `(file, line)` pairs across a set of runs.
#[derive(Debug, Default, Clone)]
pub struct UnionCoverage {
    lines: HashSet<(u32, u32)>,
}

impl UnionCoverage {
    /// An empty union.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the union from an iterator of crawl reports.
    pub fn from_reports<'a>(reports: impl IntoIterator<Item = &'a CrawlReport>) -> Self {
        let mut u = Self::new();
        for r in reports {
            u.absorb(r);
        }
        u
    }

    /// Absorbs one run's covered lines.
    pub fn absorb(&mut self, report: &CrawlReport) {
        self.lines.extend(report.covered_lines.iter().copied());
    }

    /// The estimated total: number of distinct covered lines.
    pub fn len(&self) -> u64 {
        self.lines.len() as u64
    }

    /// Whether no lines have been absorbed.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The §V-B estimated coverage of one run against this ground truth.
    ///
    /// # Panics
    ///
    /// Panics if the union is empty (no ground truth to compare against).
    pub fn coverage_of(&self, report: &CrawlReport) -> f64 {
        assert!(!self.is_empty(), "ground truth union is empty");
        report.final_lines_covered as f64 / self.len() as f64
    }
}

/// The denominator used for an application in Table II: the union estimate
/// for live-coverage (PHP) apps, the tool-reported total for final-coverage
/// (Node.js) apps.
pub fn table2_denominator(union: &UnionCoverage, report: &CrawlReport, live: bool) -> f64 {
    if live {
        union.len() as f64
    } else {
        report.total_declared_lines as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(lines: &[(u32, u32)]) -> CrawlReport {
        CrawlReport {
            crawler: "x".into(),
            app: "a".into(),
            seed: 0,
            interactions: 1,
            final_lines_covered: lines.len() as u64,
            total_declared_lines: 100,
            coverage_series: vec![],
            covered_lines: lines.to_vec(),
            distinct_urls: 1,
            state_count: None,
            elapsed_secs: 1.0,
            trace: vec![],
            faults: Default::default(),
            phase: Default::default(),
        }
    }

    #[test]
    fn union_deduplicates_across_runs() {
        let a = report(&[(0, 1), (0, 2)]);
        let b = report(&[(0, 2), (1, 1)]);
        let u = UnionCoverage::from_reports([&a, &b]);
        assert_eq!(u.len(), 3);
        assert!(!u.is_empty());
    }

    #[test]
    fn coverage_of_is_fraction_of_union() {
        let a = report(&[(0, 1), (0, 2), (0, 3)]);
        let b = report(&[(0, 1)]);
        let u = UnionCoverage::from_reports([&a, &b]);
        assert!((u.coverage_of(&b) - 1.0 / 3.0).abs() < 1e-12);
        assert!((u.coverage_of(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn node_apps_use_reported_totals() {
        let a = report(&[(0, 1), (0, 2)]);
        let u = UnionCoverage::from_reports([&a]);
        assert_eq!(table2_denominator(&u, &a, true), 2.0);
        assert_eq!(table2_denominator(&u, &a, false), 100.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_union_panics_on_coverage() {
        let u = UnionCoverage::new();
        u.coverage_of(&report(&[]));
    }
}
