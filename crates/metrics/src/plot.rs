//! Minimal SVG line charts for the Fig. 2 coverage curves.
//!
//! Renders mean-coverage-over-time lines with ±std bands, following a fixed
//! visual spec: 2px round-capped series lines, band fills at 10% opacity,
//! hairline one-step-off-surface gridlines, end dots with a surface ring,
//! a legend plus direct end labels (with leader lines when labels would
//! collide), and all text in ink tokens rather than series colors. Series
//! colors come from a validated categorical palette in fixed slot order —
//! color follows the entity, never its rank. The accompanying CSV written
//! by the `fig2` binary is the chart's table view.

use std::fmt::Write as _;

/// Chart surface and ink tokens (light mode).
const SURFACE: &str = "#fcfcfb";
const TEXT_PRIMARY: &str = "#0b0b0b";
const TEXT_SECONDARY: &str = "#52514e";
const GRIDLINE: &str = "#ecebe9";

/// The categorical palette, fixed slot order (validated: worst adjacent CVD
/// ΔE 47.2; the two low-contrast slots are relieved by direct labels and
/// the CSV table view).
const PALETTE: [&str; 8] =
    ["#2a78d6", "#1baf7a", "#eda100", "#008300", "#4a3aa7", "#e34948", "#e87ba4", "#eb6834"];

/// One plotted series: a mean line with an optional deviation band.
#[derive(Debug, Clone)]
pub struct Series {
    /// Display name (legend and end label).
    pub name: String,
    /// `(x, mean)` points in ascending x.
    pub points: Vec<(f64, f64)>,
    /// Optional `(x, low, high)` band (e.g. mean ± std).
    pub band: Vec<(f64, f64, f64)>,
}

/// A line chart: x is time, y is a magnitude.
#[derive(Debug, Clone)]
pub struct LineChart {
    /// Chart title (primary ink, top-left).
    pub title: String,
    /// X-axis caption.
    pub x_label: String,
    /// Y-axis caption.
    pub y_label: String,
    /// The series, in palette slot order (color follows this order).
    pub series: Vec<Series>,
    /// Total width in px.
    pub width: u32,
    /// Total height in px.
    pub height: u32,
}

impl LineChart {
    /// A chart with the default 760×420 canvas.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            width: 760,
            height: 420,
        }
    }

    /// Adds a series (takes the next palette slot).
    #[must_use]
    pub fn series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Renders the chart to an SVG string.
    ///
    /// # Panics
    ///
    /// Panics if there are no series, a series is empty, or more series
    /// than palette slots.
    pub fn to_svg(&self) -> String {
        assert!(!self.series.is_empty(), "chart needs at least one series");
        assert!(self.series.len() <= PALETTE.len(), "more series than palette slots");
        for s in &self.series {
            assert!(!s.points.is_empty(), "series {} has no points", s.name);
        }

        let (ml, mr, mt, mb) = (64.0, 130.0, 44.0, 48.0);
        let w = self.width as f64;
        let h = self.height as f64;
        let plot_w = w - ml - mr;
        let plot_h = h - mt - mb;

        let x_max = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .fold(f64::NEG_INFINITY, f64::max);
        let y_max_data = self
            .series
            .iter()
            .flat_map(|s| {
                s.points.iter().map(|p| p.1).chain(s.band.iter().map(|b| b.2)).collect::<Vec<_>>()
            })
            .fold(f64::NEG_INFINITY, f64::max);
        let x_max = if x_max > 0.0 { x_max } else { 1.0 };
        let (y_ticks, y_max) = nice_ticks(y_max_data.max(1.0));

        let sx = move |x: f64| ml + plot_w * x / x_max;
        let sy = move |y: f64| mt + plot_h * (1.0 - y / y_max);

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="system-ui, sans-serif">"#
        );
        let _ = write!(svg, r#"<rect width="{w}" height="{h}" fill="{SURFACE}"/>"#);

        // Title.
        let _ = write!(
            svg,
            r#"<text x="{ml}" y="24" font-size="15" font-weight="600" fill="{TEXT_PRIMARY}">{}</text>"#,
            escape(&self.title)
        );

        // Horizontal gridlines + y tick labels (they carry the unlabeled values).
        for &tick in &y_ticks {
            let y = sy(tick);
            let _ = write!(
                svg,
                r#"<line x1="{ml}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="{GRIDLINE}" stroke-width="1"/>"#,
                ml + plot_w
            );
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" font-size="11" fill="{TEXT_SECONDARY}" text-anchor="end" style="font-variant-numeric: tabular-nums">{}</text>"#,
                ml - 8.0,
                y + 4.0,
                thousands(tick)
            );
        }

        // X ticks every x_max/6.
        for i in 0..=6 {
            let x_val = x_max * i as f64 / 6.0;
            let x = sx(x_val);
            let _ = write!(
                svg,
                r#"<text x="{x:.1}" y="{:.1}" font-size="11" fill="{TEXT_SECONDARY}" text-anchor="middle" style="font-variant-numeric: tabular-nums">{}</text>"#,
                mt + plot_h + 18.0,
                thousands(x_val)
            );
        }
        // Axis captions.
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-size="11" fill="{TEXT_SECONDARY}" text-anchor="middle">{}</text>"#,
            ml + plot_w / 2.0,
            mt + plot_h + 38.0,
            escape(&self.x_label)
        );
        let _ = write!(
            svg,
            r#"<text x="14" y="{:.1}" font-size="11" fill="{TEXT_SECONDARY}" text-anchor="middle" transform="rotate(-90 14 {:.1})">{}</text>"#,
            mt + plot_h / 2.0,
            mt + plot_h / 2.0,
            escape(&self.y_label)
        );

        // Bands first (washes under every line).
        for (i, s) in self.series.iter().enumerate() {
            if s.band.is_empty() {
                continue;
            }
            let mut d = String::new();
            for (k, (x, lo, _)) in s.band.iter().enumerate() {
                let _ =
                    write!(d, "{}{:.1},{:.1} ", if k == 0 { "M" } else { "L" }, sx(*x), sy(*lo));
            }
            for (x, _, hi) in s.band.iter().rev() {
                let _ = write!(d, "L{:.1},{:.1} ", sx(*x), sy(*hi));
            }
            d.push('Z');
            let _ = write!(svg, r#"<path d="{d}" fill="{}" fill-opacity="0.10"/>"#, PALETTE[i]);
        }

        // Lines, end dots, and end-label geometry.
        let mut label_targets: Vec<(usize, f64)> = Vec::new();
        for (i, s) in self.series.iter().enumerate() {
            let mut d = String::new();
            for (k, (x, y)) in s.points.iter().enumerate() {
                let _ = write!(d, "{}{:.1},{:.1} ", if k == 0 { "M" } else { "L" }, sx(*x), sy(*y));
            }
            let _ = write!(
                svg,
                r#"<path d="{d}" fill="none" stroke="{}" stroke-width="2" stroke-linecap="round" stroke-linejoin="round"/>"#,
                PALETTE[i]
            );
            let &(ex, ey) = s.points.last().expect("non-empty");
            // End dot: r=4 with a 2px surface ring.
            let _ = write!(
                svg,
                r#"<circle cx="{:.1}" cy="{:.1}" r="4" fill="{}" stroke="{SURFACE}" stroke-width="2"/>"#,
                sx(ex),
                sy(ey),
                PALETTE[i]
            );
            label_targets.push((i, sy(ey)));
        }

        // Direct end labels: resolve collisions by nudging to >=14px apart,
        // with leader lines where a label moved away from its line end.
        label_targets.sort_by(|a, b| a.1.total_cmp(&b.1));
        let mut placed: Vec<(usize, f64, f64)> = Vec::new(); // (series, label_y, line_y)
        let mut prev = f64::NEG_INFINITY;
        for (i, line_y) in label_targets {
            let y = (line_y).max(prev + 14.0).min(mt + plot_h);
            placed.push((i, y, line_y));
            prev = y;
        }
        let label_x = ml + plot_w + 14.0;
        for (i, label_y, line_y) in placed {
            if (label_y - line_y).abs() > 4.0 {
                let _ = write!(
                    svg,
                    r#"<line x1="{:.1}" y1="{line_y:.1}" x2="{:.1}" y2="{label_y:.1}" stroke="{GRIDLINE}" stroke-width="1"/>"#,
                    ml + plot_w + 5.0,
                    label_x - 2.0
                );
            }
            // Identity mark beside the text (the text itself wears ink).
            let _ = write!(
                svg,
                r#"<circle cx="{label_x:.1}" cy="{:.1}" r="4" fill="{}"/>"#,
                label_y - 3.5,
                PALETTE[i]
            );
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{label_y:.1}" font-size="12" fill="{TEXT_PRIMARY}">{}</text>"#,
                label_x + 8.0,
                escape(&self.series[i].name)
            );
        }

        // Legend row (always present for >= 2 series), top-right.
        if self.series.len() >= 2 {
            let mut x = ml;
            let y = mt - 12.0;
            for (i, s) in self.series.iter().enumerate() {
                let _ = write!(
                    svg,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="4" fill="{}"/>"#,
                    x + 4.0,
                    y - 4.0,
                    PALETTE[i]
                );
                let _ = write!(
                    svg,
                    r#"<text x="{:.1}" y="{y:.1}" font-size="11" fill="{TEXT_SECONDARY}">{}</text>"#,
                    x + 12.0,
                    escape(&s.name)
                );
                x += 12.0 + 7.0 * s.name.len() as f64 + 18.0;
            }
        }

        svg.push_str("</svg>");
        svg
    }
}

/// One bar series of a grouped [`BarChart`].
#[derive(Debug, Clone)]
pub struct BarSeries {
    /// Display name (legend).
    pub name: String,
    /// One value per group, aligned with [`BarChart::groups`].
    pub values: Vec<f64>,
}

/// A grouped bar chart: categories on x, magnitude on y.
#[derive(Debug, Clone)]
pub struct BarChart {
    /// Chart title.
    pub title: String,
    /// Y-axis caption.
    pub y_label: String,
    /// The x categories (group labels).
    pub groups: Vec<String>,
    /// The series, in palette slot order.
    pub series: Vec<BarSeries>,
    /// Total width in px.
    pub width: u32,
    /// Total height in px.
    pub height: u32,
}

impl BarChart {
    /// A chart with a default canvas sized to the group count.
    pub fn new(
        title: impl Into<String>,
        y_label: impl Into<String>,
        groups: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        let groups: Vec<String> = groups.into_iter().map(Into::into).collect();
        let width = (groups.len() as u32 * 88 + 160).max(420);
        BarChart {
            title: title.into(),
            y_label: y_label.into(),
            groups,
            series: Vec::new(),
            width,
            height: 380,
        }
    }

    /// Adds a series (takes the next palette slot).
    ///
    /// # Panics
    ///
    /// Panics if the series' value count differs from the group count.
    #[must_use]
    pub fn series(mut self, series: BarSeries) -> Self {
        assert_eq!(series.values.len(), self.groups.len(), "one value per group");
        self.series.push(series);
        self
    }

    /// Renders the chart to an SVG string.
    ///
    /// # Panics
    ///
    /// Panics if there are no series or groups, or more series than
    /// palette slots.
    pub fn to_svg(&self) -> String {
        assert!(!self.series.is_empty(), "chart needs at least one series");
        assert!(!self.groups.is_empty(), "chart needs at least one group");
        assert!(self.series.len() <= PALETTE.len(), "more series than palette slots");

        let (ml, mr, mt, mb) = (64.0, 24.0, 44.0, 64.0);
        let w = self.width as f64;
        let h = self.height as f64;
        let plot_w = w - ml - mr;
        let plot_h = h - mt - mb;

        let y_max_data = self
            .series
            .iter()
            .flat_map(|s| s.values.iter().copied())
            .fold(f64::NEG_INFINITY, f64::max);
        let (y_ticks, y_max) = nice_ticks(y_max_data.max(1.0));
        let sy = move |y: f64| mt + plot_h * (1.0 - y / y_max);

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="system-ui, sans-serif">"#
        );
        let _ = write!(svg, r#"<rect width="{w}" height="{h}" fill="{SURFACE}"/>"#);
        let _ = write!(
            svg,
            r#"<text x="{ml}" y="24" font-size="15" font-weight="600" fill="{TEXT_PRIMARY}">{}</text>"#,
            escape(&self.title)
        );

        for &tick in &y_ticks {
            let y = sy(tick);
            let _ = write!(
                svg,
                r#"<line x1="{ml}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="{GRIDLINE}" stroke-width="1"/>"#,
                ml + plot_w
            );
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" font-size="11" fill="{TEXT_SECONDARY}" text-anchor="end" style="font-variant-numeric: tabular-nums">{}</text>"#,
                ml - 8.0,
                y + 4.0,
                thousands(tick)
            );
        }

        // Grouped bars: <=24px thick, 2px surface gap between neighbors,
        // 4px rounded data-end, square at the baseline.
        let group_w = plot_w / self.groups.len() as f64;
        let gap = 2.0;
        let bar_w = ((group_w * 0.7 - gap * (self.series.len() as f64 - 1.0))
            / self.series.len() as f64)
            .min(24.0);
        let cluster_w = bar_w * self.series.len() as f64 + gap * (self.series.len() as f64 - 1.0);
        let baseline = mt + plot_h;
        for (g, label) in self.groups.iter().enumerate() {
            let cx = ml + group_w * (g as f64 + 0.5);
            let x0 = cx - cluster_w / 2.0;
            for (i, s) in self.series.iter().enumerate() {
                let v = s.values[g].max(0.0);
                let x = x0 + i as f64 * (bar_w + gap);
                let y_top = sy(v);
                let r = 4.0f64.min(bar_w / 2.0).min((baseline - y_top) / 2.0);
                let _ = write!(
                    svg,
                    r#"<path d="M{x:.1},{baseline:.1} L{x:.1},{:.1} Q{x:.1},{y_top:.1} {:.1},{y_top:.1} L{:.1},{y_top:.1} Q{:.1},{y_top:.1} {:.1},{:.1} L{:.1},{baseline:.1} Z" fill="{}"/>"#,
                    y_top + r,
                    x + r,
                    x + bar_w - r,
                    x + bar_w,
                    x + bar_w,
                    y_top + r,
                    x + bar_w,
                    PALETTE[i]
                );
            }
            let _ = write!(
                svg,
                r#"<text x="{cx:.1}" y="{:.1}" font-size="11" fill="{TEXT_SECONDARY}" text-anchor="middle">{}</text>"#,
                baseline + 18.0,
                escape(label)
            );
        }

        // Y caption + legend.
        let _ = write!(
            svg,
            r#"<text x="14" y="{:.1}" font-size="11" fill="{TEXT_SECONDARY}" text-anchor="middle" transform="rotate(-90 14 {:.1})">{}</text>"#,
            mt + plot_h / 2.0,
            mt + plot_h / 2.0,
            escape(&self.y_label)
        );
        if self.series.len() >= 2 {
            let mut x = ml;
            let y = mt - 12.0;
            for (i, s) in self.series.iter().enumerate() {
                let _ = write!(
                    svg,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="4" fill="{}"/>"#,
                    x + 4.0,
                    y - 4.0,
                    PALETTE[i]
                );
                let _ = write!(
                    svg,
                    r#"<text x="{:.1}" y="{y:.1}" font-size="11" fill="{TEXT_SECONDARY}">{}</text>"#,
                    x + 12.0,
                    escape(&s.name)
                );
                x += 12.0 + 7.0 * s.name.len() as f64 + 18.0;
            }
        }

        svg.push_str("</svg>");
        svg
    }
}

/// Rounds up to a clean axis maximum and returns ~5 clean tick values.
fn nice_ticks(max: f64) -> (Vec<f64>, f64) {
    let raw_step = max / 5.0;
    let mag = 10f64.powf(raw_step.log10().floor());
    let step = [1.0, 2.0, 2.5, 5.0, 10.0]
        .iter()
        .map(|m| m * mag)
        .find(|s| max / s <= 5.5)
        .unwrap_or(10.0 * mag);
    let top = (max / step).ceil() * step;
    let mut ticks = Vec::new();
    let mut t = 0.0;
    while t <= top + step * 0.01 {
        ticks.push(t);
        t += step;
    }
    (ticks, top)
}

/// Comma-grouped integer formatting for tick labels.
fn thousands(x: f64) -> String {
    let v = x.round() as i64;
    let s = v.abs().to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    if v < 0 {
        format!("-{out}")
    } else {
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// The attribute head (everything before the closing `>`) of every
/// `<text` element in an SVG fragment, in document order. Fragments with
/// no closing `>` — truncated or malformed markup — are skipped rather
/// than panicking, so assertions built on this helper degrade gracefully
/// when fed partial output.
pub fn text_tag_heads(svg: &str) -> Vec<&str> {
    svg.split("<text").skip(1).filter_map(|part| part.find('>').map(|i| &part[..i])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LineChart {
        LineChart::new("Coverage over time", "minutes", "lines covered")
            .series(Series {
                name: "MAK".into(),
                points: vec![(0.0, 0.0), (15.0, 5_000.0), (30.0, 7_000.0)],
                band: vec![(0.0, 0.0, 0.0), (15.0, 4_800.0, 5_200.0), (30.0, 6_900.0, 7_100.0)],
            })
            .series(Series {
                name: "WebExplor".into(),
                points: vec![(0.0, 0.0), (15.0, 4_000.0), (30.0, 6_000.0)],
                band: vec![],
            })
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = sample().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<svg").count(), 1);
    }

    #[test]
    fn series_use_fixed_palette_slots() {
        let svg = sample().to_svg();
        assert!(svg.contains(PALETTE[0]), "slot 1 for the first series");
        assert!(svg.contains(PALETTE[1]), "slot 2 for the second series");
        assert!(!svg.contains(PALETTE[2]), "no third slot consumed");
    }

    #[test]
    fn lines_are_two_px_and_bands_ten_percent() {
        let svg = sample().to_svg();
        assert!(svg.contains(r#"stroke-width="2" stroke-linecap="round""#));
        assert!(svg.contains(r#"fill-opacity="0.10""#));
    }

    #[test]
    fn text_wears_ink_not_series_color() {
        let svg = sample().to_svg();
        let heads = text_tag_heads(&svg);
        assert!(!heads.is_empty(), "chart has text elements");
        // Every <text> element is filled with an ink token.
        for tag in heads {
            assert!(
                tag.contains(TEXT_PRIMARY) || tag.contains(TEXT_SECONDARY),
                "text must wear ink tokens: {tag}"
            );
        }
    }

    #[test]
    fn text_tag_heads_tolerates_malformed_fragments() {
        // A truncated final element (no closing '>') must be skipped, not
        // panic — this input previously crashed the unwrap-based scan.
        let svg = r##"<svg><text fill="#111">ok</text><text fill="#222"##;
        assert_eq!(text_tag_heads(svg), vec![r##" fill="#111""##]);
        assert!(text_tag_heads("").is_empty());
        assert!(text_tag_heads("<text").is_empty());
    }

    #[test]
    fn legend_and_direct_labels_present() {
        let svg = sample().to_svg();
        assert_eq!(svg.matches(">MAK</text>").count(), 2, "legend + end label");
        assert_eq!(svg.matches(">WebExplor</text>").count(), 2);
    }

    #[test]
    fn converging_series_get_separated_labels() {
        let chart = LineChart::new("t", "x", "y")
            .series(Series {
                name: "a".into(),
                points: vec![(0.0, 100.0), (1.0, 500.0)],
                band: vec![],
            })
            .series(Series {
                name: "b".into(),
                points: vec![(0.0, 90.0), (1.0, 498.0)],
                band: vec![],
            });
        let svg = chart.to_svg();
        // Extract the two end-label y positions (last two <text> before legend).
        assert!(svg.contains("</svg>"));
        // The collision rule guarantees >= 14px separation; verify via the
        // leader line drawn for the displaced label.
        assert!(svg.matches(r##"stroke="#ecebe9" stroke-width="1"/>"##).count() >= 1);
    }

    #[test]
    fn nice_ticks_are_clean() {
        let (ticks, top) = nice_ticks(7_342.0);
        assert!(top >= 7_342.0);
        assert!(ticks.len() >= 4 && ticks.len() <= 7);
        assert_eq!(ticks[0], 0.0);
        let step = ticks[1] - ticks[0];
        for w in ticks.windows(2) {
            assert!((w[1] - w[0] - step).abs() < 1e-9, "uniform steps");
        }
    }

    #[test]
    fn thousands_formatting() {
        assert_eq!(thousands(0.0), "0");
        assert_eq!(thousands(999.0), "999");
        assert_eq!(thousands(50_445.0), "50,445");
        assert_eq!(thousands(1_234_567.0), "1,234,567");
        assert_eq!(thousands(-1234.0), "-1,234");
    }

    #[test]
    fn escape_handles_markup() {
        assert_eq!(escape("a<b>&c"), "a&lt;b&gt;&amp;c");
    }

    #[test]
    #[should_panic(expected = "at least one series")]
    fn empty_chart_panics() {
        let _ = LineChart::new("t", "x", "y").to_svg();
    }

    fn bar_sample() -> BarChart {
        BarChart::new("Coverage", "percent", ["drupal", "hotcrp"])
            .series(BarSeries { name: "MAK".into(), values: vec![86.0, 86.4] })
            .series(BarSeries { name: "WebExplor".into(), values: vec![69.8, 63.6] })
    }

    #[test]
    fn bar_chart_renders_clusters() {
        let svg = bar_sample().to_svg();
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
        // 2 groups x 2 series = 4 bars.
        assert_eq!(svg.matches("<path d=\"M").count(), 4);
        assert!(svg.contains(PALETTE[0]) && svg.contains(PALETTE[1]));
        assert!(svg.contains(">drupal</text>"));
    }

    #[test]
    fn bars_grow_from_a_single_baseline() {
        let svg = bar_sample().to_svg();
        // Every bar path starts and ends at the same baseline y.
        let baselines: std::collections::BTreeSet<String> = svg
            .split("<path d=\"M")
            .skip(1)
            .map(|p| {
                // Each bar path is "x,y L … z"; the baseline is the first y.
                p.split(',')
                    .nth(1)
                    .and_then(|after_x| after_x.split(' ').next())
                    .unwrap_or_else(|| panic!("malformed bar path fragment: {p:.40}"))
                    .to_owned()
            })
            .collect();
        assert_eq!(baselines.len(), 1, "single baseline: {baselines:?}");
    }

    #[test]
    #[should_panic(expected = "one value per group")]
    fn bar_series_must_match_groups() {
        let _ = BarChart::new("t", "y", ["a", "b"])
            .series(BarSeries { name: "x".into(), values: vec![1.0] });
    }
}
