//! Analysis of recorded crawl traces.
//!
//! With [`EngineConfig::record_trace`](mak::framework::engine::EngineConfig)
//! enabled, a [`CrawlReport`] carries every step's action and reward. This
//! module turns that log into the quantities that explain *how* a policy
//! behaved: arm usage per time slice (does Exp3.1 drift towards the
//! locally-best strategy?), and reward statistics per action.

use mak::framework::engine::{CrawlReport, TraceEntry};
use mak_obs::event::Event;
use std::collections::BTreeMap;

/// Arm/action usage within one time slice of a crawl.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceUsage {
    /// Slice start, in virtual seconds.
    pub start_secs: f64,
    /// Steps taken per action label within the slice.
    pub counts: BTreeMap<String, usize>,
}

impl SliceUsage {
    /// The fraction of the slice's steps spent on `action` (0 if none).
    pub fn share(&self, action: &str) -> f64 {
        let total: usize = self.counts.values().sum();
        if total == 0 {
            return 0.0;
        }
        *self.counts.get(action).unwrap_or(&0) as f64 / total as f64
    }
}

/// Splits a trace into `slices` equal time windows and counts action usage
/// in each — the data behind "the policy shifted from Tail to Head after
/// the archives dried up" style analyses.
///
/// # Panics
///
/// Panics if `slices` is zero or `horizon_secs` is not positive.
pub fn usage_over_time(trace: &[TraceEntry], horizon_secs: f64, slices: usize) -> Vec<SliceUsage> {
    assert!(slices > 0, "need at least one slice");
    assert!(horizon_secs > 0.0, "horizon must be positive");
    let width = horizon_secs / slices as f64;
    let mut out: Vec<SliceUsage> = (0..slices)
        .map(|i| SliceUsage { start_secs: i as f64 * width, counts: BTreeMap::new() })
        .collect();
    for entry in trace {
        let idx = ((entry.secs / width) as usize).min(slices - 1);
        *out[idx].counts.entry(entry.action.clone()).or_insert(0) += 1;
    }
    out
}

/// Rebuilds a legacy [`TraceEntry`] log from an observability event
/// stream: each [`Event::StepFinished`] becomes one entry. The engine
/// emits `StepFinished` at the same virtual-clock instant it records the
/// trace entry, and `t_ms / 1000.0` is exactly how the clock derives
/// seconds, so the result is bit-identical to a `record_trace` run — which
/// makes every analysis in this module available to sink users without
/// re-running anything (enforced by `tests/observability.rs`).
pub fn events_to_trace(events: &[Event]) -> Vec<TraceEntry> {
    events
        .iter()
        .filter_map(|event| match event {
            Event::StepFinished { t_ms, action, reward, .. } => {
                Some(TraceEntry { secs: t_ms / 1000.0, action: action.clone(), reward: *reward })
            }
            _ => None,
        })
        .collect()
}

/// Mean reward per action label over a whole trace, for learning-signal
/// inspection. Actions without rewards (non-learning steps) are skipped.
pub fn mean_reward_per_action(trace: &[TraceEntry]) -> BTreeMap<String, f64> {
    let mut sums: BTreeMap<String, (f64, usize)> = BTreeMap::new();
    for entry in trace {
        if let Some(r) = entry.reward {
            let e = sums.entry(entry.action.clone()).or_insert((0.0, 0));
            e.0 += r;
            e.1 += 1;
        }
    }
    sums.into_iter().map(|(k, (sum, n))| (k, sum / n as f64)).collect()
}

/// Runs a traced crawl and returns both the report and its slice usage —
/// convenience for examples and notebooks.
pub fn traced_run(
    crawler_name: &str,
    app: &str,
    minutes: f64,
    seed: u64,
    slices: usize,
) -> Option<(CrawlReport, Vec<SliceUsage>)> {
    let mut config = mak::framework::engine::EngineConfig::with_budget_minutes(minutes);
    config.record_trace = true;
    let mut crawler = mak::spec::build_crawler(crawler_name, seed)?;
    let app_model = mak_websim::apps::build(app)?;
    let report = mak::framework::engine::run_crawl(&mut *crawler, app_model, &config, seed);
    let usage = usage_over_time(&report.trace, minutes * 60.0, slices);
    Some((report, usage))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(secs: f64, action: &str, reward: Option<f64>) -> TraceEntry {
        TraceEntry { secs, action: action.to_owned(), reward }
    }

    #[test]
    fn usage_buckets_by_time() {
        let trace = vec![
            entry(1.0, "Head", Some(0.5)),
            entry(2.0, "Tail", Some(0.4)),
            entry(51.0, "Head", Some(0.6)),
            entry(99.0, "Head", Some(0.6)),
        ];
        let usage = usage_over_time(&trace, 100.0, 2);
        assert_eq!(usage.len(), 2);
        assert_eq!(usage[0].counts["Head"], 1);
        assert_eq!(usage[0].counts["Tail"], 1);
        assert_eq!(usage[1].counts["Head"], 2);
        assert!((usage[0].share("Head") - 0.5).abs() < 1e-12);
        assert_eq!(usage[1].share("Tail"), 0.0);
    }

    #[test]
    fn out_of_horizon_entries_land_in_last_slice() {
        let trace = vec![entry(250.0, "Head", None)];
        let usage = usage_over_time(&trace, 100.0, 4);
        assert_eq!(usage[3].counts["Head"], 1);
    }

    #[test]
    fn events_to_trace_keeps_only_step_finished() {
        let events = vec![
            Event::StepStarted { step: 0, t_ms: 0.0, policy_ms: 1.0 },
            Event::StepFinished {
                step: 0,
                t_ms: 1500.0,
                action: "Head".to_owned(),
                reward: Some(0.25),
                interactions: 1,
                lines: 10,
                distinct_urls: 3,
            },
            Event::RunFinished { t_ms: 2000.0, steps: 1, interactions: 1, lines: 10 },
        ];
        let trace = events_to_trace(&events);
        assert_eq!(trace, vec![entry(1.5, "Head", Some(0.25))]);
    }

    #[test]
    fn mean_rewards_skip_unrewarded_steps() {
        let trace = vec![
            entry(1.0, "Head", Some(0.2)),
            entry(2.0, "Head", Some(0.6)),
            entry(3.0, "Tail", None),
        ];
        let means = mean_reward_per_action(&trace);
        assert!((means["Head"] - 0.4).abs() < 1e-12);
        assert!(!means.contains_key("Tail"));
    }

    #[test]
    fn traced_run_produces_usage() {
        let (report, usage) = traced_run("mak", "addressbook", 2.0, 1, 4).expect("known names");
        assert_eq!(report.trace.len() as u64, report.interactions);
        let total: usize = usage.iter().flat_map(|s| s.counts.values()).sum();
        assert_eq!(total as u64, report.interactions);
        // MAK's three arms all appear somewhere in a 2-minute crawl.
        let all: std::collections::BTreeSet<&str> =
            usage.iter().flat_map(|s| s.counts.keys()).map(String::as_str).collect();
        assert!(all.contains("Head") && all.contains("Tail") && all.contains("Random"));
    }

    #[test]
    fn unknown_names_yield_none() {
        assert!(traced_run("mak", "geocities", 1.0, 0, 2).is_none());
        assert!(traced_run("wget", "vanilla", 1.0, 0, 2).is_none());
    }
}
