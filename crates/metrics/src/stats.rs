//! Small aggregation helpers for experiment results.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n − 1); 0 with fewer than two values. This is
/// the deviation shown as the shaded band of Fig. 2.
pub fn sample_std(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Index of the maximum value; `None` for an empty slice. Ties resolve to
/// the first index.
pub fn argmax(xs: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in xs.iter().enumerate() {
        if best.is_none_or(|(_, b)| x > b) {
            best = Some((i, x));
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        let s = sample_std(&xs);
        assert!((s - 2.138).abs() < 1e-3, "got {s}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(sample_std(&[]), 0.0);
        assert_eq!(sample_std(&[3.0]), 0.0);
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn argmax_first_tie_wins() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some(1));
    }
}
