//! Resampling and aggregation of coverage-over-time curves (Fig. 2).

use crate::stats::{mean, sample_std};
use mak::framework::engine::CoverageSample;

/// Resamples an (increasing-time) coverage series onto a regular grid of
/// `points` samples spanning `[0, horizon_secs]`, holding the last observed
/// value (coverage is a step function of time).
///
/// # Panics
///
/// Panics if `points` is zero or `horizon_secs` is not positive.
pub fn resample(series: &[CoverageSample], horizon_secs: f64, points: usize) -> Vec<u64> {
    assert!(points > 0, "need at least one grid point");
    assert!(horizon_secs > 0.0, "horizon must be positive");
    let mut out = Vec::with_capacity(points);
    let mut idx = 0;
    let mut last = 0;
    for p in 0..points {
        let t = horizon_secs * (p + 1) as f64 / points as f64;
        while idx < series.len() && series[idx].secs <= t {
            last = series[idx].lines;
            idx += 1;
        }
        out.push(last);
    }
    out
}

/// One aggregated grid point: mean ± sample standard deviation over runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanStd {
    /// Mean lines covered at this time.
    pub mean: f64,
    /// Sample standard deviation across runs.
    pub std: f64,
}

/// Aggregates several resampled runs (all of equal length) point-wise —
/// the "mean and standard deviation of the code coverage" curves of Fig. 2.
///
/// # Panics
///
/// Panics if `runs` is empty or the runs have unequal lengths.
pub fn aggregate(runs: &[Vec<u64>]) -> Vec<MeanStd> {
    assert!(!runs.is_empty(), "need at least one run");
    let len = runs[0].len();
    assert!(runs.iter().all(|r| r.len() == len), "runs must share the grid");
    (0..len)
        .map(|i| {
            let xs: Vec<f64> = runs.iter().map(|r| r[i] as f64).collect();
            MeanStd { mean: mean(&xs), std: sample_std(&xs) }
        })
        .collect()
}

/// The earliest grid index at which the series reaches `fraction` of its
/// final value — the convergence-speed measure behind the paper's "MAK
/// reaches the highest coverage on PhpBB2 in under six minutes" (§V-B).
/// Returns `None` if the series never reaches it (only possible for
/// `fraction > 1`).
pub fn convergence_index(series: &[MeanStd], fraction: f64) -> Option<usize> {
    let last = series.last()?.mean;
    let target = last * fraction;
    series.iter().position(|p| p.mean >= target)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(points: &[(f64, u64)]) -> Vec<CoverageSample> {
        points.iter().map(|&(secs, lines)| CoverageSample { secs, lines }).collect()
    }

    #[test]
    fn resample_holds_last_value() {
        let series = s(&[(0.0, 10), (45.0, 20), (100.0, 30)]);
        let grid = resample(&series, 120.0, 4); // t = 30, 60, 90, 120
        assert_eq!(grid, vec![10, 20, 20, 30]);
    }

    #[test]
    fn resample_empty_series_is_zero() {
        assert_eq!(resample(&[], 60.0, 2), vec![0, 0]);
    }

    #[test]
    fn aggregate_computes_mean_and_std() {
        let runs = vec![vec![10, 20], vec![20, 40]];
        let agg = aggregate(&runs);
        assert_eq!(agg[0].mean, 15.0);
        assert_eq!(agg[1].mean, 30.0);
        assert!(agg[1].std > agg[0].std);
    }

    #[test]
    fn convergence_index_finds_first_crossing() {
        let series: Vec<MeanStd> = [10.0, 50.0, 90.0, 95.0, 100.0]
            .iter()
            .map(|&m| MeanStd { mean: m, std: 0.0 })
            .collect();
        assert_eq!(convergence_index(&series, 0.9), Some(2));
        assert_eq!(convergence_index(&series, 1.0), Some(4));
        assert_eq!(convergence_index(&[], 0.9), None);
    }

    #[test]
    #[should_panic(expected = "share the grid")]
    fn aggregate_rejects_ragged_runs() {
        aggregate(&[vec![1], vec![1, 2]]);
    }
}
