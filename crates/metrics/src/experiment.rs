//! The run-matrix executor: apps × crawlers × seeds.
//!
//! §V-A.4: "Each experiment consists of running the crawler on a web
//! application for 30 minutes […]. We repeat the experiments for each pair
//! of crawlers and web applications for 10 times." A [`RunMatrix`] captures
//! that grid; [`run_matrix`] executes it across worker threads, and
//! [`run_matrix_cached`] additionally serves cells out of a [`RunStore`]
//! (see [`crate::store`]) so repeated invocations only pay for new cells.
//! Every run is deterministic in its `(app, crawler, seed)` triple, so
//! repetitions are just seeds `0..n` — which is exactly what makes the
//! cache sound.

use crate::store::RunStore;
use mak::framework::engine::{run_crawl, CrawlReport, EngineConfig};
use mak::spec::build_crawler;
use mak_obs::event::Event;
use mak_obs::logger::{enabled, Level};
use mak_obs::sink::SharedSink;
use mak_websim::apps;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// The experiment grid.
#[derive(Debug, Clone)]
pub struct RunMatrix {
    /// Application names (see [`mak_websim::apps::build`]).
    pub apps: Vec<String>,
    /// Crawler names (see [`mak::spec::build_crawler`]).
    pub crawlers: Vec<String>,
    /// Number of repetitions; runs use seeds `0..seeds`.
    pub seeds: u64,
    /// Engine configuration shared by all runs.
    pub config: EngineConfig,
}

impl RunMatrix {
    /// Builds a matrix with the default 30-minute engine configuration.
    pub fn new<A, C>(apps: A, crawlers: C, seeds: u64) -> Self
    where
        A: IntoIterator,
        A::Item: Into<String>,
        C: IntoIterator,
        C::Item: Into<String>,
    {
        RunMatrix {
            apps: apps.into_iter().map(Into::into).collect(),
            crawlers: crawlers.into_iter().map(Into::into).collect(),
            seeds,
            config: EngineConfig::default(),
        }
    }

    /// Overrides the engine configuration.
    #[must_use]
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Total number of runs in the grid.
    pub fn run_count(&self) -> usize {
        self.apps.len() * self.crawlers.len() * self.seeds as usize
    }
}

/// Executes one cell of the matrix.
///
/// # Panics
///
/// Panics on unknown app or crawler names — a configuration error worth
/// failing loudly on.
pub fn run_one(app: &str, crawler: &str, seed: u64, config: &EngineConfig) -> CrawlReport {
    let app_model = apps::build(app).unwrap_or_else(|| panic!("unknown app {app}"));
    let mut c = build_crawler(crawler, seed).unwrap_or_else(|| panic!("unknown crawler {crawler}"));
    run_crawl(&mut *c, app_model, config, seed)
}

/// Executes one cell through a [`RunStore`]: serves a cache hit when the
/// store has one, otherwise runs and persists the fresh report.
///
/// # Panics
///
/// Panics on unknown app or crawler names, like [`run_one`].
pub fn run_one_cached(
    app: &str,
    crawler: &str,
    seed: u64,
    config: &EngineConfig,
    store: &RunStore,
) -> CrawlReport {
    run_one_cached_flagged(app, crawler, seed, config, store).0
}

/// Like [`run_one_cached`], but also reports whether the cell was served
/// from the store (`true`) or executed fresh (`false`).
///
/// # Panics
///
/// Panics on unknown app or crawler names, like [`run_one`].
pub fn run_one_cached_flagged(
    app: &str,
    crawler: &str,
    seed: u64,
    config: &EngineConfig,
    store: &RunStore,
) -> (CrawlReport, bool) {
    if let Some(report) = store.load(app, crawler, seed, config) {
        return (report, true);
    }
    let report = run_one(app, crawler, seed, config);
    store.save(&report, config);
    (report, false)
}

/// Renders a panic payload for error reporting.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Live progress shared by the worker threads.
struct Progress {
    total: usize,
    done: AtomicUsize,
    /// Virtual milliseconds accumulated across finished cells.
    virtual_ms: AtomicU64,
    enabled: bool,
    started: std::time::Instant,
}

impl Progress {
    fn new(total: usize, wanted: bool) -> Self {
        Progress {
            total,
            done: AtomicUsize::new(0),
            virtual_ms: AtomicU64::new(0),
            // Respect `MAK_LOG=off` even when the caller asked for
            // progress: the env var is the user's master switch.
            enabled: wanted && enabled(Level::Progress),
            started: std::time::Instant::now(),
        }
    }

    /// Records one finished cell and (when enabled) reports on stderr.
    fn cell_done(&self, report: &CrawlReport, store: &RunStore) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        self.virtual_ms.fetch_add((report.elapsed_secs * 1_000.0) as u64, Ordering::Relaxed);
        if !self.enabled {
            return;
        }
        // One line per cell is unreadable for large grids on a plain log;
        // cap non-terminal output at ~20 evenly spaced updates.
        use std::io::IsTerminal;
        let stride = (self.total / 20).max(1);
        if std::io::stderr().is_terminal() {
            eprint!("\r{}", self.line(done, store));
            if done == self.total {
                eprintln!();
            }
        } else if done.is_multiple_of(stride) || done == self.total {
            eprintln!("{}", self.line(done, store));
        }
    }

    fn line(&self, done: usize, store: &RunStore) -> String {
        let hits = store.session_hits();
        let looked_up = hits + store.session_misses();
        let rate = if looked_up == 0 { 0.0 } else { 100.0 * hits as f64 / looked_up as f64 };
        format!("[cells {done}/{}] cache hits {hits}/{looked_up} ({rate:.0}%)", self.total)
    }

    /// Prints the closing summary (virtual-vs-wall speedup).
    fn finish(&self, store: &RunStore) {
        if !self.enabled {
            return;
        }
        let wall = self.started.elapsed().as_secs_f64();
        let virt = self.virtual_ms.load(Ordering::Relaxed) as f64 / 1_000.0;
        let speedup = if wall > 0.0 { virt / wall } else { f64::INFINITY };
        eprintln!(
            "{}; {:.1} virtual min in {:.1}s wall ({speedup:.0}x real time)",
            self.line(self.done.load(Ordering::Relaxed), store),
            virt / 60.0,
            wall,
        );
    }
}

/// Runs the whole matrix on `threads` worker threads and returns all
/// reports (ordering follows the grid: apps outermost, then crawlers, then
/// seeds). Every cell executes — nothing is read from or written to disk;
/// use [`run_matrix_cached`] for the incremental variant.
///
/// # Panics
///
/// Panics if `threads` is zero or any name in the matrix is unknown; the
/// failing `(app, crawler, seed)` cell is named in the panic message.
pub fn run_matrix(matrix: &RunMatrix, threads: usize) -> Vec<CrawlReport> {
    run_matrix_inner(matrix, threads, &RunStore::disabled(), false, &SharedSink::none())
}

/// Runs the matrix through a [`RunStore`]: cells the store already holds
/// are loaded, the rest execute across worker threads and are persisted.
/// Progress (cells done, cache-hit rate, virtual-vs-wall speedup) is
/// reported on stderr.
///
/// Cached and fresh reports are field-for-field identical — the cache only
/// short-circuits work, never changes results.
///
/// # Panics
///
/// Panics if `threads` is zero or any name in the matrix is unknown; the
/// failing `(app, crawler, seed)` cell is named in the panic message.
pub fn run_matrix_cached(matrix: &RunMatrix, threads: usize, store: &RunStore) -> Vec<CrawlReport> {
    run_matrix_inner(matrix, threads, store, true, &SharedSink::none())
}

/// [`run_matrix_cached`] plus observability: every finished cell emits an
/// [`Event::CellFinished`] into `sink`, carrying per-cell wall-clock
/// milliseconds, virtual seconds, interactions, and whether the cell came
/// from the cache. The wall-clock field lives only in this bench-side
/// event — per-crawl events stay on the virtual clock — so crawl results
/// remain deterministic while the harness can still be profiled.
///
/// # Panics
///
/// Panics if `threads` is zero or any name in the matrix is unknown; the
/// failing `(app, crawler, seed)` cell is named in the panic message.
pub fn run_matrix_cached_observed(
    matrix: &RunMatrix,
    threads: usize,
    store: &RunStore,
    sink: &SharedSink,
) -> Vec<CrawlReport> {
    run_matrix_inner(matrix, threads, store, true, sink)
}

fn run_matrix_inner(
    matrix: &RunMatrix,
    threads: usize,
    store: &RunStore,
    progress_enabled: bool,
    sink: &SharedSink,
) -> Vec<CrawlReport> {
    assert!(threads > 0, "need at least one worker thread");
    let mut jobs = Vec::with_capacity(matrix.run_count());
    for app in &matrix.apps {
        for crawler in &matrix.crawlers {
            for seed in 0..matrix.seeds {
                jobs.push((jobs.len(), app.clone(), crawler.clone(), seed));
            }
        }
    }
    let total = jobs.len();
    let progress = Progress::new(total, progress_enabled);
    let queue = Mutex::new(jobs.into_iter());
    let results: Mutex<Vec<(usize, CrawlReport)>> = Mutex::new(Vec::with_capacity(total));
    // `(app, crawler, seed, message)` of every cell whose execution
    // panicked. A panicking cell must not take its siblings down with a
    // poisoned-mutex cascade, so all locks below tolerate poison
    // (`PoisonError::into_inner`: the protected data — a job iterator, a
    // results vector — stays structurally valid even if a panic ever fired
    // while a lock was held).
    let failures: Mutex<Vec<(String, String, u64, String)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..threads.min(total.max(1)) {
            scope.spawn(|| loop {
                let job = queue.lock().unwrap_or_else(PoisonError::into_inner).next();
                let Some((idx, app, crawler, seed)) = job else { break };
                let cell_started = std::time::Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    run_one_cached_flagged(&app, &crawler, seed, &matrix.config, store)
                }));
                match outcome {
                    Ok((report, cached)) => {
                        sink.emit_with(|| Event::CellFinished {
                            app: report.app.clone(),
                            crawler: report.crawler.clone(),
                            seed: report.seed,
                            wall_ms: cell_started.elapsed().as_secs_f64() * 1_000.0,
                            virtual_secs: report.elapsed_secs,
                            interactions: report.interactions,
                            cached,
                        });
                        progress.cell_done(&report, store);
                        results.lock().unwrap_or_else(PoisonError::into_inner).push((idx, report));
                    }
                    Err(payload) => {
                        let msg = panic_message(payload.as_ref());
                        failures
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .push((app, crawler, seed, msg));
                    }
                }
            });
        }
    });

    let failures = failures.into_inner().unwrap_or_else(PoisonError::into_inner);
    if let Some((app, crawler, seed, msg)) = failures.first() {
        panic!(
            "run_matrix: cell (app=`{app}`, crawler=`{crawler}`, seed={seed}) panicked: {msg} \
             ({} of {total} cells failed)",
            failures.len(),
        );
    }
    progress.finish(store);

    let mut results = results.into_inner().unwrap_or_else(PoisonError::into_inner);
    results.sort_by_key(|(idx, _)| *idx);
    results.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{CacheMode, RunStore};
    use std::path::PathBuf;

    fn tiny_matrix() -> RunMatrix {
        RunMatrix::new(["addressbook"], ["bfs", "random"], 2)
            .with_config(EngineConfig::with_budget_minutes(1.0))
    }

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mak-exp-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn grid_size_is_product() {
        assert_eq!(tiny_matrix().run_count(), 4);
    }

    #[test]
    fn matrix_runs_in_grid_order() {
        let reports = run_matrix(&tiny_matrix(), 3);
        assert_eq!(reports.len(), 4);
        assert_eq!(reports[0].crawler, "bfs");
        assert_eq!(reports[0].seed, 0);
        assert_eq!(reports[1].seed, 1);
        assert_eq!(reports[2].crawler, "random");
        for r in &reports {
            assert_eq!(r.app, "addressbook");
            assert!(r.final_lines_covered > 0);
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        // Includes a learning crawler (`mak`): policy state must be
        // per-cell, so the thread schedule cannot leak between runs.
        let m = RunMatrix::new(["addressbook", "vanilla"], ["bfs", "random", "mak"], 2)
            .with_config(EngineConfig::with_budget_minutes(1.0));
        let a = run_matrix(&m, 1);
        let b = run_matrix(&m, 4);
        assert_eq!(a, b, "thread count must not change results");
    }

    #[test]
    #[should_panic(expected = "unknown app")]
    fn unknown_app_panics() {
        run_one("geocities", "bfs", 0, &EngineConfig::with_budget_minutes(1.0));
    }

    #[test]
    fn failing_cell_is_named_and_siblings_survive() {
        // Regression: a panic in one cell used to poison the job-queue
        // mutex and kill every sibling thread with a misleading
        // `"queue lock"` expect; now the original panic surfaces with the
        // failing cell named.
        let m = RunMatrix::new(["addressbook"], ["bfs", "nosuchcrawler"], 1)
            .with_config(EngineConfig::with_budget_minutes(1.0));
        let payload = std::panic::catch_unwind(|| run_matrix(&m, 2))
            .expect_err("matrix with an unknown crawler must fail");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("run_matrix panics with a formatted message");
        assert!(msg.contains("crawler=`nosuchcrawler`"), "cell named: {msg}");
        assert!(msg.contains("seed=0"), "seed named: {msg}");
        assert!(msg.contains("unknown crawler"), "original cause kept: {msg}");
        assert!(msg.contains("1 of 2 cells failed"), "healthy sibling survived: {msg}");
    }

    #[test]
    fn cached_rerun_is_field_identical_to_fresh() {
        let root = tmp_root("identical");
        let m = tiny_matrix();
        let fresh = run_matrix(&m, 2);

        let first = RunStore::at(&root, CacheMode::ReadWrite);
        let populated = run_matrix_cached(&m, 2, &first);
        assert_eq!(populated, fresh, "populating pass matches uncached run");
        assert_eq!(first.session_hits(), 0);
        assert_eq!(first.session_misses(), m.run_count() as u64);

        let second = RunStore::at(&root, CacheMode::ReadWrite);
        let cached = run_matrix_cached(&m, 2, &second);
        assert_eq!(cached, fresh, "cached reload matches uncached run field-for-field");
        assert_eq!(second.session_hits(), m.run_count() as u64, "second pass is 100% hits");
        assert_eq!(second.session_misses(), 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn config_change_forces_reexecution() {
        let root = tmp_root("config-change");
        let m = tiny_matrix();
        run_matrix_cached(&m, 2, &RunStore::at(&root, CacheMode::ReadWrite));

        let mut changed = tiny_matrix();
        changed.config.cost.think_ms += 1.0;
        let store = RunStore::at(&root, CacheMode::ReadWrite);
        run_matrix_cached(&changed, 2, &store);
        assert_eq!(store.session_hits(), 0, "any config change must invalidate");
        assert_eq!(store.session_misses(), changed.run_count() as u64);

        // A code-fingerprint change invalidates just the same.
        let refp = RunStore::at(&root, CacheMode::ReadWrite).with_fingerprint(0xdead);
        run_matrix_cached(&m, 2, &refp);
        assert_eq!(refp.session_hits(), 0, "a code change must invalidate");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn cache_off_forces_reexecution() {
        let root = tmp_root("off-mode");
        let m = tiny_matrix();
        run_matrix_cached(&m, 2, &RunStore::at(&root, CacheMode::ReadWrite));

        let off = RunStore::at(&root, CacheMode::Off);
        let reports = run_matrix_cached(&m, 2, &off);
        assert_eq!(off.session_hits(), 0, "MAK_CACHE=off must execute everything");
        assert_eq!(off.session_misses(), m.run_count() as u64);
        assert_eq!(reports, run_matrix(&m, 1), "off-mode results are still deterministic");
        let _ = std::fs::remove_dir_all(&root);
    }
}
