//! The run-matrix executor: apps × crawlers × seeds.
//!
//! §V-A.4: "Each experiment consists of running the crawler on a web
//! application for 30 minutes […]. We repeat the experiments for each pair
//! of crawlers and web applications for 10 times." A [`RunMatrix`] captures
//! that grid; [`run_matrix`] executes it across worker threads. Every run is
//! deterministic in its `(app, crawler, seed)` triple, so repetitions are
//! just seeds `0..n`.

use mak::framework::engine::{run_crawl, CrawlReport, EngineConfig};
use mak::spec::build_crawler;
use mak_websim::apps;
use std::sync::Mutex;

/// The experiment grid.
#[derive(Debug, Clone)]
pub struct RunMatrix {
    /// Application names (see [`mak_websim::apps::build`]).
    pub apps: Vec<String>,
    /// Crawler names (see [`mak::spec::build_crawler`]).
    pub crawlers: Vec<String>,
    /// Number of repetitions; runs use seeds `0..seeds`.
    pub seeds: u64,
    /// Engine configuration shared by all runs.
    pub config: EngineConfig,
}

impl RunMatrix {
    /// Builds a matrix with the default 30-minute engine configuration.
    pub fn new<A, C>(apps: A, crawlers: C, seeds: u64) -> Self
    where
        A: IntoIterator,
        A::Item: Into<String>,
        C: IntoIterator,
        C::Item: Into<String>,
    {
        RunMatrix {
            apps: apps.into_iter().map(Into::into).collect(),
            crawlers: crawlers.into_iter().map(Into::into).collect(),
            seeds,
            config: EngineConfig::default(),
        }
    }

    /// Overrides the engine configuration.
    #[must_use]
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Total number of runs in the grid.
    pub fn run_count(&self) -> usize {
        self.apps.len() * self.crawlers.len() * self.seeds as usize
    }
}

/// Executes one cell of the matrix.
///
/// # Panics
///
/// Panics on unknown app or crawler names — a configuration error worth
/// failing loudly on.
pub fn run_one(app: &str, crawler: &str, seed: u64, config: &EngineConfig) -> CrawlReport {
    let app_model = apps::build(app).unwrap_or_else(|| panic!("unknown app {app}"));
    let mut c =
        build_crawler(crawler, seed).unwrap_or_else(|| panic!("unknown crawler {crawler}"));
    run_crawl(&mut *c, app_model, config, seed)
}

/// Runs the whole matrix on `threads` worker threads and returns all
/// reports (ordering follows the grid: apps outermost, then crawlers, then
/// seeds).
///
/// # Panics
///
/// Panics if `threads` is zero or any name in the matrix is unknown.
pub fn run_matrix(matrix: &RunMatrix, threads: usize) -> Vec<CrawlReport> {
    assert!(threads > 0, "need at least one worker thread");
    let mut jobs = Vec::with_capacity(matrix.run_count());
    for app in &matrix.apps {
        for crawler in &matrix.crawlers {
            for seed in 0..matrix.seeds {
                jobs.push((jobs.len(), app.clone(), crawler.clone(), seed));
            }
        }
    }
    let queue = Mutex::new(jobs.into_iter());
    let results: Mutex<Vec<(usize, CrawlReport)>> =
        Mutex::new(Vec::with_capacity(matrix.run_count()));

    std::thread::scope(|scope| {
        for _ in 0..threads.min(matrix.run_count().max(1)) {
            scope.spawn(|| loop {
                let job = queue.lock().expect("queue lock").next();
                let Some((idx, app, crawler, seed)) = job else { break };
                let report = run_one(&app, &crawler, seed, &matrix.config);
                results.lock().expect("results lock").push((idx, report));
            });
        }
    });

    let mut results = results.into_inner().expect("results lock");
    results.sort_by_key(|(idx, _)| *idx);
    results.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_matrix() -> RunMatrix {
        RunMatrix::new(["addressbook"], ["bfs", "random"], 2)
            .with_config(EngineConfig::with_budget_minutes(1.0))
    }

    #[test]
    fn grid_size_is_product() {
        assert_eq!(tiny_matrix().run_count(), 4);
    }

    #[test]
    fn matrix_runs_in_grid_order() {
        let reports = run_matrix(&tiny_matrix(), 3);
        assert_eq!(reports.len(), 4);
        assert_eq!(reports[0].crawler, "bfs");
        assert_eq!(reports[0].seed, 0);
        assert_eq!(reports[1].seed, 1);
        assert_eq!(reports[2].crawler, "random");
        for r in &reports {
            assert_eq!(r.app, "addressbook");
            assert!(r.final_lines_covered > 0);
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let a = run_matrix(&tiny_matrix(), 1);
        let b = run_matrix(&tiny_matrix(), 4);
        let key = |rs: &[CrawlReport]| -> Vec<(String, u64, u64)> {
            rs.iter().map(|r| (r.crawler.clone(), r.seed, r.final_lines_covered)).collect()
        };
        assert_eq!(key(&a), key(&b), "thread count must not change results");
    }

    #[test]
    #[should_panic(expected = "unknown app")]
    fn unknown_app_panics() {
        run_one("geocities", "bfs", 0, &EngineConfig::with_budget_minutes(1.0));
    }
}
