//! Property-based tests for the bandit algorithms' invariants.

use mak_bandit::epsilon::EpsilonGreedy;
use mak_bandit::exp3::Exp3;
use mak_bandit::exp31::Exp31;
use mak_bandit::gumbel::softmax_probs;
use mak_bandit::normalize::RunningStats;
use mak_bandit::policy::BanditPolicy;
use mak_bandit::qlearning::QTable;
use mak_bandit::ucb::Ucb1;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn distribution_invariant<P: BanditPolicy>(mut policy: P, plays: Vec<(usize, f64)>) {
    let k = policy.arms();
    let mut rng = StdRng::seed_from_u64(99);
    for (arm, reward) in plays {
        let _ = policy.choose(&mut rng);
        policy.update(arm % k, reward);
        let probs = policy.probabilities();
        assert_eq!(probs.len(), k);
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)), "{probs:?}");
    }
}

/// Exp3.1 numerical soundness across 10,000 seeded adversarial reward
/// sequences, including the two degenerate extremes (all-zero and
/// all-one), up/down drifts, and step alternation: weights stay finite
/// and strictly positive, probabilities sum to 1 within 1e-12, gain
/// estimates stay finite, and the epoch-termination bound of Algorithm 1
/// holds after every update.
#[test]
fn exp31_survives_ten_thousand_adversarial_sequences() {
    use rand::Rng;
    for seq in 0..10_000u64 {
        let mut b = Exp31::new(3);
        let mut rng = StdRng::seed_from_u64(seq);
        for step in 0..100u64 {
            let arm = b.choose(&mut rng);
            let reward = match seq % 6 {
                0 => 0.0,
                1 => 1.0,
                2 => step as f64 / 100.0,
                3 => 1.0 - step as f64 / 100.0,
                4 => f64::from(u32::from(step % 2 == 0)),
                _ => rng.gen::<f64>(),
            };
            b.update(arm, reward);
            if step % 10 == 0 || step == 99 {
                for &w in b.weights() {
                    assert!(w.is_finite() && w > 0.0, "seq {seq} step {step}: weight {w}");
                }
                let probs = b.probabilities();
                let sum: f64 = probs.iter().sum();
                assert!((sum - 1.0).abs() < 1e-12, "seq {seq} step {step}: sum {sum}");
                let mut max_gain = f64::NEG_INFINITY;
                for &g in b.gains() {
                    assert!(g.is_finite(), "seq {seq} step {step}: gain {g}");
                    max_gain = max_gain.max(g);
                }
                assert!(
                    max_gain <= b.epoch_termination_bound() + 1e-9,
                    "seq {seq} step {step}: max gain {max_gain} above epoch bound {}",
                    b.epoch_termination_bound()
                );
            }
        }
    }
}

proptest! {
    #[test]
    fn exp31_probabilities_stay_a_distribution(
        plays in proptest::collection::vec((0usize..5, 0.0f64..1.0), 0..200),
    ) {
        distribution_invariant(Exp31::new(5), plays);
    }

    #[test]
    fn exp3_probabilities_stay_a_distribution(
        plays in proptest::collection::vec((0usize..4, 0.0f64..1.0), 0..200),
        gamma in 0.01f64..1.0,
    ) {
        distribution_invariant(Exp3::new(4, gamma), plays);
    }

    #[test]
    fn epsilon_greedy_probabilities_stay_a_distribution(
        plays in proptest::collection::vec((0usize..4, 0.0f64..1.0), 0..200),
        epsilon in 0.0f64..=1.0,
    ) {
        distribution_invariant(EpsilonGreedy::new(4, epsilon), plays);
    }

    #[test]
    fn ucb1_probabilities_stay_a_distribution(
        plays in proptest::collection::vec((0usize..4, 0.0f64..1.0), 0..200),
    ) {
        distribution_invariant(Ucb1::new(4), plays);
    }

    /// Exp3.1 epochs only ever advance, and γ never increases.
    #[test]
    fn exp31_epochs_are_monotone(
        rewards in proptest::collection::vec(0.0f64..1.0, 1..400),
    ) {
        let mut b = Exp31::new(3);
        let mut rng = StdRng::seed_from_u64(1);
        let mut last_epoch = 0;
        let mut last_gamma = f64::INFINITY;
        for r in rewards {
            let arm = b.choose(&mut rng);
            b.update(arm, r);
            assert!(b.epoch() >= last_epoch);
            let gamma = b.gamma();
            if b.epoch() > last_epoch {
                assert!(gamma <= last_gamma, "gamma shrinks across epochs");
            }
            last_epoch = b.epoch();
            last_gamma = gamma;
        }
    }

    /// Softmax is a distribution and order-preserving for any finite input.
    #[test]
    fn softmax_is_distribution_and_monotone(
        values in proptest::collection::vec(-1e4f64..1e4, 1..16),
        tau in 0.01f64..100.0,
    ) {
        let probs = softmax_probs(&values, tau);
        let sum: f64 = probs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] > values[j] {
                    prop_assert!(probs[i] >= probs[j] - 1e-12);
                }
            }
        }
    }

    /// Welford statistics match the two-pass formulas.
    #[test]
    fn running_stats_match_naive(
        xs in proptest::collection::vec(-1e6f64..1e6, 2..100),
    ) {
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        let scale = var.abs().max(1.0);
        prop_assert!((s.mean() - mean).abs() / mean.abs().max(1.0) < 1e-9);
        prop_assert!((s.variance() - var).abs() / scale < 1e-6);
    }

    /// Q-values stay finite and bounded by the reward/bonus geometry under
    /// arbitrary (clamped) reward sequences.
    #[test]
    fn qtable_values_stay_finite(
        updates in proptest::collection::vec(
            (0u64..5, 0u64..5, 0.0f64..1.0, 0u64..5),
            0..300,
        ),
    ) {
        let mut q = QTable::new(0.5, 0.5, 1.0);
        for (s, a, r, s2) in updates {
            let next: Vec<u64> = (0..3).collect();
            q.bellman_update(s, a, r, s2, &next);
            let v = q.value(s, a);
            prop_assert!(v.is_finite());
            // With r <= 1 and γ = 0.5, values are bounded by r/(1-γ) = 2
            // (plus the optimistic start).
            prop_assert!(v <= 2.0 + 1e-9, "value {v} out of bound");
            prop_assert!(v >= 0.0 - 1e-9);
        }
    }
}
