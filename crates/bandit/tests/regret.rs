//! Empirical regret checks for the bandit algorithms — Exp3.1's guarantee
//! is against *adversarial* reward sequences, which is exactly the setting
//! §IV-D argues web crawling lives in.

use mak_bandit::epsilon::EpsilonGreedy;
use mak_bandit::exp31::Exp31;
use mak_bandit::policy::BanditPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Plays `policy` against a reward oracle; returns (policy gain, best
/// single-arm gain in hindsight).
fn play<P: BanditPolicy>(
    policy: &mut P,
    horizon: usize,
    seed: u64,
    reward_of: impl Fn(usize, usize) -> f64,
) -> (f64, f64) {
    let k = policy.arms();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gain = 0.0;
    let mut arm_gains = vec![0.0; k];
    for t in 0..horizon {
        let arm = policy.choose(&mut rng);
        let r = reward_of(t, arm);
        policy.update(arm, r);
        gain += r;
        for (a, g) in arm_gains.iter_mut().enumerate() {
            *g += reward_of(t, a);
        }
    }
    let best = arm_gains.into_iter().fold(f64::NEG_INFINITY, f64::max);
    (gain, best)
}

/// Exp3.1's regret against the best fixed arm is sublinear: doubling the
/// horizon should much less than double the regret *rate*.
#[test]
fn exp31_regret_rate_shrinks_with_horizon() {
    let oracle = |_t: usize, arm: usize| if arm == 1 { 0.8 } else { 0.3 };
    let rate = |horizon: usize| {
        let mut b = Exp31::new(3);
        let (gain, best) = play(&mut b, horizon, 7, oracle);
        (best - gain) / horizon as f64
    };
    let short = rate(500);
    let long = rate(8_000);
    assert!(
        long < short * 0.6,
        "regret per step must shrink: {short:.4} (T=500) vs {long:.4} (T=8000)"
    );
    assert!(long < 0.15, "long-run regret rate is small: {long:.4}");
}

/// Under an adversarial drift (the best arm flips mid-stream), Exp3.1
/// clearly beats ε-greedy, whose stationary-mean estimates go stale — the
/// §IV-D argument in miniature.
#[test]
fn exp31_beats_epsilon_greedy_under_drift() {
    let horizon = 12_000;
    let drift = |t: usize, arm: usize| {
        let good = if t < horizon / 2 { 0 } else { 2 };
        if arm == good {
            0.8
        } else {
            0.2
        }
    };
    let mut exp31 = Exp31::new(3);
    let (exp31_gain, _) = play(&mut exp31, horizon, 11, drift);
    let mut eps = EpsilonGreedy::new(3, 0.05);
    let (eps_gain, _) = play(&mut eps, horizon, 11, drift);
    assert!(
        exp31_gain > eps_gain * 1.05,
        "Exp3.1 {exp31_gain:.0} should clearly beat ε-greedy {eps_gain:.0} under drift"
    );
}

/// Against noisy i.i.d. rewards, Exp3.1 still ends up mostly on the best
/// arm — adversarial robustness does not forfeit the stochastic case.
#[test]
fn exp31_handles_stochastic_rewards_too() {
    let horizon = 10_000;
    let mut noise = StdRng::seed_from_u64(13);
    let noise_table: Vec<f64> = (0..horizon * 3).map(|_| noise.gen::<f64>()).collect();
    let reward = |t: usize, arm: usize| {
        let p = [0.3, 0.5, 0.7][arm];
        if noise_table[t * 3 + arm] < p {
            1.0
        } else {
            0.0
        }
    };
    let mut b = Exp31::new(3);
    let (gain, best) = play(&mut b, horizon, 17, reward);
    assert!(gain > 0.8 * best, "Exp3.1 captured {gain:.0} of the best arm's {best:.0}");
}
