//! Gumbel-softmax action sampling — WebExplor's `CHOOSE_ACTION` (Table I).
//!
//! Sampling `argmax_i (v_i / τ + g_i)` with i.i.d. standard Gumbel noise
//! `g_i` draws exactly from the softmax distribution with temperature `τ`
//! (the Gumbel-max trick of Jang et al., ICLR 2017). WebExplor uses this to
//! select among the current state's Q-values, trading exploitation against
//! exploration through the temperature.

use rand::Rng;

/// Draws a standard Gumbel(0, 1) variate.
fn gumbel<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Inverse CDF: -ln(-ln(U)). Clamp U away from {0, 1} for stability.
    let u: f64 = rng.gen::<f64>().clamp(1e-300, 1.0 - 1e-16);
    -(-u.ln()).ln()
}

/// Samples an index from `softmax(values / temperature)` via the Gumbel-max
/// trick.
///
/// # Examples
///
/// ```
/// use mak_bandit::gumbel::gumbel_softmax_sample;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let q_values = [0.1, 0.9, 0.2];
/// let picks: Vec<usize> =
///     (0..100).map(|_| gumbel_softmax_sample(&mut rng, &q_values, 0.1)).collect();
/// let best = picks.iter().filter(|&&i| i == 1).count();
/// assert!(best > 80, "low temperature concentrates on the max");
/// ```
///
/// # Panics
///
/// Panics if `values` is empty or `temperature` is not positive.
pub fn gumbel_softmax_sample<R: Rng + ?Sized>(
    rng: &mut R,
    values: &[f64],
    temperature: f64,
) -> usize {
    assert!(!values.is_empty(), "cannot sample from an empty value set");
    assert!(temperature > 0.0, "temperature must be positive");
    values
        .iter()
        .map(|v| v / temperature + gumbel(rng))
        .enumerate()
        .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("perturbed values are comparable"))
        .map(|(i, _)| i)
        .expect("non-empty")
}

/// The explicit softmax probabilities the sampler draws from, for tests and
/// inspection.
///
/// # Panics
///
/// Panics if `values` is empty or `temperature` is not positive.
pub fn softmax_probs(values: &[f64], temperature: f64) -> Vec<f64> {
    assert!(!values.is_empty(), "softmax of an empty value set");
    assert!(temperature > 0.0, "temperature must be positive");
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = values.iter().map(|v| ((v - max) / temperature).exp()).collect();
    let total: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn softmax_probs_sum_to_one() {
        let p = softmax_probs(&[1.0, 2.0, 3.0], 0.5);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn low_temperature_approaches_argmax() {
        let p = softmax_probs(&[0.0, 1.0], 0.01);
        assert!(p[1] > 0.999);
    }

    #[test]
    fn high_temperature_approaches_uniform() {
        let p = softmax_probs(&[0.0, 1.0], 1_000.0);
        assert!((p[0] - 0.5).abs() < 0.01);
    }

    #[test]
    fn sampler_matches_softmax_frequencies() {
        let mut rng = StdRng::seed_from_u64(42);
        let values = [0.0, 1.0, 2.0];
        let tau = 1.0;
        let expected = softmax_probs(&values, tau);
        let n = 30_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[gumbel_softmax_sample(&mut rng, &values, tau)] += 1;
        }
        for i in 0..3 {
            let freq = counts[i] as f64 / n as f64;
            assert!(
                (freq - expected[i]).abs() < 0.02,
                "arm {i}: freq {freq:.3} vs softmax {:.3}",
                expected[i]
            );
        }
    }

    #[test]
    fn softmax_is_stable_for_huge_values() {
        let p = softmax_probs(&[1e8, 1e8 + 1.0], 1.0);
        assert!(p.iter().all(|x| x.is_finite()));
        assert!(p[1] > p[0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn sample_rejects_empty() {
        let mut rng = StdRng::seed_from_u64(1);
        gumbel_softmax_sample(&mut rng, &[], 1.0);
    }

    #[test]
    #[should_panic(expected = "temperature")]
    fn sample_rejects_nonpositive_temperature() {
        let mut rng = StdRng::seed_from_u64(1);
        gumbel_softmax_sample(&mut rng, &[1.0], 0.0);
    }
}
