//! Thompson sampling with Beta posteriors — an ablation baseline.
//!
//! A Bayesian stochastic bandit: each arm keeps a Beta(α, β) posterior over
//! its success probability; at each step the learner samples from every
//! posterior and plays the argmax. Rewards in `[0, 1]` update the posterior
//! fractionally (α += r, β += 1 − r). Like ε-greedy and UCB1 it assumes
//! stationary rewards, so the `ablation2` family uses it to probe the cost
//! of the stochastic assumption that §IV-D argues against.

use crate::policy::BanditPolicy;
use rand::Rng;

/// Thompson sampling over `K` arms with Beta posteriors.
///
/// # Examples
///
/// ```
/// use mak_bandit::thompson::Thompson;
/// use mak_bandit::policy::BanditPolicy;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut bandit = Thompson::new(2);
/// for _ in 0..500 {
///     let arm = bandit.choose(&mut rng);
///     bandit.update(arm, if arm == 0 { 0.9 } else { 0.1 });
/// }
/// assert!(bandit.posterior_mean(0) > bandit.posterior_mean(1));
/// ```
#[derive(Debug, Clone)]
pub struct Thompson {
    alpha: Vec<f64>,
    beta: Vec<f64>,
}

impl Thompson {
    /// Creates the learner with uniform Beta(1, 1) priors.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "Thompson sampling needs at least one arm");
        Thompson { alpha: vec![1.0; k], beta: vec![1.0; k] }
    }

    /// The posterior mean of `arm`.
    pub fn posterior_mean(&self, arm: usize) -> f64 {
        self.alpha[arm] / (self.alpha[arm] + self.beta[arm])
    }

    /// Draws one Beta(α, β) sample via two Gamma draws
    /// (Marsaglia–Tsang for shape ≥ 1, boosted below 1).
    fn sample_beta<R: Rng + ?Sized>(rng: &mut R, alpha: f64, beta: f64) -> f64 {
        let x = Self::sample_gamma(rng, alpha);
        let y = Self::sample_gamma(rng, beta);
        if x + y == 0.0 {
            0.5
        } else {
            x / (x + y)
        }
    }

    fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
        if shape < 1.0 {
            // Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
            let u: f64 = rng.gen::<f64>().max(1e-300);
            return Self::sample_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            // Standard normal via Box–Muller.
            let u1: f64 = rng.gen::<f64>().max(1e-300);
            let u2: f64 = rng.gen();
            let n = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let v = (1.0 + c * n).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = rng.gen::<f64>().max(1e-300);
            if u.ln() < -(0.5 * n * n) + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

// Checkpoint serialization.
impl serde::Serialize for Thompson {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("alpha".to_owned(), self.alpha.to_value()),
            ("beta".to_owned(), self.beta.to_value()),
        ])
    }
}

impl serde::Deserialize for Thompson {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(entries) = value else {
            return Err(serde::Error::custom("expected Thompson object"));
        };
        let alpha: Vec<f64> = serde::__field(entries, "alpha")?;
        let beta: Vec<f64> = serde::__field(entries, "beta")?;
        if alpha.is_empty() || alpha.len() != beta.len() {
            return Err(serde::Error::custom("malformed Thompson checkpoint"));
        }
        Ok(Thompson { alpha, beta })
    }
}

impl BanditPolicy for Thompson {
    fn arms(&self) -> usize {
        self.alpha.len()
    }

    fn choose<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        (0..self.alpha.len())
            .map(|i| (i, Self::sample_beta(rng, self.alpha[i], self.beta[i])))
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("beta samples are finite"))
            .map(|(i, _)| i)
            .expect("non-empty")
    }

    fn update(&mut self, arm: usize, reward: f64) {
        assert!(arm < self.alpha.len(), "arm {arm} out of range");
        let reward = reward.clamp(0.0, 1.0);
        self.alpha[arm] += reward;
        self.beta[arm] += 1.0 - reward;
    }

    fn probabilities(&self) -> Vec<f64> {
        // Thompson's selection distribution has no closed form; report the
        // normalized posterior means as the interpretable summary.
        let means: Vec<f64> = (0..self.alpha.len()).map(|i| self.posterior_mean(i)).collect();
        let total: f64 = means.iter().sum();
        means.into_iter().map(|m| m / total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn converges_to_best_arm() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut t = Thompson::new(3);
        for _ in 0..2_000 {
            let arm = t.choose(&mut rng);
            t.update(arm, if arm == 2 { 0.9 } else { 0.1 });
        }
        assert!(t.posterior_mean(2) > 0.7);
        assert!(t.posterior_mean(2) > t.posterior_mean(0));
        // The best arm must have been played far more than the others.
        assert!(t.alpha[2] + t.beta[2] > 1_000.0);
    }

    #[test]
    fn posterior_starts_uniform() {
        let t = Thompson::new(4);
        for i in 0..4 {
            assert!((t.posterior_mean(i) - 0.5).abs() < 1e-12);
        }
        let p = t.probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fractional_rewards_update_fractionally() {
        let mut t = Thompson::new(2);
        t.update(0, 0.25);
        assert!((t.alpha[0] - 1.25).abs() < 1e-12);
        assert!((t.beta[0] - 1.75).abs() < 1e-12);
        // Out-of-range rewards clamp.
        t.update(1, 7.0);
        assert!((t.alpha[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn beta_samples_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(a, b) in &[(0.5, 0.5), (1.0, 1.0), (5.0, 2.0), (40.0, 60.0)] {
            for _ in 0..200 {
                let x = Thompson::sample_beta(&mut rng, a, b);
                assert!((0.0..=1.0).contains(&x), "Beta({a},{b}) sample {x}");
            }
        }
    }

    #[test]
    fn beta_sample_mean_tracks_parameters() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 5_000;
        let mean: f64 =
            (0..n).map(|_| Thompson::sample_beta(&mut rng, 8.0, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.8).abs() < 0.02, "got {mean}");
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn zero_arms_panics() {
        let _ = Thompson::new(0);
    }
}
