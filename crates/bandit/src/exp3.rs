//! Plain Exp3 with a fixed exploration rate.
//!
//! The inner loop of [Exp3.1](crate::exp31) without the epoch schedule. Used
//! by the ablation benches to quantify what the epoch mechanism buys: with a
//! fixed `γ`, weights never reset, so the learner adapts more slowly when
//! the reward distributions drift between application regions.

use crate::policy::{sample_discrete, BanditPolicy};
use rand::Rng;

/// Exp3 over `K` arms with fixed exploration rate `γ`.
///
/// # Examples
///
/// ```
/// use mak_bandit::exp3::Exp3;
/// use mak_bandit::policy::BanditPolicy;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut bandit = Exp3::new(2, 0.1);
/// for _ in 0..500 {
///     let arm = bandit.choose(&mut rng);
///     bandit.update(arm, if arm == 0 { 1.0 } else { 0.0 });
/// }
/// assert!(bandit.probabilities()[0] > 0.8);
/// ```
#[derive(Debug, Clone)]
pub struct Exp3 {
    gamma: f64,
    weights: Vec<f64>,
}

impl Exp3 {
    /// Creates the learner.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `gamma` is outside `(0, 1]`.
    pub fn new(k: usize, gamma: f64) -> Self {
        assert!(k > 0, "Exp3 needs at least one arm");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        Exp3 { gamma, weights: vec![1.0; k] }
    }

    /// The fixed exploration rate.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    fn policy(&self) -> Vec<f64> {
        let k = self.weights.len() as f64;
        let total: f64 = self.weights.iter().sum();
        self.weights.iter().map(|w| (1.0 - self.gamma) * w / total + self.gamma / k).collect()
    }

    /// Rescales weights when they grow large, preserving the policy.
    fn renormalize(&mut self) {
        let max = self.weights.iter().cloned().fold(0.0, f64::max);
        if max > 1e100 {
            for w in &mut self.weights {
                *w /= max;
            }
        }
    }
}

// Checkpoint serialization; see the Exp3.1 notes — finite f64 weights
// round-trip bit-exactly through the JSON layer.
impl serde::Serialize for Exp3 {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("gamma".to_owned(), serde::Value::Float(self.gamma)),
            ("weights".to_owned(), self.weights.to_value()),
        ])
    }
}

impl serde::Deserialize for Exp3 {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(entries) = value else {
            return Err(serde::Error::custom("expected Exp3 object"));
        };
        let gamma: f64 = serde::__field(entries, "gamma")?;
        let weights: Vec<f64> = serde::__field(entries, "weights")?;
        if weights.is_empty() || !(gamma > 0.0 && gamma <= 1.0) {
            return Err(serde::Error::custom("malformed Exp3 checkpoint"));
        }
        Ok(Exp3 { gamma, weights })
    }
}

impl BanditPolicy for Exp3 {
    fn arms(&self) -> usize {
        self.weights.len()
    }

    fn choose<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        sample_discrete(rng, &self.policy())
    }

    fn update(&mut self, arm: usize, reward: f64) {
        assert!(arm < self.weights.len(), "arm {arm} out of range");
        let reward = reward.clamp(0.0, 1.0);
        let pi = self.policy();
        let k = self.weights.len() as f64;
        let r_hat = reward / pi[arm];
        self.weights[arm] *= (self.gamma * r_hat / k).exp();
        self.renormalize();
    }

    fn probabilities(&self) -> Vec<f64> {
        self.policy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn converges_to_best_arm() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = Exp3::new(3, 0.1);
        for _ in 0..2_000 {
            let arm = b.choose(&mut rng);
            b.update(arm, if arm == 1 { 1.0 } else { 0.0 });
        }
        let p = b.probabilities();
        assert!(p[1] > 0.7, "{p:?}");
    }

    #[test]
    fn exploration_floor_is_gamma_over_k() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut b = Exp3::new(4, 0.2);
        for _ in 0..5_000 {
            let arm = b.choose(&mut rng);
            b.update(arm, if arm == 0 { 1.0 } else { 0.0 });
        }
        let p = b.probabilities();
        for pi in &p {
            assert!(*pi >= 0.2 / 4.0 - 1e-9, "{p:?}");
        }
    }

    #[test]
    fn weights_never_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = Exp3::new(2, 0.5);
        for _ in 0..200_000 {
            let arm = b.choose(&mut rng);
            b.update(arm, 1.0);
        }
        for w in &b.weights {
            assert!(w.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rejects_bad_gamma() {
        let _ = Exp3::new(2, 0.0);
    }
}
