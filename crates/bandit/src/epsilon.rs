//! ε-greedy stochastic bandit — an ablation baseline.
//!
//! Not part of the paper's system, but used by the ablation benches to show
//! why MAK needs an *adversarial* bandit: ε-greedy estimates a fixed mean
//! reward per arm, so when the best navigation strategy changes between
//! application regions (§IV-D) its stale estimates keep it on the old arm.

use crate::policy::BanditPolicy;
use rand::Rng;

/// ε-greedy over `K` arms with empirical-mean value estimates.
///
/// # Examples
///
/// ```
/// use mak_bandit::epsilon::EpsilonGreedy;
/// use mak_bandit::policy::BanditPolicy;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut bandit = EpsilonGreedy::new(3, 0.1);
/// for _ in 0..300 {
///     let arm = bandit.choose(&mut rng);
///     bandit.update(arm, if arm == 2 { 0.9 } else { 0.1 });
/// }
/// let probs = bandit.probabilities();
/// assert!(probs[2] > probs[0], "greedy mass on the best arm");
/// ```
#[derive(Debug, Clone)]
pub struct EpsilonGreedy {
    epsilon: f64,
    counts: Vec<u64>,
    means: Vec<f64>,
}

impl EpsilonGreedy {
    /// Creates the learner.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `epsilon` is outside `[0, 1]`.
    pub fn new(k: usize, epsilon: f64) -> Self {
        assert!(k > 0, "EpsilonGreedy needs at least one arm");
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1]");
        EpsilonGreedy { epsilon, counts: vec![0; k], means: vec![0.0; k] }
    }

    fn greedy_arm(&self) -> usize {
        // Prefer untried arms, then the best empirical mean.
        if let Some(i) = self.counts.iter().position(|&c| c == 0) {
            return i;
        }
        self.means
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("means are finite"))
            .map(|(i, _)| i)
            .expect("non-empty")
    }
}

// Checkpoint serialization.
impl serde::Serialize for EpsilonGreedy {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("epsilon".to_owned(), serde::Value::Float(self.epsilon)),
            ("counts".to_owned(), self.counts.to_value()),
            ("means".to_owned(), self.means.to_value()),
        ])
    }
}

impl serde::Deserialize for EpsilonGreedy {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(entries) = value else {
            return Err(serde::Error::custom("expected EpsilonGreedy object"));
        };
        let epsilon: f64 = serde::__field(entries, "epsilon")?;
        let counts: Vec<u64> = serde::__field(entries, "counts")?;
        let means: Vec<f64> = serde::__field(entries, "means")?;
        if counts.is_empty() || counts.len() != means.len() || !(0.0..=1.0).contains(&epsilon) {
            return Err(serde::Error::custom("malformed EpsilonGreedy checkpoint"));
        }
        Ok(EpsilonGreedy { epsilon, counts, means })
    }
}

impl BanditPolicy for EpsilonGreedy {
    fn arms(&self) -> usize {
        self.counts.len()
    }

    fn choose<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        if rng.gen::<f64>() < self.epsilon {
            rng.gen_range(0..self.counts.len())
        } else {
            self.greedy_arm()
        }
    }

    fn update(&mut self, arm: usize, reward: f64) {
        assert!(arm < self.counts.len(), "arm {arm} out of range");
        self.counts[arm] += 1;
        let n = self.counts[arm] as f64;
        self.means[arm] += (reward - self.means[arm]) / n;
    }

    fn probabilities(&self) -> Vec<f64> {
        let k = self.counts.len();
        let mut p = vec![self.epsilon / k as f64; k];
        p[self.greedy_arm()] += 1.0 - self.epsilon;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn converges_to_best_arm() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = EpsilonGreedy::new(3, 0.1);
        for _ in 0..1_000 {
            let arm = b.choose(&mut rng);
            b.update(arm, if arm == 2 { 1.0 } else { 0.2 });
        }
        assert_eq!(b.greedy_arm(), 2);
        let p = b.probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tries_every_arm_first() {
        let mut b = EpsilonGreedy::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            let arm = b.choose(&mut rng);
            seen.insert(arm);
            b.update(arm, 0.0);
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn is_slow_to_adapt_to_drift() {
        // The motivation for the adversarial formulation: after a long
        // stationary phase, ε-greedy's empirical means take a long time to
        // flip, unlike Exp3.1's epoch resets.
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = EpsilonGreedy::new(2, 0.05);
        for _ in 0..5_000 {
            let arm = b.choose(&mut rng);
            b.update(arm, if arm == 0 { 1.0 } else { 0.0 });
        }
        // Drift: arm 1 becomes the good arm.
        for _ in 0..500 {
            let arm = b.choose(&mut rng);
            b.update(arm, if arm == 1 { 1.0 } else { 0.0 });
        }
        assert_eq!(b.greedy_arm(), 0, "stale means keep the old arm greedy");
    }
}
