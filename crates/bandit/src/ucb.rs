//! UCB1 (Auer et al., 2002) — a stochastic-bandit ablation baseline.
//!
//! Like [ε-greedy](crate::epsilon), UCB1 assumes i.i.d. rewards per arm;
//! the ablation benches contrast it with Exp3.1 under the drifting rewards
//! web crawling produces (§IV-D).

use crate::policy::BanditPolicy;
use rand::Rng;

/// UCB1 over `K` arms.
///
/// # Examples
///
/// ```
/// use mak_bandit::ucb::Ucb1;
/// use mak_bandit::policy::BanditPolicy;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut bandit = Ucb1::new(2);
/// for _ in 0..200 {
///     let arm = bandit.choose(&mut rng);
///     bandit.update(arm, if arm == 1 { 0.8 } else { 0.2 });
/// }
/// assert_eq!(bandit.probabilities(), vec![0.0, 1.0]);
/// ```
#[derive(Debug, Clone)]
pub struct Ucb1 {
    counts: Vec<u64>,
    means: Vec<f64>,
    total: u64,
}

impl Ucb1 {
    /// Creates the learner.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "UCB1 needs at least one arm");
        Ucb1 { counts: vec![0; k], means: vec![0.0; k], total: 0 }
    }

    /// The upper confidence index of `arm`; infinite for untried arms.
    pub fn index(&self, arm: usize) -> f64 {
        if self.counts[arm] == 0 {
            return f64::INFINITY;
        }
        let bonus = (2.0 * (self.total.max(1) as f64).ln() / self.counts[arm] as f64).sqrt();
        self.means[arm] + bonus
    }
}

// Checkpoint serialization.
impl serde::Serialize for Ucb1 {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("counts".to_owned(), self.counts.to_value()),
            ("means".to_owned(), self.means.to_value()),
            ("total".to_owned(), serde::Value::UInt(self.total)),
        ])
    }
}

impl serde::Deserialize for Ucb1 {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(entries) = value else {
            return Err(serde::Error::custom("expected Ucb1 object"));
        };
        let counts: Vec<u64> = serde::__field(entries, "counts")?;
        let means: Vec<f64> = serde::__field(entries, "means")?;
        if counts.is_empty() || counts.len() != means.len() {
            return Err(serde::Error::custom("malformed Ucb1 checkpoint"));
        }
        Ok(Ucb1 { counts, means, total: serde::__field(entries, "total")? })
    }
}

impl BanditPolicy for Ucb1 {
    fn arms(&self) -> usize {
        self.counts.len()
    }

    fn choose<R: Rng + ?Sized>(&mut self, _rng: &mut R) -> usize {
        (0..self.counts.len())
            .max_by(|&a, &b| self.index(a).partial_cmp(&self.index(b)).expect("comparable"))
            .expect("non-empty")
    }

    fn update(&mut self, arm: usize, reward: f64) {
        assert!(arm < self.counts.len(), "arm {arm} out of range");
        self.counts[arm] += 1;
        self.total += 1;
        let n = self.counts[arm] as f64;
        self.means[arm] += (reward - self.means[arm]) / n;
    }

    fn probabilities(&self) -> Vec<f64> {
        // UCB1 is deterministic: all mass on the current argmax index.
        let best = (0..self.counts.len())
            .max_by(|&a, &b| self.index(a).partial_cmp(&self.index(b)).expect("comparable"))
            .expect("non-empty");
        let mut p = vec![0.0; self.counts.len()];
        p[best] = 1.0;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tries_all_arms_then_exploits() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = Ucb1::new(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..3 {
            let arm = b.choose(&mut rng);
            seen.insert(arm);
            b.update(arm, if arm == 1 { 1.0 } else { 0.0 });
        }
        assert_eq!(seen.len(), 3);
        for _ in 0..500 {
            let arm = b.choose(&mut rng);
            b.update(arm, if arm == 1 { 1.0 } else { 0.0 });
        }
        assert_eq!(b.probabilities(), vec![0.0, 1.0, 0.0]);
        assert!(b.counts[1] > 400);
    }

    #[test]
    fn index_is_infinite_for_untried() {
        let b = Ucb1::new(2);
        assert!(b.index(0).is_infinite());
    }

    #[test]
    fn keeps_exploring_occasionally() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut b = Ucb1::new(2);
        for _ in 0..10_000 {
            let arm = b.choose(&mut rng);
            b.update(arm, if arm == 0 { 0.6 } else { 0.5 });
        }
        assert!(b.counts[1] > 10, "log bonus forces continued exploration");
    }
}
