//! Tabular Q-learning, as used by the WebExplor and QExplore baselines.
//!
//! Both baselines learn `Q : S × A → ℝ` over *abstracted* page states and
//! per-state action sets (Table I of the paper):
//!
//! - **WebExplor** updates `Q` with the standard Bellman rule and selects
//!   actions via Gumbel-softmax over the current state's Q-values;
//! - **QExplore** "modifies the update to guide the crawler to states with
//!   more actions" and always picks the maximum-Q action.
//!
//! States and actions are identified by opaque `u64` keys, produced by the
//! crawlers' state-abstraction and element-signature functions.

use std::collections::HashMap;

/// A sparse tabular Q-function with optimistic initialization.
///
/// # Examples
///
/// ```
/// use mak_bandit::qlearning::QTable;
///
/// let mut q = QTable::new(0.5, 0.5, 1.0);
/// // Executing action 7 in state 1 earned reward 0.4 and led to state 2
/// // with actions {8, 9} available.
/// q.bellman_update(1, 7, 0.4, 2, &[8, 9]);
/// assert!(q.value(1, 7) < 1.0, "below the optimistic init after a mediocre reward");
/// assert_eq!(q.best_action(2, &[8, 9]), Some(0), "fresh actions tie at the init");
/// ```
#[derive(Debug, Clone)]
pub struct QTable {
    q: HashMap<(u64, u64), f64>,
    /// Learning rate α.
    alpha: f64,
    /// Discount factor γ.
    discount: f64,
    /// Value assumed for never-updated state/action pairs. Optimistic
    /// initialization (> 0) makes deterministic arg-max selection try every
    /// fresh action once, which both baselines rely on.
    initial: f64,
    states: std::collections::HashSet<u64>,
}

impl QTable {
    /// Creates a Q-table.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]` or `discount` outside `[0, 1)`.
    pub fn new(alpha: f64, discount: f64, initial: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!((0.0..1.0).contains(&discount), "discount must be in [0, 1)");
        QTable { q: HashMap::new(), alpha, discount, initial, states: Default::default() }
    }

    /// The current value of `(state, action)`.
    pub fn value(&self, state: u64, action: u64) -> f64 {
        self.q.get(&(state, action)).copied().unwrap_or(self.initial)
    }

    /// The maximum Q-value over `actions` in `state` (the Bellman target's
    /// `max_{a'} Q(s', a')`). Returns the optimistic initial value when the
    /// action set is empty.
    pub fn max_value(&self, state: u64, actions: &[u64]) -> f64 {
        actions
            .iter()
            .map(|a| self.value(state, *a))
            .fold(f64::NEG_INFINITY, f64::max)
            .max(if actions.is_empty() { self.initial } else { f64::NEG_INFINITY })
    }

    /// Standard Bellman update (WebExplor's `UPDATE_POLICY`):
    /// `Q(s,a) ← Q(s,a) + α (r + γ max_{a'} Q(s',a') − Q(s,a))`.
    pub fn bellman_update(
        &mut self,
        state: u64,
        action: u64,
        reward: f64,
        next_state: u64,
        next_actions: &[u64],
    ) {
        let target = reward + self.discount * self.max_value(next_state, next_actions);
        let q = self.value(state, action);
        self.q.insert((state, action), q + self.alpha * (target - q));
        self.states.insert(state);
        self.states.insert(next_state);
    }

    /// QExplore's modified update: the target gets an additional bonus
    /// proportional to the *number of actions* available in the successor
    /// state, steering the crawler towards action-rich pages:
    /// `Q(s,a) ← Q(s,a) + α (r + β·|A(s')| / (1 + |A(s')|) + γ max' − Q(s,a))`.
    pub fn qexplore_update(
        &mut self,
        state: u64,
        action: u64,
        reward: f64,
        next_state: u64,
        next_actions: &[u64],
        beta: f64,
    ) {
        let n = next_actions.len() as f64;
        let bonus = beta * n / (1.0 + n);
        let target = reward + bonus + self.discount * self.max_value(next_state, next_actions);
        let q = self.value(state, action);
        self.q.insert((state, action), q + self.alpha * (target - q));
        self.states.insert(state);
        self.states.insert(next_state);
    }

    /// The Q-values of `actions` in `state`, in order.
    pub fn values_for(&self, state: u64, actions: &[u64]) -> Vec<f64> {
        actions.iter().map(|a| self.value(state, *a)).collect()
    }

    /// Index of the maximum-Q action (QExplore's deterministic
    /// `CHOOSE_ACTION`); first index wins ties. `None` for an empty set.
    pub fn best_action(&self, state: u64, actions: &[u64]) -> Option<usize> {
        let values = self.values_for(state, actions);
        values
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.partial_cmp(b).unwrap().then(ib.cmp(ia)))
            .map(|(i, _)| i)
    }

    /// Number of distinct states ever touched by an update — the state-table
    /// size whose growth the paper's §III-A critique is about.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of stored `(state, action)` entries.
    pub fn entry_count(&self) -> usize {
        self.q.len()
    }
}

// Checkpoint serialization. The hash map and set are emitted in sorted key
// order so the bytes are a pure function of the table's content, never of
// insertion history or hasher state.
impl serde::Serialize for QTable {
    fn to_value(&self) -> serde::Value {
        let mut entries: Vec<((u64, u64), f64)> = self.q.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_unstable_by_key(|&(k, _)| k);
        let q: Vec<serde::Value> = entries
            .into_iter()
            .map(|((s, a), v)| {
                serde::Value::Array(vec![
                    serde::Value::UInt(s),
                    serde::Value::UInt(a),
                    serde::Value::Float(v),
                ])
            })
            .collect();
        let mut states: Vec<u64> = self.states.iter().copied().collect();
        states.sort_unstable();
        serde::Value::Object(vec![
            ("alpha".to_owned(), serde::Value::Float(self.alpha)),
            ("discount".to_owned(), serde::Value::Float(self.discount)),
            ("initial".to_owned(), serde::Value::Float(self.initial)),
            ("q".to_owned(), serde::Value::Array(q)),
            ("states".to_owned(), states.to_value()),
        ])
    }
}

impl serde::Deserialize for QTable {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(obj) = value else {
            return Err(serde::Error::custom("expected QTable object"));
        };
        let alpha: f64 = serde::__field(obj, "alpha")?;
        let discount: f64 = serde::__field(obj, "discount")?;
        if !(alpha > 0.0 && alpha <= 1.0 && (0.0..1.0).contains(&discount)) {
            return Err(serde::Error::custom("malformed QTable checkpoint"));
        }
        let triples: Vec<(u64, u64, f64)> = {
            let raw = obj
                .iter()
                .find(|(k, _)| k == "q")
                .map(|(_, v)| v)
                .ok_or_else(|| serde::Error::custom("missing field `q`"))?;
            let serde::Value::Array(items) = raw else {
                return Err(serde::Error::custom("expected array for `q`"));
            };
            items
                .iter()
                .map(|item| {
                    let serde::Value::Array(parts) = item else {
                        return Err(serde::Error::custom("expected [s, a, v] triple"));
                    };
                    if parts.len() != 3 {
                        return Err(serde::Error::custom("expected [s, a, v] triple"));
                    }
                    Ok((
                        u64::from_value(&parts[0])?,
                        u64::from_value(&parts[1])?,
                        f64::from_value(&parts[2])?,
                    ))
                })
                .collect::<Result<_, _>>()?
        };
        let states: Vec<u64> = serde::__field(obj, "states")?;
        Ok(QTable {
            q: triples.into_iter().map(|(s, a, v)| ((s, a), v)).collect(),
            alpha,
            discount,
            initial: serde::__field(obj, "initial")?,
            states: states.into_iter().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> QTable {
        QTable::new(0.5, 0.9, 1.0)
    }

    #[test]
    fn unseen_pairs_are_optimistic() {
        let t = table();
        assert_eq!(t.value(1, 2), 1.0);
    }

    #[test]
    fn bellman_moves_toward_target() {
        let mut t = table();
        // Terminal-ish next state with one action of value 1.0 (initial).
        t.bellman_update(1, 10, 0.0, 2, &[20]);
        // target = 0 + 0.9 * 1.0 = 0.9; q = 1 + 0.5*(0.9-1) = 0.95
        assert!((t.value(1, 10) - 0.95).abs() < 1e-12);
        t.bellman_update(1, 10, 1.0, 2, &[20]);
        // target = 1 + 0.9 = 1.9; q = 0.95 + 0.5*(1.9-0.95) = 1.425
        assert!((t.value(1, 10) - 1.425).abs() < 1e-12);
    }

    #[test]
    fn qexplore_bonus_prefers_action_rich_states() {
        let mut a = table();
        let mut b = table();
        let many: Vec<u64> = (0..20).collect();
        let few: Vec<u64> = (0..2).collect();
        a.qexplore_update(1, 10, 0.0, 2, &many, 1.0);
        b.qexplore_update(1, 10, 0.0, 2, &few, 1.0);
        assert!(a.value(1, 10) > b.value(1, 10), "successor with more actions yields higher Q");
    }

    #[test]
    fn best_action_is_argmax_with_first_tie_win() {
        let mut t = table();
        t.bellman_update(1, 10, 0.0, 9, &[]);
        // action 10 now below initial; 11 and 12 tie at the optimistic value.
        assert_eq!(t.best_action(1, &[10, 11, 12]), Some(1));
        assert_eq!(t.best_action(1, &[]), None);
    }

    #[test]
    fn max_value_of_empty_action_set_is_initial() {
        let t = table();
        assert_eq!(t.max_value(7, &[]), 1.0);
    }

    #[test]
    fn state_count_tracks_distinct_states() {
        let mut t = table();
        t.bellman_update(1, 10, 0.5, 2, &[1]);
        t.bellman_update(2, 11, 0.5, 1, &[1]);
        t.bellman_update(1, 12, 0.5, 3, &[1]);
        assert_eq!(t.state_count(), 3);
        assert_eq!(t.entry_count(), 3);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let _ = QTable::new(0.0, 0.5, 1.0);
    }

    #[test]
    #[should_panic(expected = "discount")]
    fn rejects_bad_discount() {
        let _ = QTable::new(0.5, 1.0, 1.0);
    }
}
