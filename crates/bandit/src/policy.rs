//! The common interface of stateless bandit policies.

use rand::Rng;

/// A multi-armed-bandit policy over a fixed number of arms.
///
/// This is the paper's stateless policy `π : A → [0, 1]` (§II-A.2): the
/// learner owns a probability distribution over arms, samples from it, and
/// folds observed rewards back into the distribution.
pub trait BanditPolicy {
    /// Number of arms `K`.
    fn arms(&self) -> usize;

    /// Samples the next arm according to the current policy.
    fn choose<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize;

    /// Feeds back the reward observed for `arm`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `arm >= self.arms()`.
    fn update(&mut self, arm: usize, reward: f64);

    /// The current selection probability of each arm; sums to 1.
    fn probabilities(&self) -> Vec<f64>;
}

/// Samples an index from a discrete distribution.
///
/// `probs` must be non-negative; it is renormalized defensively so callers
/// can pass slightly-off-by-rounding vectors.
///
/// # Panics
///
/// Panics if `probs` is empty or sums to zero.
pub fn sample_discrete<R: Rng + ?Sized>(rng: &mut R, probs: &[f64]) -> usize {
    assert!(!probs.is_empty(), "cannot sample from an empty distribution");
    let total: f64 = probs.iter().sum();
    assert!(total > 0.0, "distribution must have positive mass");
    let mut x = rng.gen::<f64>() * total;
    for (i, p) in probs.iter().enumerate() {
        x -= p;
        if x <= 0.0 {
            return i;
        }
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sample_discrete_respects_mass() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let probs = [0.0, 1.0, 0.0];
        for _ in 0..50 {
            assert_eq!(sample_discrete(&mut rng, &probs), 1);
        }
    }

    #[test]
    fn sample_discrete_is_roughly_proportional() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let probs = [0.25, 0.75];
        let n = 10_000;
        let ones = (0..n).filter(|_| sample_discrete(&mut rng, &probs) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((0.72..0.78).contains(&frac), "got {frac}");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn sample_discrete_panics_on_empty() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        sample_discrete(&mut rng, &[]);
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn sample_discrete_panics_on_zero_mass() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        sample_discrete(&mut rng, &[0.0, 0.0]);
    }
}
