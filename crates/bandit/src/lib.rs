//! # mak-bandit — policy-learning algorithms for the MAK reproduction
//!
//! This crate implements, from scratch, every learning algorithm the paper
//! and its baselines rely on:
//!
//! - [`exp31`] — the **Exp3.1** algorithm of Auer et al. (Algorithm 1 of the
//!   paper), the adversarial multi-armed-bandit solver driving MAK;
//! - [`exp3`] — plain Exp3 with a fixed exploration rate, used in ablations;
//! - [`qlearning`] — tabular Q-learning with the standard Bellman update
//!   (WebExplor) and the "more-actions bonus" variant (QExplore);
//! - [`gumbel`] — Gumbel-softmax action sampling (WebExplor's
//!   `CHOOSE_ACTION`);
//! - [`epsilon`] / [`ucb`] / [`thompson`] — ε-greedy, UCB1 and Thompson
//!   sampling, the stochastic-bandit baselines for design-choice ablations;
//! - [`normalize`] — Welford running mean/std, the standardized-increment
//!   reward transform, and the logistic squash to `[0, 1]` (§IV-C/D).
//!
//! ## Quick start: Exp3.1 over three arms
//!
//! ```
//! use mak_bandit::exp31::Exp31;
//! use mak_bandit::policy::BanditPolicy;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut bandit = Exp31::new(3);
//! for _ in 0..100 {
//!     let arm = bandit.choose(&mut rng);
//!     let reward = if arm == 1 { 1.0 } else { 0.0 }; // arm 1 is best
//!     bandit.update(arm, reward);
//! }
//! let probs = bandit.probabilities();
//! assert!(probs[1] > probs[0] && probs[1] > probs[2]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod epsilon;
pub mod exp3;
pub mod exp31;
pub mod gumbel;
pub mod normalize;
pub mod policy;
pub mod qlearning;
pub mod thompson;
pub mod ucb;
