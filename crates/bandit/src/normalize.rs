//! Reward normalization: running statistics, standardization, logistic.
//!
//! §IV-C defines MAK's reward as the *standardized* increment in link
//! coverage, `r̂_t = (r_t − r̄_t)/σ_t`, where `r̄_t` and `σ_t` are the mean
//! and standard deviation of all increments observed up to time `t`. §IV-D
//! then squashes `r̂_t ∈ (−∞, ∞)` into Exp3.1's required `[0, 1]` with the
//! logistic function `1/(1 + e^{−x})`, as in SyzVegas.

/// Numerically stable running mean/variance (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes a value.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sample standard deviation (n − 1 denominator; 0 with fewer than two
    /// observations). Used for the error bands of Fig. 2.
    pub fn sample_std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }
}

// Checkpoint serialization. Welford state is three finite f64/u64 scalars,
// all of which round-trip bit-exactly through the JSON layer.
impl serde::Serialize for RunningStats {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("n".to_owned(), serde::Value::UInt(self.n)),
            ("mean".to_owned(), serde::Value::Float(self.mean)),
            ("m2".to_owned(), serde::Value::Float(self.m2)),
        ])
    }
}

impl serde::Deserialize for RunningStats {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(entries) = value else {
            return Err(serde::Error::custom("expected RunningStats object"));
        };
        Ok(RunningStats {
            n: serde::__field(entries, "n")?,
            mean: serde::__field(entries, "mean")?,
            m2: serde::__field(entries, "m2")?,
        })
    }
}

/// The logistic squash `1/(1 + e^{−x})` (§IV-D).
pub fn logistic(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// MAK's reward transform: standardize each raw increment against the
/// history of increments, then squash to `[0, 1]`.
///
/// The current increment is included in the history *before*
/// standardizing — "the mean and standard deviation of all the observed
/// increments up to t" (§IV-C). While the standard deviation is zero (first
/// observations, or a constant stream) the standardized value is defined as
/// 0, i.e. a neutral reward of 0.5 after the squash.
///
/// # Examples
///
/// ```
/// use mak_bandit::normalize::StandardizedReward;
///
/// let mut sr = StandardizedReward::new();
/// let first = sr.transform(10.0);
/// assert!((first - 0.5).abs() < 1e-12, "no history yet: neutral");
/// let spike = sr.transform(50.0);
/// assert!(spike > 0.5, "above-average increment rewards > 0.5");
/// let drought = sr.transform(0.0);
/// assert!(drought < 0.5, "below-average increment rewards < 0.5");
/// ```
#[derive(Debug, Clone, Default)]
pub struct StandardizedReward {
    stats: RunningStats,
}

impl StandardizedReward {
    /// Creates the transform with empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes the raw increment `r_t` and returns the squashed
    /// standardized reward in `[0, 1]`.
    pub fn transform(&mut self, increment: f64) -> f64 {
        self.stats.push(increment);
        let sigma = self.stats.std_dev();
        let standardized = if sigma > 0.0 { (increment - self.stats.mean()) / sigma } else { 0.0 };
        logistic(standardized)
    }

    /// The underlying history statistics.
    pub fn stats(&self) -> &RunningStats {
        &self.stats
    }
}

// Checkpoint serialization: the transform is just its history statistics.
impl serde::Serialize for StandardizedReward {
    fn to_value(&self) -> serde::Value {
        self.stats.to_value()
    }
}

impl serde::Deserialize for StandardizedReward {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(StandardizedReward { stats: RunningStats::from_value(value)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut s = RunningStats::new();
        for x in data {
            s.push(x);
        }
        let mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
        let var: f64 = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / data.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.sample_std_dev(), 0.0);
    }

    #[test]
    fn sample_std_exceeds_population_std() {
        let mut s = RunningStats::new();
        for x in [1.0, 2.0, 3.0] {
            s.push(x);
        }
        assert!(s.sample_std_dev() > s.std_dev());
    }

    #[test]
    fn logistic_properties() {
        assert!((logistic(0.0) - 0.5).abs() < 1e-12);
        assert!(logistic(10.0) > 0.999);
        assert!(logistic(-10.0) < 0.001);
        assert!(logistic(f64::INFINITY) <= 1.0);
        assert!(logistic(f64::NEG_INFINITY) >= 0.0);
    }

    #[test]
    fn constant_stream_is_neutral() {
        let mut sr = StandardizedReward::new();
        for _ in 0..10 {
            assert!((sr.transform(5.0) - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn stagnation_then_small_gain_rewards_well() {
        // §IV-C: "we would not penalize a small increment if the link
        // coverage has stagnated over many steps".
        let mut sr = StandardizedReward::new();
        for _ in 0..50 {
            sr.transform(0.0);
        }
        let after_stagnation = sr.transform(2.0);
        assert!(after_stagnation > 0.9, "got {after_stagnation}");
    }

    #[test]
    fn small_gain_after_boom_is_penalized() {
        // §IV-C: "we would penalize a small increment in link coverage if it
        // follows a significant increase over a short period".
        let mut sr = StandardizedReward::new();
        for _ in 0..20 {
            sr.transform(30.0);
        }
        let small = sr.transform(1.0);
        assert!(small < 0.1, "got {small}");
    }

    #[test]
    fn transform_output_always_in_unit_interval() {
        let mut sr = StandardizedReward::new();
        for i in 0..1_000 {
            let r = sr.transform(((i * 7919) % 97) as f64 - 48.0);
            assert!((0.0..=1.0).contains(&r));
        }
    }
}
