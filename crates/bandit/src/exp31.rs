//! The Exp3.1 algorithm (Auer, Cesa-Bianchi, Freund, Schapire, 2002) —
//! Algorithm 1 of the paper, implemented literally.
//!
//! Exp3.1 runs Exp3 in *epochs*: epoch `m` assumes a bound
//! `g_m = (K ln K)/(e − 1) · 4^m` on the best arm's total estimated gain and
//! derives the exploration rate `γ_m = min(1, √(K ln K / ((e − 1) g_m)))`.
//! When the maximum estimated gain `Ĝ_i` exceeds `g_m − K/γ_m`, the epoch
//! ends: arm weights reset to 1 and the learning rate shrinks. The paper
//! picks Exp3.1 precisely for this periodic reset, which lets the crawler
//! re-adapt when the reward distributions drift between application regions
//! (§IV-D).

use crate::policy::{sample_discrete, BanditPolicy};
use mak_obs::event::Event;
use mak_obs::sink::SinkHandle;
use mak_obs::span::Phase;
use rand::Rng;

/// Exp3.1 over `K` arms. Rewards must lie in `[0, 1]`.
///
/// See the [crate docs](crate) for a usage example.
#[derive(Debug, Clone)]
pub struct Exp31 {
    k: usize,
    /// Estimated cumulated gains `Ĝ_i` (importance-weighted).
    g_hat: Vec<f64>,
    /// Current epoch's arm weights `w_i`.
    weights: Vec<f64>,
    /// Current epoch index `m`.
    epoch: u32,
    /// Total updates processed (the algorithm's `t`).
    t: u64,
    /// Test-only fault injection: when set, epoch advances are skipped so
    /// invariant oracles can prove they catch the resulting drift. Always
    /// `false` outside `testing_disable_epoch_advance`.
    skip_epoch_advance: bool,
    /// Observability: receives `PolicyUpdated` / `EpochAdvanced` events.
    /// Inert by default; never influences the learner's state.
    sink: SinkHandle,
}

impl Exp31 {
    /// Creates the learner for `k` arms.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`. `k == 1` is allowed and degenerates to always
    /// choosing the single arm.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "Exp3.1 needs at least one arm");
        Exp31 {
            k,
            g_hat: vec![0.0; k],
            weights: vec![1.0; k],
            epoch: 0,
            t: 0,
            skip_epoch_advance: false,
            sink: SinkHandle::none(),
        }
    }

    /// Attaches an event sink; the learner emits [`Event::PolicyUpdated`]
    /// after every completed update and [`Event::EpochAdvanced`] on each
    /// epoch reset.
    pub fn attach_sink(&mut self, sink: SinkHandle) {
        self.sink = sink;
    }

    /// `K ln K / (e − 1)`, the scale of the epoch gain bounds.
    fn base_gain(&self) -> f64 {
        let k = self.k as f64;
        k * k.ln() / (std::f64::consts::E - 1.0)
    }

    /// `g_m` for the current epoch (line 6 of Algorithm 1).
    pub fn epoch_gain_bound(&self) -> f64 {
        self.base_gain() * 4f64.powi(self.epoch as i32)
    }

    /// `γ_m` for the current epoch (line 7 of Algorithm 1).
    pub fn gamma(&self) -> f64 {
        let g_m = self.epoch_gain_bound();
        if g_m <= 0.0 {
            // K == 1: ln K == 0. Degenerate, fully exploratory.
            return 1.0;
        }
        (self.base_gain() / g_m).sqrt().min(1.0)
    }

    /// The current epoch index `m`.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Number of updates processed so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// The current epoch's arm weights `w_i` (invariant-oracle
    /// introspection: all must stay finite and positive).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The estimated cumulated gains `Ĝ_i` (invariant-oracle
    /// introspection).
    pub fn gains(&self) -> &[f64] {
        &self.g_hat
    }

    /// The epoch-termination threshold `g_m − K/γ_m` of line 9: after every
    /// completed update, `max_i Ĝ_i` must not exceed it — the mechanical
    /// invariant that fails when epoch advancement is broken.
    pub fn epoch_termination_bound(&self) -> f64 {
        self.epoch_gain_bound() - self.k as f64 / self.gamma()
    }

    /// Fault injection for the testkit self-test: disables epoch advances
    /// (the known bug the invariant oracle must catch). Never used outside
    /// tests; release crawl paths construct learners only via [`Exp31::new`].
    #[doc(hidden)]
    pub fn testing_disable_epoch_advance(&mut self) {
        self.skip_epoch_advance = true;
    }

    /// Advances epochs while the termination condition of line 9 fails,
    /// i.e. while `max_i Ĝ_i > g_m − K/γ_m`, resetting weights (line 8).
    fn advance_epochs(&mut self) {
        if self.skip_epoch_advance {
            return;
        }
        let max_gain = self.g_hat.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        while max_gain > self.epoch_gain_bound() - self.k as f64 / self.gamma() {
            self.epoch += 1;
            self.weights = vec![1.0; self.k];
            self.sink.emit_with(|| Event::EpochAdvanced { epoch: self.epoch, gamma: self.gamma() });
        }
    }

    /// Rescales weights when they grow large. Weights only ever grow
    /// within an epoch (the update multiplier is ≥ 1), so unbounded runs
    /// would eventually overflow `f64`; dividing every weight by the
    /// maximum preserves the policy exactly.
    fn renormalize(&mut self) {
        let max = self.weights.iter().cloned().fold(0.0, f64::max);
        if max > 1e100 {
            for w in &mut self.weights {
                *w /= max;
            }
        }
    }

    /// The policy `π` of line 10: the γ-smoothed weight distribution.
    fn policy(&self) -> Vec<f64> {
        let gamma = self.gamma();
        let total: f64 = self.weights.iter().sum();
        self.weights.iter().map(|w| (1.0 - gamma) * w / total + gamma / self.k as f64).collect()
    }
}

// Checkpoint serialization: the learner's whole trajectory — gains, weights,
// epoch, step count — round-trips exactly (finite f64s survive the JSON
// writer bit-for-bit). The sink is observational and restored inert; callers
// re-attach one after deserialization.
impl serde::Serialize for Exp31 {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("k".to_owned(), serde::Value::UInt(self.k as u64)),
            ("g_hat".to_owned(), self.g_hat.to_value()),
            ("weights".to_owned(), self.weights.to_value()),
            ("epoch".to_owned(), serde::Value::UInt(u64::from(self.epoch))),
            ("t".to_owned(), serde::Value::UInt(self.t)),
            ("skip_epoch_advance".to_owned(), serde::Value::Bool(self.skip_epoch_advance)),
        ])
    }
}

impl serde::Deserialize for Exp31 {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(entries) = value else {
            return Err(serde::Error::custom("expected Exp31 object"));
        };
        let k: usize = serde::__field(entries, "k")?;
        if k == 0 {
            return Err(serde::Error::custom("Exp3.1 checkpoint with zero arms"));
        }
        let g_hat: Vec<f64> = serde::__field(entries, "g_hat")?;
        let weights: Vec<f64> = serde::__field(entries, "weights")?;
        if g_hat.len() != k || weights.len() != k {
            return Err(serde::Error::custom("Exp3.1 checkpoint arm-count mismatch"));
        }
        Ok(Exp31 {
            k,
            g_hat,
            weights,
            epoch: serde::__field(entries, "epoch")?,
            t: serde::__field(entries, "t")?,
            skip_epoch_advance: serde::__field(entries, "skip_epoch_advance")?,
            sink: SinkHandle::none(),
        })
    }
}

impl BanditPolicy for Exp31 {
    fn arms(&self) -> usize {
        self.k
    }

    fn choose<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        // The draw is instantaneous in virtual time (the clock charge is
        // the engine's policy-overhead line); when profiling, mark it at
        // the latched clock so the Perfetto timeline shows each draw.
        self.sink.span_instant(Phase::BanditChoose);
        self.advance_epochs();
        if self.k == 1 {
            return 0;
        }
        sample_discrete(rng, &self.policy())
    }

    /// Lines 12–16 of Algorithm 1: importance-weighted reward estimate,
    /// exponential weight update, gain accumulation.
    ///
    /// # Panics
    ///
    /// Panics if `arm >= K`. Rewards are clamped to `[0, 1]` (the paper
    /// guarantees this range by construction via the logistic squash).
    fn update(&mut self, arm: usize, reward: f64) {
        self.sink.span_instant(Phase::RewardUpdate);
        assert!(arm < self.k, "arm {arm} out of range (K = {})", self.k);
        let reward = reward.clamp(0.0, 1.0);
        let gamma = self.gamma();
        let pi = self.policy();
        let r_hat = reward / pi[arm];
        self.weights[arm] *= (gamma * r_hat / self.k as f64).exp();
        self.renormalize();
        self.g_hat[arm] += r_hat;
        self.t += 1;
        // Advance epochs *after* bumping `g_hat` (line 9's check runs at the
        // end of each round), so observers and the next `choose` agree on
        // the post-reset distribution. Advancing lazily in `choose` instead
        // left `probabilities()` reporting the stale pre-reset policy
        // between an epoch-crossing update and the next draw.
        self.advance_epochs();
        self.sink.emit_with(|| {
            let max_gain = self.g_hat.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let (mut min_w, mut max_w) = (f64::INFINITY, f64::NEG_INFINITY);
            for w in &self.weights {
                min_w = min_w.min(*w);
                max_w = max_w.max(*w);
            }
            Event::PolicyUpdated {
                probs: self.policy(),
                gamma: self.gamma(),
                epoch: self.epoch,
                updates: self.t,
                max_gain,
                bound: self.epoch_termination_bound(),
                min_weight: min_w,
                max_weight: max_w,
            }
        });
    }

    fn probabilities(&self) -> Vec<f64> {
        if self.k == 1 {
            return vec![1.0];
        }
        self.policy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn starts_uniform() {
        let b = Exp31::new(3);
        let p = b.probabilities();
        for pi in &p {
            assert!((pi - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn probabilities_sum_to_one_throughout() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut b = Exp31::new(4);
        for step in 0..500 {
            let arm = b.choose(&mut rng);
            b.update(arm, if arm == 2 { 0.9 } else { 0.1 });
            let sum: f64 = b.probabilities().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "step {step}: sum {sum}");
        }
    }

    #[test]
    fn converges_to_best_arm() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut b = Exp31::new(3);
        let mut late_best_plays = 0;
        for t in 0..2_000 {
            let arm = b.choose(&mut rng);
            if t >= 1_000 && arm == 0 {
                late_best_plays += 1;
            }
            b.update(arm, if arm == 0 { 1.0 } else { 0.0 });
        }
        // Epoch resets periodically re-flatten the distribution, so dominance
        // is asserted on realized late-round play counts (robust to where the
        // last reset falls) rather than the instantaneous distribution.
        assert!(
            late_best_plays > 600,
            "best arm should dominate late play: {late_best_plays}/1000"
        );
        let p = b.probabilities();
        assert!(p[0] >= p[1] && p[0] >= p[2], "best arm keeps the largest mass: {p:?}");
    }

    #[test]
    fn epochs_advance_and_reset_weights() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut b = Exp31::new(3);
        // Epoch 0's bound is negative for K = 3, so the learner starts in a
        // later epoch already after the first advance.
        let before = b.epoch();
        b.choose(&mut rng);
        assert!(b.epoch() >= before);
        let e1 = b.epoch();
        for _ in 0..5_000 {
            let arm = b.choose(&mut rng);
            b.update(arm, 1.0);
        }
        assert!(b.epoch() > e1, "constant max rewards must trigger epoch resets");
    }

    #[test]
    fn probabilities_match_next_choose_distribution() {
        // Regression: `g_hat` used to be bumped *after* the epoch check, so
        // an epoch-crossing update left `probabilities()` reporting the
        // pre-reset distribution while the next `choose` played the
        // post-reset one.
        let mut rng = StdRng::seed_from_u64(13);
        let mut b = Exp31::new(3);
        for step in 0..5_000 {
            let arm = b.choose(&mut rng);
            b.update(arm, 1.0);
            let reported = b.probabilities();
            let mut next = b.clone();
            next.advance_epochs(); // exactly what the next `choose` does before sampling
            assert_eq!(reported, next.policy(), "step {step}: observer and sampler disagree");
        }
        assert!(b.epoch() > 1, "constant max rewards must cross epochs for this to bite");
    }

    #[test]
    fn adapts_when_best_arm_changes() {
        // The adversarial setting of §IV-D: the reward distribution drifts.
        let mut rng = StdRng::seed_from_u64(7);
        let mut b = Exp31::new(3);
        for _ in 0..3_000 {
            let arm = b.choose(&mut rng);
            b.update(arm, if arm == 0 { 0.9 } else { 0.05 });
        }
        assert!(b.probabilities()[0] > 0.5);
        for _ in 0..6_000 {
            let arm = b.choose(&mut rng);
            b.update(arm, if arm == 2 { 0.9 } else { 0.05 });
        }
        let p = b.probabilities();
        assert!(p[2] > p[0], "policy must shift to the new best arm: {p:?}");
    }

    #[test]
    fn gamma_shrinks_with_epochs() {
        let mut b = Exp31::new(3);
        b.epoch = 1;
        let g1 = b.gamma();
        b.epoch = 3;
        let g3 = b.gamma();
        assert!(g3 < g1);
        assert!(g1 <= 1.0 && g3 > 0.0);
    }

    #[test]
    fn rewards_are_clamped() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut b = Exp31::new(2);
        for _ in 0..100 {
            let arm = b.choose(&mut rng);
            b.update(arm, 42.0); // out of range: clamped to 1.0
        }
        for w in &b.weights {
            assert!(w.is_finite());
        }
    }

    #[test]
    fn single_arm_is_degenerate_but_total() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut b = Exp31::new(1);
        for _ in 0..10 {
            assert_eq!(b.choose(&mut rng), 0);
            b.update(0, 0.5);
        }
        assert_eq!(b.probabilities(), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn zero_arms_panics() {
        let _ = Exp31::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_checks_arm_bounds() {
        let mut b = Exp31::new(2);
        b.update(5, 0.5);
    }

    #[test]
    fn weights_renormalize_instead_of_overflowing() {
        // Regression: tens of millions of constant-reward updates within
        // late epochs used to push weights to infinity (NaN policy). Seed
        // the near-overflow state directly and update through it.
        let mut rng = StdRng::seed_from_u64(12);
        let mut b = Exp31::new(3);
        b.weights = vec![1e300, 1.0, 1.0];
        for _ in 0..50 {
            let arm = b.choose(&mut rng);
            b.update(arm, 1.0);
            let p = b.probabilities();
            assert!(p.iter().all(|x| x.is_finite()), "{p:?}");
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        assert!(b.weights.iter().all(|w| w.is_finite() && *w > 0.0));
        assert!(b.weights.iter().cloned().fold(0.0, f64::max) <= 1e100 * std::f64::consts::E);
    }

    #[test]
    fn weights_stay_finite_under_adversarial_rewards() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut b = Exp31::new(3);
        for t in 0..20_000u32 {
            let arm = b.choose(&mut rng);
            // Adversary flips the good arm every 100 steps.
            let good = ((t / 100) % 3) as usize;
            b.update(arm, if arm == good { 1.0 } else { 0.0 });
        }
        for w in &b.weights {
            assert!(w.is_finite() && *w > 0.0);
        }
    }
}
