//! Fault-injection resilience across all crawler implementations: every
//! crawler must finish its full budget under a flaky web, chaos runs must
//! stay bit-deterministic, and a zero-fault plan must be indistinguishable
//! from no fault layer at all.

use mak::framework::engine::{run_crawl, EngineConfig};
use mak::spec::{build_crawler, CRAWLER_NAMES};
use mak_browser::fault::{FaultPlan, FaultStats};
use mak_websim::apps;

fn faulty_config(minutes: f64, plan: FaultPlan) -> EngineConfig {
    let mut cfg = EngineConfig::with_budget_minutes(minutes);
    cfg.faults = plan;
    cfg
}

/// Every crawler finishes its full virtual budget under the heavy fault
/// profile (20% of requests fail at least once): no crawl aborts early, no
/// crawler wedges, and everyone still covers code.
#[test]
fn every_crawler_survives_heavy_faults() {
    let budget_minutes = 3.0;
    let cfg = faulty_config(budget_minutes, FaultPlan::profile("heavy").unwrap());
    for name in CRAWLER_NAMES {
        let mut c = build_crawler(name, 11).unwrap();
        let report = run_crawl(&mut *c, apps::build("phpbb2").unwrap(), &cfg, 11);
        assert!(
            report.elapsed_secs >= 0.9 * budget_minutes * 60.0,
            "{name} aborted early: {}s of {}s",
            report.elapsed_secs,
            budget_minutes * 60.0
        );
        assert!(report.faults.injected > 0, "{name} saw faults");
        assert!(report.faults.recoveries > 0, "{name} recovered from retries");
        assert!(report.final_lines_covered > 0, "{name} still covered code");
    }
}

/// Chaos runs are a pure function of `(app, crawler, seed, config)` like
/// everything else: the same faulty config twice yields field-for-field
/// identical reports, traces included.
#[test]
fn chaos_runs_are_deterministic() {
    let mut cfg = faulty_config(2.0, FaultPlan::profile("moderate").unwrap());
    cfg.record_trace = true;
    for name in CRAWLER_NAMES {
        let mut a = build_crawler(name, 12).unwrap();
        let ra = run_crawl(&mut *a, apps::build("addressbook").unwrap(), &cfg, 12);
        let mut b = build_crawler(name, 12).unwrap();
        let rb = run_crawl(&mut *b, apps::build("addressbook").unwrap(), &cfg, 12);
        assert_eq!(ra, rb, "{name} chaos rerun diverged");
        assert!(ra.faults.injected > 0, "{name} fixture actually faulted");
    }
}

/// The fault seed is part of the schedule: changing only `fault_seed`
/// produces a different run, while the crawl remains internally valid.
#[test]
fn fault_seed_reshuffles_the_schedule() {
    let base = faulty_config(2.0, FaultPlan::profile("moderate").unwrap());
    let mut reseeded = base.clone();
    reseeded.faults.fault_seed = 0xDEAD_BEEF;
    let mut a = build_crawler("mak", 13).unwrap();
    let ra = run_crawl(&mut *a, apps::build("phpbb2").unwrap(), &base, 13);
    let mut b = build_crawler("mak", 13).unwrap();
    let rb = run_crawl(&mut *b, apps::build("phpbb2").unwrap(), &reseeded, 13);
    assert_ne!(
        (ra.interactions, ra.final_lines_covered, ra.faults.injected),
        (rb.interactions, rb.final_lines_covered, rb.faults.injected),
        "a different fault seed is a different flaky web"
    );
}

/// With the default (empty) plan the fault layer is inert: the report
/// carries all-zero fault stats and — because the browser takes the
/// fault-free fast path — the run equals the pre-fault-layer behavior
/// byte-for-byte (the golden-report snapshots enforce the same property
/// against committed artifacts).
#[test]
fn zero_fault_plan_reports_zero_stats() {
    let cfg = EngineConfig::with_budget_minutes(2.0);
    let mut c = build_crawler("mak", 14).unwrap();
    let report = run_crawl(&mut *c, apps::build("addressbook").unwrap(), &cfg, 14);
    assert_eq!(report.faults, FaultStats::default());
}

/// Forced session expiry mid-crawl: the browser drops its cookie, the app
/// mints a fresh session on the next request, and coverage keeps growing —
/// the crawler re-authenticates through the ordinary login forms.
#[test]
fn session_expiry_does_not_stall_authenticated_crawls() {
    let mut plan = FaultPlan::none();
    plan.session_expiry = 0.05;
    let cfg = faulty_config(5.0, plan);
    for app in ["phpbb2", "hotcrp"] {
        let mut c = build_crawler("mak", 15).unwrap();
        let report = run_crawl(&mut *c, apps::build(app).unwrap(), &cfg, 15);
        assert!(report.faults.session_expiries > 0, "{app}: sessions expired");
        assert_eq!(report.faults.injected, report.faults.session_expiries, "{app}: only expiry");

        let mut clean = build_crawler("mak", 15).unwrap();
        let clean_report = run_crawl(
            &mut *clean,
            apps::build(app).unwrap(),
            &EngineConfig::with_budget_minutes(5.0),
            15,
        );
        let ratio = report.final_lines_covered as f64 / clean_report.final_lines_covered as f64;
        assert!(ratio > 0.6, "{app}: expiry costs some coverage but not the crawl: {ratio}");
    }
}

/// Stale elements surface as failed (uncounted) interactions: the element
/// is retried later, the arm takes a zero reward, and the crawl goes on.
#[test]
fn stale_elements_degrade_gracefully() {
    let mut plan = FaultPlan::none();
    plan.stale_element = 0.15;
    let cfg = faulty_config(3.0, plan);
    let mut c = build_crawler("mak", 16).unwrap();
    let report = run_crawl(&mut *c, apps::build("oscommerce2").unwrap(), &cfg, 16);
    assert!(report.faults.stale_elements > 0);
    assert_eq!(report.faults.retries, 0, "stale elements fail fast, no retry loop");
    assert!(report.final_lines_covered > 1_000, "the crawl still covers the app");
}
