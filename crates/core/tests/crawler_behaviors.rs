//! Behavioral integration tests across all crawler implementations:
//! restart handling, error-page survival, trap resistance, and the
//! level-discipline of the shared pool.

use mak::framework::crawler::Crawler;
use mak::framework::engine::{run_crawl, EngineConfig};
use mak::mak::MakCrawler;
use mak::spec::{build_crawler, CRAWLER_NAMES};
use mak_browser::client::Browser;
use mak_browser::clock::VirtualClock;
use mak_websim::apps;
use mak_websim::server::AppHost;

fn browser(app: &str, minutes: f64, seed: u64) -> Browser {
    let host = AppHost::new(apps::build(app).unwrap());
    Browser::new(host, VirtualClock::with_budget_minutes(minutes), seed)
}

/// Every crawler keeps making progress on an app that serves transient 500
/// errors (Drupal's `flaky_every` deployment) — nobody wedges on an error
/// page.
#[test]
fn crawlers_survive_transient_server_errors() {
    for name in CRAWLER_NAMES {
        let mut c = build_crawler(name, 2).unwrap();
        let report = run_crawl(
            &mut *c,
            apps::build("drupal").unwrap(),
            &EngineConfig::with_budget_minutes(3.0),
            2,
        );
        assert!(report.interactions > 30, "{name} kept crawling through 500s");
        assert!(report.final_lines_covered > 1_000, "{name} covered code");
    }
}

/// The Drupal mutating trap never captures a crawler: the trap page can be
/// interacted with at most `max_links + 1` times profitably, and everyone
/// keeps exploring past it.
#[test]
fn mutating_trap_does_not_capture_crawlers() {
    for name in ["mak", "webexplor", "qexplore", "dfs"] {
        let mut c = build_crawler(name, 3).unwrap();
        let report = run_crawl(
            &mut *c,
            apps::build("drupal").unwrap(),
            &EngineConfig::with_budget_minutes(5.0),
            3,
        );
        // A captured crawler would sit on /shortcuts and discover almost
        // nothing; a healthy one gathers hundreds of URLs in 5 minutes.
        assert!(report.distinct_urls > 100, "{name}: {} URLs", report.distinct_urls);
    }
}

/// Login-gated areas (HotCRP's PC area) are reached by every crawler: the
/// standard form fill carries the demo credentials.
#[test]
fn auth_areas_are_eventually_entered() {
    let reference = apps::build("hotcrp").unwrap();
    let model = reference.code_model();
    let pc_file = model.find_file("modules/pc.php").expect("pc module exists");
    let declared = model.file_lines(pc_file).unwrap();
    let mut c = MakCrawler::new(4);
    let report = run_crawl(
        &mut c,
        apps::build("hotcrp").unwrap(),
        &EngineConfig::with_budget_minutes(30.0),
        4,
    );
    let pc_lines =
        report.covered_lines.iter().filter(|(f, _)| *f == pc_file.index()).count() as u32;
    assert!(
        pc_lines > declared / 3,
        "login should open most of the gated area: {pc_lines}/{declared}"
    );
}

/// MAK's pool discipline: the lowest level is always drained before any
/// higher level is touched (the §IV-B curiosity-in-action-space invariant),
/// observable as monotone level growth on a small app.
#[test]
fn level_zero_drains_before_reinteraction() {
    let mut b = browser("addressbook", 30.0, 5);
    let mut c = MakCrawler::new(5);
    let mut saw_level1_popped = false;
    for _ in 0..400 {
        let level0_before = c.deque().level_len(0);
        if c.step(&mut b).is_err() {
            break;
        }
        if level0_before == 0 && c.deque().level_count() >= 2 {
            saw_level1_popped = true;
        } else if saw_level1_popped {
            // Once level 0 drained, new discoveries may refill it — but a
            // non-empty level 0 must again be consumed first. The deque's
            // pop-from-lowest property guarantees this by construction;
            // here we just confirm the crawl exercises both phases.
        }
    }
    assert!(saw_level1_popped, "the crawl should exhaust level 0 and recycle");
}

/// Node.js-style apps (final coverage) still produce full reports from all
/// crawlers, just without the live series.
#[test]
fn final_mode_apps_work_for_every_crawler() {
    for name in CRAWLER_NAMES {
        let mut c = build_crawler(name, 6).unwrap();
        let report = run_crawl(
            &mut *c,
            apps::build("actual").unwrap(),
            &EngineConfig::with_budget_minutes(2.0),
            6,
        );
        assert!(report.coverage_series.is_empty(), "{name}");
        assert!(report.final_lines_covered > 0, "{name}");
        assert_eq!(report.covered_lines.len() as u64, report.final_lines_covered, "{name}");
    }
}

/// The ensemble and all registered variants run end-to-end on a mid-size
/// app without panicking and with sane outputs.
#[test]
fn variants_and_ensembles_run_end_to_end() {
    let mut names: Vec<String> = mak::spec::MAK_VARIANTS.iter().map(|s| (*s).to_owned()).collect();
    names.push("mak-ensemble3".to_owned());
    for name in names {
        let mut c = build_crawler(&name, 7).unwrap_or_else(|| panic!("build {name}"));
        let report = run_crawl(
            &mut *c,
            apps::build("vanilla").unwrap(),
            &EngineConfig::with_budget_minutes(2.0),
            7,
        );
        assert!(report.final_lines_covered > 500, "{name}: {}", report.final_lines_covered);
        assert!(report.interactions > 10, "{name}");
    }
}
