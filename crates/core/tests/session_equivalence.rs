//! The differential suite behind the session refactor: driving a
//! [`Session`] one step at a time must be *byte-identical* to the legacy
//! one-shot `run_crawl` — the serialized `CrawlReport` and the JSONL
//! event stream both — for every crawler, across apps and seeds, with
//! traces and fault plans in play. Equivalence holds by construction
//! (`run_crawl` is a wrapper over `Session`), and this suite proves the
//! step-driven, pausable path adds nothing and loses nothing.

use mak::framework::engine::{run_crawl_with_sink, CrawlReport, EngineConfig};
use mak::framework::session::Session;
use mak::spec::{build_crawler, CRAWLER_NAMES};
use mak_browser::fault::FaultPlan;
use mak_obs::sink::{JsonlSink, SinkHandle};
use mak_websim::apps;
use std::sync::Arc;

/// Collects `(serialized report, JSONL stream)` from the legacy one-shot
/// entry point.
fn oneshot(app: &str, crawler: &str, seed: u64, cfg: &EngineConfig) -> (Vec<u8>, Vec<u8>) {
    let (handle, cell) = SinkHandle::shared(JsonlSink::new(Vec::new()));
    let mut c = build_crawler(crawler, seed).unwrap();
    let report = run_crawl_with_sink(&mut *c, apps::build(app).unwrap(), cfg, seed, &handle);
    drop(c);
    drop(handle);
    finish(report, cell)
}

/// Collects the same pair from an owned `Session` driven step by step
/// from outside.
fn stepped(app: &str, crawler: &str, seed: u64, cfg: &EngineConfig) -> (Vec<u8>, Vec<u8>) {
    let (handle, cell) = SinkHandle::shared(JsonlSink::new(Vec::new()));
    let mut session = Session::with_sink(
        apps::build(app).unwrap(),
        build_crawler(crawler, seed).unwrap(),
        cfg,
        seed,
        handle,
    );
    while session.step().is_running() {}
    let report = session.finish();
    finish(report, cell)
}

fn finish(
    report: CrawlReport,
    cell: Arc<std::sync::Mutex<JsonlSink<Vec<u8>>>>,
) -> (Vec<u8>, Vec<u8>) {
    let Ok(sink) = Arc::try_unwrap(cell) else { panic!("all sink clones dropped") };
    let (jsonl, error) = sink.into_inner().unwrap_or_else(|p| p.into_inner()).finish();
    assert!(error.is_none(), "in-memory writer cannot fail");
    let report_bytes = serde_json::to_vec(&report).expect("CrawlReport serializes");
    (report_bytes, jsonl)
}

/// All six crawlers, three apps, two seeds, traces on: the step-driven
/// session and the one-shot engine produce byte-identical serialized
/// reports and byte-identical JSONL event streams.
#[test]
fn stepped_sessions_are_byte_identical_to_run_crawl() {
    let mut cfg = EngineConfig::with_budget_minutes(0.5);
    cfg.record_trace = true;
    for crawler in CRAWLER_NAMES {
        for (app, seed) in [("addressbook", 31), ("vanilla", 32), ("phpbb2", 33)] {
            for seed in [seed, seed + 100] {
                let a = oneshot(app, crawler, seed, &cfg);
                let b = stepped(app, crawler, seed, &cfg);
                assert_eq!(a.0, b.0, "{crawler}/{app}/{seed}: serialized reports diverge");
                assert_eq!(a.1, b.1, "{crawler}/{app}/{seed}: JSONL streams diverge");
            }
        }
    }
}

/// The equivalence survives fault injection: retry/backoff state lives
/// inside the session, so a chaos run stepped from outside matches the
/// one-shot chaos run byte for byte.
#[test]
fn equivalence_holds_under_fault_injection() {
    let mut cfg = EngineConfig::with_budget_minutes(1.0);
    cfg.faults = FaultPlan::profile("moderate").unwrap();
    for crawler in ["mak", "dfs"] {
        let a = oneshot("phpbb2", crawler, 41, &cfg);
        let b = stepped("phpbb2", crawler, 41, &cfg);
        assert_eq!(a, b, "{crawler}: chaos equivalence");
    }
}

/// Pausing is free: stepping a session in bursts with arbitrary pauses
/// (here: interleaving two sessions by hand) changes nothing relative to
/// stepping each to completion alone.
#[test]
fn interleaved_stepping_changes_nothing() {
    let cfg = EngineConfig::with_budget_minutes(0.5);
    let solo: Vec<CrawlReport> = [51u64, 52]
        .iter()
        .map(|&seed| {
            Session::new(
                apps::build("addressbook").unwrap(),
                build_crawler("mak", seed).unwrap(),
                &cfg,
                seed,
            )
            .finish()
        })
        .collect();

    let mut a = Session::new(
        apps::build("addressbook").unwrap(),
        build_crawler("mak", 51).unwrap(),
        &cfg,
        51,
    );
    let mut b = Session::new(
        apps::build("addressbook").unwrap(),
        build_crawler("mak", 52).unwrap(),
        &cfg,
        52,
    );
    // Unequal bursts so the interleaving is genuinely lopsided.
    loop {
        let mut progressed = false;
        for _ in 0..7 {
            progressed |= a.step().is_running();
        }
        for _ in 0..3 {
            progressed |= b.step().is_running();
        }
        if !progressed {
            break;
        }
    }
    assert_eq!(a.finish(), solo[0]);
    assert_eq!(b.finish(), solo[1]);
}
