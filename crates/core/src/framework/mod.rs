//! The generic RL web-crawling framework (Algorithm 2 of the paper).
//!
//! Algorithm 2 factors any RL crawler into building blocks — `GET_STATE`,
//! `GET_ACTIONS`, `CHOOSE_ACTION`, `EXECUTE`, `GET_REWARD`,
//! `UPDATE_POLICY` — driven by one loop under a time budget. Here:
//!
//! - [`crawler`] defines the [`Crawler`](crawler::Crawler) interface every
//!   crawler implements (one `step` = one decision + one interaction);
//! - [`linklog`] tracks the distinct URLs observed during a crawl, the
//!   quantity behind MAK's link-coverage reward (§IV-C) and the
//!   `distinct_urls` statistic of every report;
//! - [`engine`] runs a crawler against a hosted application, charges policy
//!   overhead, samples the live coverage time series (Fig. 2), and
//!   assembles the [`CrawlReport`](engine::CrawlReport);
//! - [`session`] is the engine loop as a resumable `Send + Sync` state
//!   machine ([`Session`](session::Session)): the one-shot engine drives
//!   a session to completion, while the `mak-serve` scheduler interleaves
//!   thousands of them across worker threads.

pub mod checkpoint;
pub mod crawler;
pub mod engine;
pub mod linklog;
pub mod qcrawler;
pub mod session;
