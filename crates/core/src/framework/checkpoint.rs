//! Durable session checkpoints: every piece of mid-crawl state as data.
//!
//! A [`SessionCheckpoint`] captures a [`Session`](super::session::Session)
//! between two steps — crawler learning state, browser/clock/RNG position,
//! server-side coverage and sessions, engine progress — precisely enough
//! that a session restored from it continues **bit-identically** to the
//! uninterrupted run (reports, traces, and JSONL event streams included;
//! proven by `crates/serve/tests/recovery.rs`). That contract is what lets
//! `mak-serve` survive crashes: the paper's determinism invariant (a run is
//! a pure function of `(app, crawler, seed, config)`) extends to "… from
//! any checkpoint of that run".
//!
//! Checkpoints are plain [`serde::Value`] trees. Everything validates on
//! deserialization — corrupt payloads produce [`serde::Error`]s, never
//! panics — because the serving layer feeds them from disk files it does
//! not trust (see `mak-serve`'s `checkpoint` module for the CRC-guarded
//! store).

use crate::framework::engine::{CoverageSample, EngineConfig, TraceEntry};

/// On-disk/OTW schema version of [`SessionCheckpoint`]. Bump on any layout
/// change; restore rejects mismatching versions instead of guessing.
pub const CHECKPOINT_VERSION: u32 = 1;

/// The mutable state of one crawler, tagged by family.
///
/// The six registry crawlers map onto three variants: `mak`, `bfs`, `dfs`,
/// `random`, and every `mak-*` ablation variant are [`CrawlerState::Mak`]
/// (the static baselines are MAK with a pinned arm); `webexplor` and
/// `qexplore` are [`CrawlerState::Q`] distinguished by their state
/// abstraction's `kind`; `mak-ensemble<N>` is [`CrawlerState::Ensemble`].
///
/// Sub-states are pre-serialized [`serde::Value`] payloads: only the type
/// that produced a payload knows how to validate it, and keeping the enum
/// payload-agnostic means a new learner needs no checkpoint-schema change.
#[derive(Debug, Clone, PartialEq)]
pub enum CrawlerState {
    /// [`MakCrawler`](crate::mak::MakCrawler) in any configuration.
    Mak(MakState),
    /// [`EnsembleCrawler`](crate::mak::EnsembleCrawler).
    Ensemble(EnsembleState),
    /// A [`QCrawler`](crate::framework::qcrawler::QCrawler) (WebExplor or
    /// QExplore, per [`QState::abstraction`]).
    Q(QState),
}

/// Mutable state of a [`MakCrawler`](crate::mak::MakCrawler).
#[derive(Debug, Clone, PartialEq)]
pub struct MakState {
    /// The arm policy (tagged by name, hyper-parameters included).
    pub policy: serde::Value,
    /// The reward standardizer's running statistics.
    pub reward: serde::Value,
    /// The leveled element pool.
    pub deque: serde::Value,
    /// The link log (URLs in insertion order).
    pub links: serde::Value,
    /// xoshiro256++ words of the crawler's RNG stream.
    pub rng: Vec<u64>,
    /// Whether the seed page has been ingested.
    pub started: bool,
}

/// Mutable state of an [`EnsembleCrawler`](crate::mak::EnsembleCrawler).
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleState {
    /// Per-agent Exp3.1 learner states, in round-robin order.
    pub policies: Vec<serde::Value>,
    /// Per-agent reward standardizers, aligned with `policies`.
    pub rewards: Vec<serde::Value>,
    /// The agent whose turn is next.
    pub next_agent: u64,
    /// The shared leveled element pool.
    pub deque: serde::Value,
    /// The shared link log.
    pub links: serde::Value,
    /// xoshiro256++ words of the shared RNG stream.
    pub rng: Vec<u64>,
    /// Whether the seed page has been ingested.
    pub started: bool,
}

/// Mutable state of a [`QCrawler`](crate::framework::qcrawler::QCrawler).
#[derive(Debug, Clone, PartialEq)]
pub struct QState {
    /// The state abstraction's kind tag (`"webexplor"` / `"qexplore"`);
    /// restore refuses a payload produced by a different abstraction.
    pub abstraction: String,
    /// The state abstraction's own serialized table.
    pub states: serde::Value,
    /// The Q-table (hyper-parameters included).
    pub q: serde::Value,
    /// `(state, action, visits)` triples, sorted by `(state, action)`.
    pub visit_counts: Vec<(u64, u64, u64)>,
    /// The link log.
    pub links: serde::Value,
    /// xoshiro256++ words of the crawler's RNG stream.
    pub rng: Vec<u64>,
    /// The trajectory position: `(state id, page)`; `None` when the next
    /// step restarts from the seed.
    pub current: Option<(u64, serde::Value)>,
    /// Seed restarts performed so far.
    pub restarts: u64,
}

fn rng_field(rng: &serde::Value) -> Result<Vec<u64>, serde::Error> {
    let words: Vec<u64> = serde::Deserialize::from_value(rng)?;
    if words.len() != 4 {
        return Err(serde::Error::custom(format!("expected 4 RNG words, got {}", words.len())));
    }
    if words.iter().all(|&w| w == 0) {
        return Err(serde::Error::custom("all-zero RNG state is invalid"));
    }
    Ok(words)
}

impl serde::Serialize for MakState {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("policy".to_owned(), self.policy.clone()),
            ("reward".to_owned(), self.reward.clone()),
            ("deque".to_owned(), self.deque.clone()),
            ("links".to_owned(), self.links.clone()),
            ("rng".to_owned(), self.rng.to_value()),
            ("started".to_owned(), self.started.to_value()),
        ])
    }
}

impl serde::Deserialize for MakState {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let entries =
            v.as_object().ok_or_else(|| serde::Error::custom("expected MakState object"))?;
        Ok(MakState {
            policy: serde::__field(entries, "policy")?,
            reward: serde::__field(entries, "reward")?,
            deque: serde::__field(entries, "deque")?,
            links: serde::__field(entries, "links")?,
            rng: rng_field(
                v.get("rng").ok_or_else(|| serde::Error::custom("missing field `rng`"))?,
            )?,
            started: serde::__field(entries, "started")?,
        })
    }
}

impl serde::Serialize for EnsembleState {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("policies".to_owned(), self.policies.to_value()),
            ("rewards".to_owned(), self.rewards.to_value()),
            ("next_agent".to_owned(), self.next_agent.to_value()),
            ("deque".to_owned(), self.deque.clone()),
            ("links".to_owned(), self.links.clone()),
            ("rng".to_owned(), self.rng.to_value()),
            ("started".to_owned(), self.started.to_value()),
        ])
    }
}

impl serde::Deserialize for EnsembleState {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let entries =
            v.as_object().ok_or_else(|| serde::Error::custom("expected EnsembleState object"))?;
        let state = EnsembleState {
            policies: serde::__field(entries, "policies")?,
            rewards: serde::__field(entries, "rewards")?,
            next_agent: serde::__field(entries, "next_agent")?,
            deque: serde::__field(entries, "deque")?,
            links: serde::__field(entries, "links")?,
            rng: rng_field(
                v.get("rng").ok_or_else(|| serde::Error::custom("missing field `rng`"))?,
            )?,
            started: serde::__field(entries, "started")?,
        };
        if state.policies.is_empty() {
            return Err(serde::Error::custom("ensemble needs at least one agent"));
        }
        if state.policies.len() != state.rewards.len() {
            return Err(serde::Error::custom("policies/rewards length mismatch"));
        }
        if state.next_agent as usize >= state.policies.len() {
            return Err(serde::Error::custom("next_agent out of range"));
        }
        Ok(state)
    }
}

impl serde::Serialize for QState {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("abstraction".to_owned(), self.abstraction.to_value()),
            ("states".to_owned(), self.states.clone()),
            ("q".to_owned(), self.q.clone()),
            ("visit_counts".to_owned(), self.visit_counts.to_value()),
            ("links".to_owned(), self.links.clone()),
            ("rng".to_owned(), self.rng.to_value()),
            ("current".to_owned(), self.current.to_value()),
            ("restarts".to_owned(), self.restarts.to_value()),
        ])
    }
}

impl serde::Deserialize for QState {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let entries =
            v.as_object().ok_or_else(|| serde::Error::custom("expected QState object"))?;
        let visit_counts: Vec<(u64, u64, u64)> = serde::__field(entries, "visit_counts")?;
        for w in visit_counts.windows(2) {
            if (w[1].0, w[1].1) <= (w[0].0, w[0].1) {
                return Err(serde::Error::custom("visit_counts not sorted by (state, action)"));
            }
        }
        Ok(QState {
            abstraction: serde::__field(entries, "abstraction")?,
            states: serde::__field(entries, "states")?,
            q: serde::__field(entries, "q")?,
            visit_counts,
            links: serde::__field(entries, "links")?,
            rng: rng_field(
                v.get("rng").ok_or_else(|| serde::Error::custom("missing field `rng`"))?,
            )?,
            current: serde::__field(entries, "current")?,
            restarts: serde::__field(entries, "restarts")?,
        })
    }
}

impl serde::Serialize for CrawlerState {
    fn to_value(&self) -> serde::Value {
        let (tag, payload) = match self {
            CrawlerState::Mak(s) => ("mak", s.to_value()),
            CrawlerState::Ensemble(s) => ("ensemble", s.to_value()),
            CrawlerState::Q(s) => ("q", s.to_value()),
        };
        serde::Value::Object(vec![(tag.to_owned(), payload)])
    }
}

impl serde::Deserialize for CrawlerState {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let entries =
            v.as_object().ok_or_else(|| serde::Error::custom("expected CrawlerState object"))?;
        let [(tag, payload)] = entries else {
            return Err(serde::Error::custom("expected single-variant CrawlerState object"));
        };
        Ok(match tag.as_str() {
            "mak" => CrawlerState::Mak(MakState::from_value(payload)?),
            "ensemble" => CrawlerState::Ensemble(EnsembleState::from_value(payload)?),
            "q" => CrawlerState::Q(QState::from_value(payload)?),
            other => return Err(serde::Error::custom(format!("unknown crawler state `{other}`"))),
        })
    }
}

/// A complete, self-contained snapshot of one mid-crawl session.
///
/// Produced by [`Session::snapshot`](super::session::Session::snapshot)
/// between steps; consumed by
/// [`Session::restore`](super::session::Session::restore). The embedded
/// [`EngineConfig`] makes the checkpoint self-describing — restoring needs
/// only the application model (by the recorded `app` name) and a fresh
/// crawler of the recorded `crawler` name.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionCheckpoint {
    /// Schema version ([`CHECKPOINT_VERSION`] at write time).
    pub version: u32,
    /// Application name (registry key or generated-app label).
    pub app: String,
    /// Crawler name (a [`crate::spec::build_crawler`] key).
    pub crawler: String,
    /// The run's seed.
    pub seed: u64,
    /// The engine configuration the run was started with.
    pub config: EngineConfig,
    /// Steps completed so far.
    pub step_index: u64,
    /// Whether the session had already ended.
    pub done: bool,
    /// Next live-coverage sample boundary, in virtual seconds.
    pub next_sample: f64,
    /// Live coverage samples collected so far.
    pub series: Vec<CoverageSample>,
    /// Per-step trace collected so far (empty unless `config.record_trace`).
    pub trace: Vec<TraceEntry>,
    /// Browser-side state (clock, RNG, cookie, fault stream, host).
    pub browser: serde::Value,
    /// The crawler's learning state.
    pub crawler_state: CrawlerState,
    /// Span allocator `(next_id, now_ms)` when the interrupted run had
    /// span collection enabled; restoring seeds the allocator so span ids
    /// continue where they left off.
    pub spans: Option<(u64, f64)>,
}

impl serde::Serialize for SessionCheckpoint {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("version".to_owned(), self.version.to_value()),
            ("app".to_owned(), self.app.to_value()),
            ("crawler".to_owned(), self.crawler.to_value()),
            ("seed".to_owned(), self.seed.to_value()),
            ("config".to_owned(), self.config.to_value()),
            ("step_index".to_owned(), self.step_index.to_value()),
            ("done".to_owned(), self.done.to_value()),
            ("next_sample".to_owned(), self.next_sample.to_value()),
            ("series".to_owned(), self.series.to_value()),
            ("trace".to_owned(), self.trace.to_value()),
            ("browser".to_owned(), self.browser.clone()),
            ("crawler_state".to_owned(), self.crawler_state.to_value()),
            ("spans".to_owned(), self.spans.to_value()),
        ])
    }
}

impl serde::Deserialize for SessionCheckpoint {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected SessionCheckpoint object"))?;
        let version: u32 = serde::__field(entries, "version")?;
        if version != CHECKPOINT_VERSION {
            return Err(serde::Error::custom(format!(
                "unsupported checkpoint version {version} (expected {CHECKPOINT_VERSION})"
            )));
        }
        let checkpoint = SessionCheckpoint {
            version,
            app: serde::__field(entries, "app")?,
            crawler: serde::__field(entries, "crawler")?,
            seed: serde::__field(entries, "seed")?,
            config: serde::__field(entries, "config")?,
            step_index: serde::__field(entries, "step_index")?,
            done: serde::__field(entries, "done")?,
            next_sample: serde::__field(entries, "next_sample")?,
            series: serde::__field(entries, "series")?,
            trace: serde::__field(entries, "trace")?,
            browser: serde::__field(entries, "browser")?,
            crawler_state: serde::__field(entries, "crawler_state")?,
            spans: serde::__field(entries, "spans")?,
        };
        if !checkpoint.next_sample.is_finite() || checkpoint.next_sample < 0.0 {
            return Err(serde::Error::custom("next_sample must be a finite non-negative time"));
        }
        if checkpoint.config.budget_minutes <= 0.0 || checkpoint.config.sample_interval_secs <= 0.0
        {
            return Err(serde::Error::custom("checkpointed config has non-positive budget"));
        }
        Ok(checkpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize as _, Serialize as _};

    fn mak_state() -> CrawlerState {
        CrawlerState::Mak(MakState {
            policy: serde::Value::Object(vec![("uniform".to_owned(), serde::Value::Null)]),
            reward: serde::Value::Null,
            deque: serde::Value::Null,
            links: serde::Value::Array(vec![]),
            rng: vec![1, 2, 3, 4],
            started: false,
        })
    }

    #[test]
    fn crawler_state_round_trips() {
        for state in [
            mak_state(),
            CrawlerState::Ensemble(EnsembleState {
                policies: vec![serde::Value::Null, serde::Value::Null],
                rewards: vec![serde::Value::Null, serde::Value::Null],
                next_agent: 1,
                deque: serde::Value::Null,
                links: serde::Value::Null,
                rng: vec![9, 0, 0, 1],
                started: true,
            }),
            CrawlerState::Q(QState {
                abstraction: "webexplor".to_owned(),
                states: serde::Value::Array(vec![]),
                q: serde::Value::Null,
                visit_counts: vec![(0, 1, 2), (0, 2, 1), (3, 0, 5)],
                links: serde::Value::Null,
                rng: vec![5, 6, 7, 8],
                current: None,
                restarts: 2,
            }),
        ] {
            let back = CrawlerState::from_value(&state.to_value()).unwrap();
            assert_eq!(back, state);
        }
    }

    #[test]
    fn corrupt_crawler_states_error_instead_of_panicking() {
        // All-zero RNG words would panic inside StdRng::from_state if they
        // reached it; the deserializer must reject them first.
        let mut zero_rng = mak_state();
        if let CrawlerState::Mak(s) = &mut zero_rng {
            s.rng = vec![0, 0, 0, 0];
        }
        assert!(CrawlerState::from_value(&zero_rng.to_value()).is_err());

        let mut short_rng = mak_state();
        if let CrawlerState::Mak(s) = &mut short_rng {
            s.rng = vec![1, 2];
        }
        assert!(CrawlerState::from_value(&short_rng.to_value()).is_err());

        let unknown = serde::Value::Object(vec![("gpt".to_owned(), serde::Value::Null)]);
        assert!(CrawlerState::from_value(&unknown).is_err());

        let unsorted = CrawlerState::Q(QState {
            abstraction: "qexplore".to_owned(),
            states: serde::Value::Null,
            q: serde::Value::Null,
            visit_counts: vec![(3, 0, 5), (0, 1, 2)],
            links: serde::Value::Null,
            rng: vec![5, 6, 7, 8],
            current: None,
            restarts: 0,
        });
        assert!(CrawlerState::from_value(&unsorted.to_value()).is_err());

        let empty_ensemble = CrawlerState::Ensemble(EnsembleState {
            policies: vec![],
            rewards: vec![],
            next_agent: 0,
            deque: serde::Value::Null,
            links: serde::Value::Null,
            rng: vec![1, 0, 0, 0],
            started: false,
        });
        assert!(CrawlerState::from_value(&empty_ensemble.to_value()).is_err());
    }

    #[test]
    fn session_checkpoint_rejects_future_versions() {
        let checkpoint = SessionCheckpoint {
            version: CHECKPOINT_VERSION,
            app: "vanilla".to_owned(),
            crawler: "mak".to_owned(),
            seed: 7,
            config: EngineConfig::with_budget_minutes(1.0),
            step_index: 12,
            done: false,
            next_sample: 30.0,
            series: vec![CoverageSample { secs: 0.0, lines: 3 }],
            trace: vec![],
            browser: serde::Value::Null,
            crawler_state: mak_state(),
            spans: Some((41, 6_000.0)),
        };
        let ok = SessionCheckpoint::from_value(&checkpoint.to_value()).unwrap();
        assert_eq!(ok, checkpoint);

        let mut future = checkpoint.to_value();
        if let serde::Value::Object(entries) = &mut future {
            entries[0].1 = serde::Value::UInt(u64::from(CHECKPOINT_VERSION) + 1);
        }
        let err = SessionCheckpoint::from_value(&future).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }
}
