//! Link-coverage accounting.
//!
//! §IV-C: *"Link coverage is determined by the number of different links
//! gathered during the exploration of the web application and it is
//! positively correlated with code coverage."* The [`LinkLog`] records
//! every distinct same-origin URL a crawl observes — visited page URLs and
//! the targets of extracted elements — and reports the per-step increment
//! MAK's reward standardizes.

use mak_browser::page::Page;
use mak_intern::Interner;
use mak_websim::url::Url;

/// The set of distinct URLs gathered during one crawl.
///
/// Backed by an [`Interner`]: probing with an already-seen URL allocates
/// nothing, and each distinct normalized URL is stored exactly once.
#[derive(Debug, Default)]
pub struct LinkLog {
    seen: Interner,
}

impl LinkLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one URL; returns `true` if it was new.
    pub fn record(&mut self, url: &Url) -> bool {
        self.seen.try_intern(url.normalized()).1
    }

    /// Absorbs a fetched page: its own URL plus every same-origin element
    /// target. Returns the number of *new* URLs — the raw link-coverage
    /// increment `r_t` of §IV-C.
    pub fn absorb_page(&mut self, page: &Page, origin: &Url) -> u64 {
        let mut new = 0;
        if page.url().same_origin(origin) && self.record(page.url()) {
            new += 1;
        }
        for el in page.valid_interactables(origin) {
            if self.record(el.target_url()) {
                new += 1;
            }
        }
        new
    }

    /// Number of distinct URLs gathered so far.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether nothing has been gathered yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// The URL interner (diagnostics: table size under `MAK_LOG=debug`).
    pub fn interner(&self) -> &Interner {
        &self.seen
    }
}

/// Checkpointing: the log serializes as its URLs in insertion order, which
/// [`Interner::from_ordered`] maps back to identical symbol ids.
impl serde::Serialize for LinkLog {
    fn to_value(&self) -> serde::Value {
        serde::Value::Array(
            self.seen.ordered_strings().map(|s| serde::Value::Str(s.to_owned())).collect(),
        )
    }
}

impl serde::Deserialize for LinkLog {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let items = match v {
            serde::Value::Array(items) => items,
            other => {
                return Err(serde::Error::custom(format!("expected LinkLog array, got {other:?}")))
            }
        };
        let mut urls = Vec::with_capacity(items.len());
        for item in items {
            match item {
                serde::Value::Str(s) => urls.push(s.as_str()),
                other => {
                    return Err(serde::Error::custom(format!(
                        "expected URL string in LinkLog, got {other:?}"
                    )))
                }
            }
        }
        Ok(LinkLog { seen: Interner::from_ordered(urls) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mak_websim::dom::{Document, Element, Tag};
    use mak_websim::http::Status;

    fn page(url: &str, hrefs: &[&str]) -> Page {
        let mut body = Element::new(Tag::Body);
        for h in hrefs {
            body = body.child(Element::new(Tag::A).attr("href", (*h).to_owned()));
        }
        Page::from_document(Status::Ok, Document::new(url.parse().unwrap(), "t", body))
    }

    #[test]
    fn counts_new_urls_only_once() {
        let origin: Url = "http://h/".parse().unwrap();
        let mut log = LinkLog::new();
        let p = page("http://h/a", &["/b", "/c"]);
        assert_eq!(log.absorb_page(&p, &origin), 3);
        assert_eq!(log.absorb_page(&p, &origin), 0, "revisit adds nothing");
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn ignores_external_targets() {
        let origin: Url = "http://h/".parse().unwrap();
        let mut log = LinkLog::new();
        let p = page("http://h/a", &["http://evil.example/x", "/b"]);
        assert_eq!(log.absorb_page(&p, &origin), 2, "page URL + /b only");
    }

    #[test]
    fn normalization_collapses_query_order() {
        let origin: Url = "http://h/".parse().unwrap();
        let mut log = LinkLog::new();
        let p1 = page("http://h/a", &["/x?a=1&b=2"]);
        let p2 = page("http://h/c", &["/x?b=2&a=1"]);
        assert_eq!(log.absorb_page(&p1, &origin), 2);
        assert_eq!(log.absorb_page(&p2, &origin), 1, "same link in another order");
        assert!(!log.is_empty());
    }
}
