//! The generic Q-learning trajectory crawler.
//!
//! WebExplor and QExplore share the skeleton of Algorithm 2 and differ only
//! in four building blocks (Table I): the state abstraction, the action
//! selection, the policy update, and the curiosity-reward flavor. The
//! paper's evaluation framework implements them once and instantiates both
//! tools from the same loop to avoid engineering bias (§V-A.1); this module
//! is that shared implementation.
//!
//! Unlike MAK, a [`QCrawler`] is *trajectory-based*: at each step it picks
//! among the interactable elements of the page it currently sits on, and
//! restarts from the seed URL when its trajectory dead-ends.

use crate::framework::checkpoint::{CrawlerState, QState};
use crate::framework::crawler::{CrawlEnd, Crawler, StepReport};
use crate::framework::linklog::LinkLog;
use mak_bandit::gumbel::gumbel_softmax_sample;
use mak_bandit::qlearning::QTable;
use mak_browser::client::{BrowseError, Browser};
use mak_browser::cost::CostModel;
use mak_browser::page::Page;
use mak_websim::dom::Interactable;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize as _, Serialize as _};
use std::borrow::Cow;
use std::collections::HashMap;

/// `GET_STATE` of Algorithm 2: maps pages to abstract state identifiers,
/// creating new states as needed.
pub trait StateAbstraction: std::fmt::Debug + Send + Sync {
    /// The state of `page`, allocating a fresh state if no existing one
    /// matches under this abstraction's similarity function.
    fn state_of(&mut self, page: &Page) -> u64;

    /// Number of states created so far — the quantity that explodes under
    /// the brittle abstractions of §III-A.
    fn state_count(&self) -> usize;

    /// Checkpointing: a stable tag naming this abstraction (`"webexplor"`,
    /// `"qexplore"`), recorded in checkpoints so a restore can refuse a
    /// payload produced by a different abstraction.
    fn kind(&self) -> &'static str;

    /// Checkpointing: the abstraction's full state table as a value tree.
    /// Must be a deterministic function of the table's *content* (sorted,
    /// never hasher-order dependent).
    fn snapshot_value(&self) -> serde::Value;

    /// Checkpointing: overwrites this (fresh) abstraction's table from a
    /// [`snapshot_value`](StateAbstraction::snapshot_value) payload, such
    /// that subsequent `state_of` calls return the ids the snapshotted
    /// instance would have.
    ///
    /// # Errors
    ///
    /// When the payload is malformed; never panics on corrupt input.
    fn restore_value(&mut self, value: &serde::Value) -> Result<(), serde::Error>;
}

/// `CHOOSE_ACTION` of Algorithm 2.
#[derive(Debug, Clone, Copy)]
pub enum ActionSelection {
    /// WebExplor: sample from the Gumbel-softmax over Q-values.
    GumbelSoftmax {
        /// Softmax temperature.
        temperature: f64,
    },
    /// QExplore: deterministically pick the maximum-Q action.
    MaxQ,
}

/// `UPDATE_POLICY` of Algorithm 2.
#[derive(Debug, Clone, Copy)]
pub enum UpdateRule {
    /// WebExplor: the standard Bellman update.
    Bellman,
    /// QExplore: Bellman plus a bonus towards action-rich successor states.
    QExplore {
        /// Bonus weight β.
        beta: f64,
    },
}

/// `GET_REWARD` of Algorithm 2: both tools use curiosity (visit-count)
/// rewards, with slightly different decay shapes. The first execution of an
/// action already pays strictly less than the optimistic initial Q-value
/// promises for untried actions, so freshness always wins ties.
#[derive(Debug, Clone, Copy)]
pub enum CuriosityReward {
    /// `1 / √(visits + 1)` — WebExplor-style frequency counters.
    InverseSqrt,
    /// `1 / (visits + 1)` — QExplore-style sharper decay.
    Inverse,
}

impl CuriosityReward {
    fn value(self, visits: u64) -> f64 {
        debug_assert!(visits >= 1);
        match self {
            CuriosityReward::InverseSqrt => 1.0 / ((visits + 1) as f64).sqrt(),
            CuriosityReward::Inverse => 1.0 / (visits + 1) as f64,
        }
    }
}

/// A Q-learning trajectory crawler assembled from the building blocks.
#[derive(Debug)]
pub struct QCrawler<S> {
    name: String,
    states: S,
    q: QTable,
    visit_counts: HashMap<(u64, u64), u64>,
    selection: ActionSelection,
    update: UpdateRule,
    curiosity: CuriosityReward,
    links: LinkLog,
    rng: StdRng,
    current: Option<(u64, Page)>,
    restarts: u64,
    overhead_factor: f64,
}

impl<S: StateAbstraction> QCrawler<S> {
    /// Assembles a crawler from its building blocks and a configured
    /// [`QTable`]. The discount and optimistic initial value matter: with a
    /// curiosity reward, the fixed point of a repeated action's Q-value is
    /// `r/(1 − γ)`, so `γ` must be small enough that decayed-curiosity
    /// actions fall *below* the optimistic initial value of untried ones —
    /// otherwise the crawler loops forever on its first trajectory.
    pub fn new(
        name: impl Into<String>,
        states: S,
        selection: ActionSelection,
        update: UpdateRule,
        curiosity: CuriosityReward,
        q: QTable,
        seed: u64,
    ) -> Self {
        QCrawler {
            name: name.into(),
            states,
            q,
            visit_counts: HashMap::new(),
            selection,
            update,
            curiosity,
            links: LinkLog::new(),
            rng: StdRng::seed_from_u64(seed),
            current: None,
            restarts: 0,
            overhead_factor: 1.0,
        }
    }

    /// Scales the per-decision policy overhead. QExplore's pre-processing
    /// re-hashes the attribute values of *every* interactable on each page,
    /// which is costlier than WebExplor's URL-indexed lookup; the paper's
    /// §V-D interaction counts (854 vs 827) reflect this.
    #[must_use]
    pub fn with_overhead_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "overhead factor must be positive");
        self.overhead_factor = factor;
        self
    }

    /// Times the crawler restarted from the seed URL after a dead end.
    pub fn restart_count(&self) -> u64 {
        self.restarts
    }

    /// The underlying Q-table.
    pub fn q_table(&self) -> &QTable {
        &self.q
    }

    /// Re-opens the seed. `Ok(None)` means a transient fault spoiled the
    /// fetch: the attempt's time is charged and the caller should retry on
    /// the next step.
    fn open_seed(&mut self, browser: &mut Browser) -> Result<Option<(u64, Page)>, CrawlEnd> {
        let page = match browser.open_seed() {
            Ok(p) => p,
            Err(BrowseError::BudgetExhausted) => return Err(CrawlEnd::BudgetExhausted),
            Err(BrowseError::ExternalDomain(_)) => unreachable!("seed is same-origin"),
            Err(
                BrowseError::TooManyRedirects(_)
                | BrowseError::Transient { .. }
                | BrowseError::StaleElement,
            ) => return Ok(None),
        };
        let origin = browser.origin().clone();
        self.links.absorb_page(&page, &origin);
        let state = self.states.state_of(&page);
        Ok(Some((state, page)))
    }
}

impl<S: StateAbstraction> Crawler for QCrawler<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, browser: &mut Browser) -> Result<StepReport, CrawlEnd> {
        // GET_STATE: establish the current position, restarting if needed.
        let (mut state, mut page) = match self.current.take() {
            Some(cur) => cur,
            None => match self.open_seed(browser)? {
                Some(sp) => sp,
                None => return Ok(StepReport { action: Cow::Borrowed("SeedRetry"), reward: None }),
            },
        };

        // GET_ACTIONS: the interactable elements of the current page. The
        // actions borrow the page snapshot — nothing on this hot path clones
        // an element.
        let origin = browser.origin().clone();
        if page.valid_interactables(&origin).next().is_none() {
            // Dead end (e.g. a body-less error response): restart.
            self.restarts += 1;
            let Some((s, p)) = self.open_seed(browser)? else {
                return Ok(StepReport { action: Cow::Borrowed("SeedRetry"), reward: None });
            };
            state = s;
            page = p;
        }
        let actions: Vec<&Interactable> = page.valid_interactables(&origin).collect();
        if actions.is_empty() {
            return Err(CrawlEnd::Stuck);
        }
        let action_keys: Vec<u64> = actions.iter().map(|a| a.signature_hash()).collect();

        // CHOOSE_ACTION.
        let values = self.q.values_for(state, &action_keys);
        let idx = match self.selection {
            ActionSelection::GumbelSoftmax { temperature } => {
                gumbel_softmax_sample(&mut self.rng, &values, temperature)
            }
            ActionSelection::MaxQ => {
                self.q.best_action(state, &action_keys).expect("non-empty actions")
            }
        };
        let chosen = actions[idx];
        let chosen_key = action_keys[idx];

        // EXECUTE.
        let next_page = match browser.execute(chosen) {
            Ok(p) => p,
            Err(BrowseError::BudgetExhausted) => {
                self.current = Some((state, page));
                return Err(CrawlEnd::BudgetExhausted);
            }
            Err(BrowseError::ExternalDomain(_)) => {
                // Valid-action filtering makes this unreachable; restart
                // defensively.
                let action = Cow::Owned(chosen.signature());
                self.current = None;
                return Ok(StepReport { action, reward: None });
            }
            Err(
                BrowseError::TooManyRedirects(_)
                | BrowseError::Transient { .. }
                | BrowseError::StaleElement,
            ) => {
                // Graceful degradation: the trajectory dead-ends on the
                // fault, so restart from the seed next step. No reward, no
                // Q-update — the fault is noise, not signal.
                let action = Cow::Owned(chosen.signature());
                self.current = None;
                return Ok(StepReport { action, reward: None });
            }
        };

        // GET_STATE (s') and GET_REWARD: curiosity over (s, a) visits.
        self.links.absorb_page(&next_page, &origin);
        let next_state = self.states.state_of(&next_page);
        let next_actions: Vec<u64> =
            next_page.valid_interactables(&origin).map(Interactable::signature_hash).collect();
        let visits = self.visit_counts.entry((state, chosen_key)).or_insert(0);
        *visits += 1;
        let reward = self.curiosity.value(*visits);

        // UPDATE_POLICY.
        match self.update {
            UpdateRule::Bellman => {
                self.q.bellman_update(state, chosen_key, reward, next_state, &next_actions);
            }
            UpdateRule::QExplore { beta } => {
                self.q.qexplore_update(state, chosen_key, reward, next_state, &next_actions, beta);
            }
        }

        let action = Cow::Owned(chosen.signature());
        self.current = Some((next_state, next_page));
        Ok(StepReport { action, reward: Some(reward) })
    }

    fn policy_overhead_ms(&self, cost: &CostModel) -> f64 {
        self.overhead_factor * cost.state_policy_cost(self.states.state_count())
    }

    fn state_count(&self) -> Option<usize> {
        Some(self.states.state_count())
    }

    fn distinct_urls(&self) -> usize {
        self.links.len()
    }

    fn snapshot_state(&self) -> Option<CrawlerState> {
        let mut visit_counts: Vec<(u64, u64, u64)> =
            self.visit_counts.iter().map(|(&(s, a), &n)| (s, a, n)).collect();
        visit_counts.sort_unstable();
        Some(CrawlerState::Q(QState {
            abstraction: self.states.kind().to_owned(),
            states: self.states.snapshot_value(),
            q: self.q.to_value(),
            visit_counts,
            links: self.links.to_value(),
            rng: self.rng.state().to_vec(),
            current: self.current.as_ref().map(|(s, p)| (*s, p.to_value())),
            restarts: self.restarts,
        }))
    }

    fn restore_state(&mut self, state: &CrawlerState) -> Result<(), serde::Error> {
        let CrawlerState::Q(s) = state else {
            return Err(serde::Error::custom(format!(
                "crawler `{}` cannot restore a non-Q state",
                self.name
            )));
        };
        if s.abstraction != self.states.kind() {
            return Err(serde::Error::custom(format!(
                "checkpoint holds a `{}` state table, crawler uses `{}`",
                s.abstraction,
                self.states.kind()
            )));
        }
        if s.rng.len() != 4 || s.rng.iter().all(|&w| w == 0) {
            return Err(serde::Error::custom("invalid RNG state in Q checkpoint"));
        }
        let mut words = [0u64; 4];
        words.copy_from_slice(&s.rng);
        self.states.restore_value(&s.states)?;
        self.q = QTable::from_value(&s.q)?;
        self.visit_counts = s.visit_counts.iter().map(|&(st, a, n)| ((st, a), n)).collect();
        self.links = LinkLog::from_value(&s.links)?;
        self.rng = StdRng::from_state(words);
        self.current = match &s.current {
            Some((st, page)) => Some((*st, Page::from_value(page)?)),
            None => None,
        };
        self.restarts = s.restarts;
        Ok(())
    }
}
