//! The resumable crawl session: `run_crawl` as a `Send + Sync` state
//! machine.
//!
//! A [`Session`] is one crawl — one crawler on one freshly deployed app
//! under one budget — factored so that *the caller* owns the loop:
//! [`Session::step`] performs exactly one engine iteration (charge policy
//! overhead, one crawler decision + interaction, event emission, live
//! coverage sampling) and [`Session::finish`] seals the run into the same
//! [`CrawlReport`] the one-shot engine produces. The legacy
//! [`run_crawl`](crate::framework::engine::run_crawl) entry point is a
//! thin wrapper over this type, so the two paths cannot drift; the
//! `session_equivalence` differential suite additionally proves the
//! step-driven path byte-identical, reports and JSONL traces included.
//!
//! Sessions are `Send + Sync`: every piece of per-run state (browser,
//! clock, coverage tracker, crawler policy state, event sink) lives
//! inside the session and nothing refers to thread-local or global
//! mutable state. A scheduler may therefore interleave thousands of
//! sessions across worker threads in any order — each session remains a
//! pure function of `(app, crawler, seed, config)`, which is the
//! serving layer's per-session determinism contract (see `mak-serve`).

use crate::framework::checkpoint::{SessionCheckpoint, CHECKPOINT_VERSION};
use crate::framework::crawler::{CrawlEnd, Crawler, StepReport};
use crate::framework::engine::{CoverageSample, CrawlReport, EngineConfig, TraceEntry};
use mak_browser::client::{Browser, BrowserState};
use mak_browser::clock::VirtualClock;
use mak_obs::event::Event;
use mak_obs::sink::SinkHandle;
use mak_obs::span::Phase;
use mak_websim::coverage::CoverageMode;
use mak_websim::server::{AppHost, WebApp};
use serde::{Deserialize as _, Serialize as _};
use std::sync::Arc;

/// What [`Session::step`] reports back to the driving loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// The step ran (or was skipped because the budget expired mid-check)
    /// and the session can take further steps.
    Running,
    /// The session is over: the budget expired or the crawler is stuck.
    /// Further `step` calls are no-ops returning `Finished`; call
    /// [`Session::finish`] to obtain the report.
    Finished,
}

impl SessionStatus {
    /// `true` while the session accepts further steps.
    pub fn is_running(self) -> bool {
        matches!(self, SessionStatus::Running)
    }
}

/// How a session holds its crawler: exclusively owned (the serving path)
/// or borrowed for the duration of the run (the legacy `run_crawl` path,
/// whose signature lends the engine a `&mut dyn Crawler`).
enum CrawlerSlot<'c> {
    Owned(Box<dyn Crawler>),
    Borrowed(&'c mut dyn Crawler),
}

impl CrawlerSlot<'_> {
    fn get(&mut self) -> &mut dyn Crawler {
        match self {
            CrawlerSlot::Owned(c) => &mut **c,
            CrawlerSlot::Borrowed(c) => *c,
        }
    }

    fn get_ref(&self) -> &dyn Crawler {
        match self {
            CrawlerSlot::Owned(c) => &**c,
            CrawlerSlot::Borrowed(c) => *c,
        }
    }
}

/// One resumable crawl run. See the [module docs](self) for the contract.
///
/// # Examples
///
/// ```
/// use mak::framework::session::Session;
/// use mak::framework::engine::EngineConfig;
/// use mak::spec::build_crawler;
/// use mak_websim::apps;
///
/// let mut session = Session::new(
///     apps::build("addressbook").unwrap(),
///     build_crawler("mak", 7).unwrap(),
///     &EngineConfig::with_budget_minutes(1.0),
///     7,
/// );
/// while session.step().is_running() {}
/// let report = session.finish();
/// assert!(report.interactions > 0);
/// ```
pub struct Session<'c> {
    crawler: CrawlerSlot<'c>,
    browser: Browser,
    sink: SinkHandle,
    app_name: String,
    seed: u64,
    live: bool,
    record_trace: bool,
    sample_interval_secs: f64,
    total_declared_lines: u64,
    series: Vec<CoverageSample>,
    next_sample: f64,
    trace: Vec<TraceEntry>,
    step_index: u64,
    done: bool,
    /// The full engine configuration, kept so checkpoints are
    /// self-contained ([`Session::snapshot`] embeds it).
    config: EngineConfig,
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("app", &self.app_name)
            .field("crawler", &self.crawler.get_ref().name())
            .field("seed", &self.seed)
            .field("steps", &self.step_index)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl<'c> Session<'c> {
    /// Opens a session that owns its crawler — the serving-layer entry
    /// point. Equivalent to [`run_crawl`](crate::framework::engine::run_crawl)
    /// driven one step at a time.
    pub fn new(
        app: Box<dyn WebApp>,
        crawler: Box<dyn Crawler>,
        config: &EngineConfig,
        seed: u64,
    ) -> Session<'static> {
        Session::start(
            AppHost::new(app),
            CrawlerSlot::Owned(crawler),
            config,
            seed,
            SinkHandle::none(),
        )
    }

    /// Like [`Session::new`], but deploys a *shared* application model:
    /// the session gets its own coverage tracker and server-side session
    /// store while the model stays one allocation shared with every
    /// other session crawling the same app.
    pub fn with_shared_app(
        app: Arc<dyn WebApp>,
        crawler: Box<dyn Crawler>,
        config: &EngineConfig,
        seed: u64,
    ) -> Session<'static> {
        Session::start(
            AppHost::with_shared(app),
            CrawlerSlot::Owned(crawler),
            config,
            seed,
            SinkHandle::none(),
        )
    }

    /// Like [`Session::new`] with an event sink wired through the whole
    /// stack (engine, browser, host, crawler policy) for the life of the
    /// session.
    pub fn with_sink(
        app: Box<dyn WebApp>,
        crawler: Box<dyn Crawler>,
        config: &EngineConfig,
        seed: u64,
        sink: SinkHandle,
    ) -> Session<'static> {
        Session::start(AppHost::new(app), CrawlerSlot::Owned(crawler), config, seed, sink)
    }

    /// [`Session::with_shared_app`] plus an event sink — the full
    /// serving-layer constructor (shared model, per-session stream).
    pub fn shared_with_sink(
        app: Arc<dyn WebApp>,
        crawler: Box<dyn Crawler>,
        config: &EngineConfig,
        seed: u64,
        sink: SinkHandle,
    ) -> Session<'static> {
        Session::start(AppHost::with_shared(app), CrawlerSlot::Owned(crawler), config, seed, sink)
    }

    /// Opens a session over a *borrowed* crawler — the compatibility
    /// constructor behind [`run_crawl`](crate::framework::engine::run_crawl),
    /// whose callers keep ownership of the crawler to inspect it after
    /// the run.
    pub fn borrowed(
        crawler: &'c mut dyn Crawler,
        app: Box<dyn WebApp>,
        config: &EngineConfig,
        seed: u64,
        sink: SinkHandle,
    ) -> Session<'c> {
        Session::start(AppHost::new(app), CrawlerSlot::Borrowed(crawler), config, seed, sink)
    }

    fn start(
        mut host: AppHost,
        mut crawler: CrawlerSlot<'c>,
        config: &EngineConfig,
        seed: u64,
        sink: SinkHandle,
    ) -> Session<'c> {
        let app_name = host.app().name().to_owned();
        let live = host.app().coverage_mode() == CoverageMode::Live;
        let total_declared_lines = host.app().code_model().total_lines();
        host.set_sink(sink.clone());
        let clock = VirtualClock::with_budget_minutes(config.budget_minutes);
        let budget_ms = clock.budget_ms();
        let mut browser =
            Browser::with_faults(host, clock, seed, config.cost.clone(), config.faults.clone());
        browser.set_sink(sink.clone());
        crawler.get().attach_sink(sink.clone());

        sink.emit_with(|| Event::RunStarted {
            app: app_name.clone(),
            crawler: crawler.get_ref().name().to_owned(),
            seed,
            budget_ms,
        });

        let mut series = Vec::new();
        if live {
            // The t = 0 baseline is sampled *before* the first step so the
            // series starts from the pre-crawl coverage (the deployed app
            // with nothing visited yet), not from whatever the first step
            // reached.
            series
                .push(CoverageSample { secs: 0.0, lines: browser.host().harness_lines_covered() });
        }

        Session {
            crawler,
            browser,
            sink,
            app_name,
            seed,
            live,
            record_trace: config.record_trace,
            sample_interval_secs: config.sample_interval_secs,
            total_declared_lines,
            series,
            next_sample: config.sample_interval_secs,
            trace: Vec::new(),
            step_index: 0,
            done: false,
            config: config.clone(),
        }
    }

    /// Captures the complete state of this session as a self-contained
    /// [`SessionCheckpoint`]. Call only *between* steps (never from inside
    /// a step); a session restored from the checkpoint continues
    /// bit-identically — same report, same trace, and an event stream
    /// equal to the uninterrupted run's suffix after a `SessionResumed`
    /// marker.
    ///
    /// # Errors
    ///
    /// When the crawler does not implement
    /// [`Crawler::snapshot_state`](crate::framework::crawler::Crawler::snapshot_state).
    pub fn snapshot(&self) -> Result<SessionCheckpoint, serde::Error> {
        let crawler = self.crawler.get_ref();
        let crawler_state = crawler.snapshot_state().ok_or_else(|| {
            serde::Error::custom(format!(
                "crawler `{}` does not support checkpointing",
                crawler.name()
            ))
        })?;
        Ok(SessionCheckpoint {
            version: CHECKPOINT_VERSION,
            app: self.app_name.clone(),
            crawler: crawler.name().to_owned(),
            seed: self.seed,
            config: self.config.clone(),
            step_index: self.step_index,
            done: self.done,
            next_sample: self.next_sample,
            series: self.series.clone(),
            trace: self.trace.clone(),
            browser: self.browser.snapshot().to_value(),
            crawler_state,
            spans: self.sink.span_snapshot(),
        })
    }

    /// Rebuilds a session from a checkpoint over a *shared* application
    /// model. `crawler` must be freshly built under the checkpoint's name
    /// and seed (e.g. via [`build_crawler`](crate::spec::build_crawler));
    /// its mutable state is overwritten from the checkpoint. The restored
    /// session emits a `SessionResumed` event (not `RunStarted`) and then
    /// continues bit-identically to the interrupted run.
    ///
    /// # Errors
    ///
    /// When the checkpoint's app/crawler names do not match, or any
    /// payload fails validation. Corrupt checkpoints produce errors, never
    /// panics.
    pub fn restore(
        app: Arc<dyn WebApp>,
        crawler: Box<dyn Crawler>,
        checkpoint: &SessionCheckpoint,
        sink: SinkHandle,
    ) -> Result<Session<'static>, serde::Error> {
        let state = BrowserState::from_value(&checkpoint.browser)?;
        let host = AppHost::restore_shared(app, &state.host)?;
        Session::resume(host, CrawlerSlot::Owned(crawler), checkpoint, state, sink)
    }

    /// Owned-model variant of [`Session::restore`], for applications that
    /// are not worth sharing (tests, generated testkit apps).
    ///
    /// # Errors
    ///
    /// As for [`Session::restore`].
    pub fn restore_owned(
        app: Box<dyn WebApp>,
        crawler: Box<dyn Crawler>,
        checkpoint: &SessionCheckpoint,
        sink: SinkHandle,
    ) -> Result<Session<'static>, serde::Error> {
        let state = BrowserState::from_value(&checkpoint.browser)?;
        let host = AppHost::restore_owned(app, &state.host)?;
        Session::resume(host, CrawlerSlot::Owned(crawler), checkpoint, state, sink)
    }

    fn resume(
        mut host: AppHost,
        mut crawler: CrawlerSlot<'static>,
        checkpoint: &SessionCheckpoint,
        state: BrowserState,
        sink: SinkHandle,
    ) -> Result<Session<'static>, serde::Error> {
        if host.app().name() != checkpoint.app {
            return Err(serde::Error::custom(format!(
                "checkpoint is for app `{}`, given `{}`",
                checkpoint.app,
                host.app().name()
            )));
        }
        if crawler.get_ref().name() != checkpoint.crawler {
            return Err(serde::Error::custom(format!(
                "checkpoint is for crawler `{}`, given `{}`",
                checkpoint.crawler,
                crawler.get_ref().name()
            )));
        }
        // Seed the span allocator before any clone is distributed, so the
        // browser, host, and crawler all link into the continued id space.
        let sink = match checkpoint.spans {
            Some((next_id, now_ms)) => sink.with_spans_restored(next_id, now_ms),
            None => sink,
        };
        let live = host.app().coverage_mode() == CoverageMode::Live;
        let total_declared_lines = host.app().code_model().total_lines();
        host.set_sink(sink.clone());
        let mut browser = Browser::restore(
            host,
            checkpoint.seed,
            checkpoint.config.cost.clone(),
            checkpoint.config.faults.clone(),
            &state,
        );
        browser.set_sink(sink.clone());
        crawler.get().restore_state(&checkpoint.crawler_state)?;
        crawler.get().attach_sink(sink.clone());

        sink.emit_with(|| Event::SessionResumed {
            app: checkpoint.app.clone(),
            crawler: checkpoint.crawler.clone(),
            seed: checkpoint.seed,
            step: checkpoint.step_index,
            t_ms: browser.clock().elapsed_ms(),
        });

        Ok(Session {
            crawler,
            browser,
            sink,
            app_name: checkpoint.app.clone(),
            seed: checkpoint.seed,
            live,
            record_trace: checkpoint.config.record_trace,
            sample_interval_secs: checkpoint.config.sample_interval_secs,
            total_declared_lines,
            series: checkpoint.series.clone(),
            next_sample: checkpoint.next_sample,
            trace: checkpoint.trace.clone(),
            step_index: checkpoint.step_index,
            done: checkpoint.done,
            config: checkpoint.config.clone(),
        })
    }

    /// Performs one engine iteration: charge the crawler's policy
    /// overhead, execute one decision + interaction, emit step events,
    /// and advance the live coverage series. Exactly the loop body of the
    /// one-shot engine; a session stepped to completion and
    /// [finished](Session::finish) is byte-identical to
    /// [`run_crawl`](crate::framework::engine::run_crawl).
    pub fn step(&mut self) -> SessionStatus {
        if self.done {
            return SessionStatus::Finished;
        }
        if self.browser.clock().expired() {
            self.done = true;
            return SessionStatus::Finished;
        }
        let step_start_ms = self.browser.clock().elapsed_ms();
        let step_span = self.sink.span_open(Phase::Step, step_start_ms);
        let crawler = self.crawler.get();
        let policy_ms = crawler.policy_overhead_ms(self.browser.cost_model());
        self.browser.charge_policy_overhead(policy_ms);
        self.sink.span_leaf(Phase::PolicyChoose, step_start_ms, policy_ms);
        let step_index = self.step_index;
        let t_ms = self.browser.clock().elapsed_ms();
        self.sink.emit_with(|| Event::StepStarted { step: step_index, t_ms, policy_ms });
        match crawler.step(&mut self.browser) {
            // The action label is a `Cow`: on the hot path (no sink, no
            // trace) it is never turned into a `String`, so a step with a
            // static label allocates nothing here.
            Ok(StepReport { action, reward }) => {
                if let Some(reward) = reward {
                    self.sink.emit_with(|| Event::RewardComputed {
                        step: step_index,
                        action: action.clone().into_owned(),
                        reward,
                    });
                }
                if self.sink.is_active() {
                    self.sink.emit(Event::StepFinished {
                        step: step_index,
                        t_ms: self.browser.clock().elapsed_ms(),
                        action: action.clone().into_owned(),
                        reward,
                        interactions: self.browser.interaction_count(),
                        lines: self.browser.host().harness_lines_covered(),
                        distinct_urls: self.crawler.get_ref().distinct_urls() as u64,
                    });
                }
                self.step_index += 1;
                if self.record_trace {
                    self.trace.push(TraceEntry {
                        secs: self.browser.clock().elapsed_secs(),
                        action: action.into_owned(),
                        reward,
                    });
                }
            }
            Err(CrawlEnd::BudgetExhausted) | Err(CrawlEnd::Stuck) => {
                self.done = true;
                self.sink.span_close(step_span, self.browser.clock().elapsed_ms());
                return SessionStatus::Finished;
            }
        }
        if self.live {
            let now = self.browser.clock().elapsed_secs();
            while self.next_sample <= now {
                self.series.push(CoverageSample {
                    secs: self.next_sample,
                    lines: self.browser.host().harness_lines_covered(),
                });
                self.next_sample += self.sample_interval_secs;
            }
        }
        self.sink.span_close(step_span, self.browser.clock().elapsed_ms());
        SessionStatus::Running
    }

    /// Whether the session has ended (budget expiry or a stuck crawler).
    pub fn is_finished(&self) -> bool {
        self.done
    }

    /// Steps executed so far.
    pub fn steps_taken(&self) -> u64 {
        self.step_index
    }

    /// Virtual seconds consumed so far.
    pub fn elapsed_secs(&self) -> f64 {
        self.browser.clock().elapsed_secs()
    }

    /// The seed this session runs under.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The application under crawl.
    pub fn app_name(&self) -> &str {
        &self.app_name
    }

    /// The crawler's identifier.
    pub fn crawler_name(&self) -> &str {
        self.crawler.get_ref().name()
    }

    /// Injected-fault count so far (all zeros without a fault plan).
    pub fn faults_injected(&self) -> u64 {
        self.browser.fault_stats().injected
    }

    /// Runs the session to completion.
    pub fn run(&mut self) -> &mut Self {
        while self.step().is_running() {}
        self
    }

    /// Seals the run and assembles the [`CrawlReport`] — the exact
    /// post-loop epilogue of the one-shot engine. Any remaining budget is
    /// consumed first (stepping until the session ends), so
    /// `Session::new(..).finish()` equals `run_crawl(..)`.
    pub fn finish(mut self) -> CrawlReport {
        self.run();
        let interactions = self.browser.interaction_count();
        let elapsed_secs = self.browser.clock().elapsed_secs();
        if self.live {
            // Close the series with a sample at the moment the run
            // actually ended (budget expiry or the crawler getting stuck),
            // so the curve spans the whole budget instead of stopping at
            // the last crossed interval boundary.
            let lines = self.browser.host().harness_lines_covered();
            if self.series.last().is_none_or(|s| s.secs < elapsed_secs) {
                self.series.push(CoverageSample { secs: elapsed_secs, lines });
            }
        }
        let step_index = self.step_index;
        self.sink.emit_with(|| Event::RunFinished {
            t_ms: self.browser.clock().elapsed_ms(),
            steps: step_index,
            interactions,
            lines: self.browser.host().harness_lines_covered(),
        });
        let fault_stats = self.browser.fault_stats().clone();
        let phase = *self.browser.phase_totals();
        let host = self.browser.finish();
        let tracker = host.tracker();
        let covered_lines: Vec<(u32, u32)> =
            tracker.covered_lines().map(|(f, l)| (f.index(), l)).collect();

        CrawlReport {
            crawler: self.crawler.get_ref().name().to_owned(),
            app: self.app_name,
            seed: self.seed,
            interactions,
            final_lines_covered: tracker.lines_covered_unchecked(),
            total_declared_lines: self.total_declared_lines,
            coverage_series: self.series,
            covered_lines,
            distinct_urls: self.crawler.get_ref().distinct_urls(),
            state_count: self.crawler.get_ref().state_count(),
            elapsed_secs,
            trace: self.trace,
            faults: fault_stats,
            phase,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::engine::run_crawl;
    use crate::spec::build_crawler;
    use mak_websim::apps;

    fn short() -> EngineConfig {
        EngineConfig::with_budget_minutes(1.0)
    }

    #[test]
    fn sessions_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Session<'static>>();
        assert_send_sync::<SessionStatus>();
    }

    #[test]
    fn stepped_session_matches_one_shot_engine() {
        let cfg = short();
        let mut session = Session::new(
            apps::build("addressbook").unwrap(),
            build_crawler("mak", 3).unwrap(),
            &cfg,
            3,
        );
        let mut steps = 0u64;
        while session.step().is_running() {
            steps += 1;
            assert_eq!(session.steps_taken(), steps);
        }
        assert!(session.is_finished());
        let stepped = session.finish();

        let mut crawler = build_crawler("mak", 3).unwrap();
        let oneshot = run_crawl(&mut *crawler, apps::build("addressbook").unwrap(), &cfg, 3);
        assert_eq!(stepped, oneshot);
    }

    #[test]
    fn finish_consumes_any_remaining_budget() {
        let cfg = short();
        let mut session = Session::new(
            apps::build("addressbook").unwrap(),
            build_crawler("bfs", 5).unwrap(),
            &cfg,
            5,
        );
        // Take only a handful of steps, then finish: the epilogue must
        // first run the session to its end, matching the one-shot path.
        for _ in 0..5 {
            assert!(session.step().is_running());
        }
        let early_finished = session.finish();
        let mut crawler = build_crawler("bfs", 5).unwrap();
        let oneshot = run_crawl(&mut *crawler, apps::build("addressbook").unwrap(), &cfg, 5);
        assert_eq!(early_finished, oneshot);
    }

    #[test]
    fn step_after_end_is_an_idempotent_no_op() {
        let cfg = EngineConfig::with_budget_minutes(0.25);
        let mut session = Session::new(
            apps::build("vanilla").unwrap(),
            build_crawler("random", 2).unwrap(),
            &cfg,
            2,
        );
        session.run();
        let steps = session.steps_taken();
        for _ in 0..3 {
            assert_eq!(session.step(), SessionStatus::Finished);
        }
        assert_eq!(session.steps_taken(), steps);
    }

    #[test]
    fn snapshot_restore_continues_bit_identically_for_every_crawler() {
        // The durability contract at its core: snapshot mid-run, rebuild
        // from the serialized checkpoint, and the restored session's final
        // report is byte-identical to never having stopped. Exercised for
        // all six registry crawlers plus the ensemble extension, with
        // traces recorded so per-step actions and rewards are compared too.
        let mut cfg = EngineConfig::with_budget_minutes(1.0);
        cfg.record_trace = true;
        for crawler in ["mak", "webexplor", "qexplore", "bfs", "dfs", "random", "mak-ensemble2"] {
            let seed = 11;
            let app = apps::build_shared("phpbb2").unwrap();
            let uninterrupted = Session::with_shared_app(
                app.clone(),
                build_crawler(crawler, seed).unwrap(),
                &cfg,
                seed,
            )
            .finish();

            let mut session = Session::with_shared_app(
                app.clone(),
                build_crawler(crawler, seed).unwrap(),
                &cfg,
                seed,
            );
            for _ in 0..7 {
                assert!(session.step().is_running(), "{crawler} ended too early");
            }
            let checkpoint = session.snapshot().unwrap();
            drop(session);

            // Round-trip through JSON: what the serving layer writes to
            // disk is what a restore actually sees.
            let json = serde_json::to_string(&checkpoint.to_value()).unwrap();
            let back = SessionCheckpoint::from_value(&serde_json::from_str(&json).unwrap())
                .unwrap_or_else(|e| panic!("{crawler}: {e}"));
            assert_eq!(back, checkpoint, "{crawler} checkpoint JSON round-trip");

            let restored = Session::restore(
                app,
                build_crawler(crawler, seed).unwrap(),
                &back,
                SinkHandle::none(),
            )
            .unwrap_or_else(|e| panic!("{crawler}: {e}"));
            assert_eq!(restored.steps_taken(), 7);
            assert_eq!(restored.finish(), uninterrupted, "{crawler} diverged after restore");
        }
    }

    #[test]
    fn snapshot_restore_is_bit_identical_under_heavy_faults() {
        let mut cfg = EngineConfig::with_budget_minutes(1.0);
        cfg.record_trace = true;
        cfg.faults = mak_browser::fault::FaultPlan::profile("heavy").unwrap();
        for crawler in ["mak", "qexplore"] {
            let seed = 23;
            let app = apps::build_shared("oscommerce2").unwrap();
            let uninterrupted = Session::with_shared_app(
                app.clone(),
                build_crawler(crawler, seed).unwrap(),
                &cfg,
                seed,
            )
            .finish();
            let mut session = Session::with_shared_app(
                app.clone(),
                build_crawler(crawler, seed).unwrap(),
                &cfg,
                seed,
            );
            for _ in 0..9 {
                assert!(session.step().is_running());
            }
            let checkpoint = session.snapshot().unwrap();
            let restored = Session::restore(
                app,
                build_crawler(crawler, seed).unwrap(),
                &checkpoint,
                SinkHandle::none(),
            )
            .unwrap();
            assert_eq!(restored.finish(), uninterrupted, "{crawler} under heavy faults");
        }
    }

    #[test]
    fn restore_refuses_mismatched_identity() {
        let cfg = short();
        let mut session = Session::new(
            apps::build("addressbook").unwrap(),
            build_crawler("mak", 3).unwrap(),
            &cfg,
            3,
        );
        session.step();
        let checkpoint = session.snapshot().unwrap();
        let wrong_app = Session::restore(
            apps::build_shared("vanilla").unwrap(),
            build_crawler("mak", 3).unwrap(),
            &checkpoint,
            SinkHandle::none(),
        );
        assert!(wrong_app.is_err(), "app name mismatch must be rejected");
        let wrong_crawler = Session::restore(
            apps::build_shared("addressbook").unwrap(),
            build_crawler("bfs", 3).unwrap(),
            &checkpoint,
            SinkHandle::none(),
        );
        assert!(wrong_crawler.is_err(), "crawler name mismatch must be rejected");
    }

    #[test]
    fn shared_app_sessions_match_owned_ones() {
        let cfg = short();
        let shared = apps::build_shared("phpbb2").unwrap();
        let a = Session::with_shared_app(shared.clone(), build_crawler("mak", 9).unwrap(), &cfg, 9)
            .finish();
        let b =
            Session::with_shared_app(shared, build_crawler("mak", 9).unwrap(), &cfg, 9).finish();
        let mut crawler = build_crawler("mak", 9).unwrap();
        let owned = run_crawl(&mut *crawler, apps::build("phpbb2").unwrap(), &cfg, 9);
        assert_eq!(a, owned, "shared-model session equals owned-model run");
        assert_eq!(a, b, "two sessions over one shared model do not interfere");
    }
}
