//! The crawler interface.

use crate::framework::checkpoint::CrawlerState;
use mak_browser::client::Browser;
use mak_browser::cost::CostModel;
use mak_obs::sink::SinkHandle;
use std::borrow::Cow;
use std::fmt;

/// Why a crawl step could not be performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrawlEnd {
    /// The virtual time budget is exhausted; the run is over.
    BudgetExhausted,
    /// The crawler has no executable action left anywhere (degenerate
    /// applications only — the engine stops the run).
    Stuck,
}

impl fmt::Display for CrawlEnd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrawlEnd::BudgetExhausted => write!(f, "time budget exhausted"),
            CrawlEnd::Stuck => write!(f, "no executable actions remain"),
        }
    }
}

/// What one successful step did, for tracing and tests.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Human-readable label of the chosen action (e.g. `"Head"`, an element
    /// signature, …). A `Cow` so crawlers with a fixed action vocabulary
    /// (MAK's three arm names) report it without a per-step allocation;
    /// the engine materializes a `String` only when a trace or event sink
    /// actually consumes the label.
    pub action: Cow<'static, str>,
    /// The reward fed to the policy for this step, if the crawler learns.
    pub reward: Option<f64>,
}

/// A web crawler runnable by the [engine](crate::framework::engine).
///
/// One [`step`](Crawler::step) performs one decision and (normally) one
/// atomic element interaction via the [`Browser`]. Implementations manage
/// their own restarts (re-opening the seed URL when their trajectory dead-
/// ends), mirroring how the paper's tools run unattended for 30 minutes.
///
/// `Send + Sync` supertraits: a crawler lives inside a
/// [`Session`](crate::framework::session::Session) that the serving
/// layer's work-stealing scheduler migrates freely between worker
/// threads. All crawler state is plain data (deques, Q-tables, seeded
/// RNGs), so the bounds are free for every implementation in the
/// workspace.
pub trait Crawler: Send + Sync {
    /// Short identifier: `"mak"`, `"webexplor"`, `"qexplore"`, `"bfs"`, …
    fn name(&self) -> &str;

    /// Performs one decision + interaction.
    ///
    /// # Errors
    ///
    /// [`CrawlEnd::BudgetExhausted`] when the browser refuses further
    /// navigation; [`CrawlEnd::Stuck`] when no executable action remains.
    fn step(&mut self, browser: &mut Browser) -> Result<StepReport, CrawlEnd>;

    /// The per-decision policy overhead this crawler pays (§V-D): state-
    /// based crawlers' abstraction and similarity machinery scales with
    /// their state table, stateless MAK pays a constant.
    fn policy_overhead_ms(&self, cost: &CostModel) -> f64 {
        cost.stateless_policy_cost()
    }

    /// Number of abstracted states created so far, for state-based
    /// crawlers; `None` for stateless ones.
    fn state_count(&self) -> Option<usize> {
        None
    }

    /// Number of distinct same-origin URLs observed so far (link coverage,
    /// §IV-C).
    fn distinct_urls(&self) -> usize;

    /// Observability: the engine hands every crawler the run's event sink
    /// before the first step. Crawlers with internal decision structure
    /// (MAK's arm choices and deque, the ensemble's agents) emit
    /// `ActionChosen` / `DequeDepth` and forward the sink to their
    /// policies; the default implementation ignores it.
    fn attach_sink(&mut self, sink: SinkHandle) {
        let _ = sink;
    }

    /// Durability: the crawler's complete mutable state as a
    /// [`CrawlerState`], captured between steps. `None` (the default)
    /// means the crawler does not support checkpointing and sessions
    /// running it cannot be snapshotted.
    fn snapshot_state(&self) -> Option<CrawlerState> {
        None
    }

    /// Durability: overwrites this (freshly built) crawler's mutable state
    /// from a [`CrawlerState`] captured by
    /// [`snapshot_state`](Crawler::snapshot_state) on a crawler of the
    /// same configuration. After a successful restore the crawler behaves
    /// bit-identically to the one that was snapshotted.
    ///
    /// # Errors
    ///
    /// When `state` is the wrong variant for this crawler or its payload
    /// is malformed; the crawler is left unusable and must be discarded.
    /// Never panics on corrupt input.
    fn restore_state(&mut self, state: &CrawlerState) -> Result<(), serde::Error> {
        let _ = state;
        Err(serde::Error::custom(format!(
            "crawler `{}` does not support checkpoint restore",
            self.name()
        )))
    }
}
