//! The crawl engine: runs a crawler against a hosted application under the
//! virtual time budget and produces a measurable report.
//!
//! The engine is the outer loop of Algorithm 2 plus the measurement stack
//! of §V-A: it deploys the application ([`AppHost`]), wraps it in a
//! [`Browser`] with a [`VirtualClock`], charges per-decision policy
//! overhead, and samples the live coverage time series that Fig. 2 plots.

use crate::framework::crawler::Crawler;
use mak_browser::cost::CostModel;
use mak_browser::fault::{FaultPlan, FaultStats};
use mak_obs::sink::SinkHandle;
use mak_obs::span::PhaseTotals;
use mak_websim::server::WebApp;
use serde::{Deserialize, Serialize};

/// Engine parameters for one run.
///
/// The config is serializable and comparable so that run caches can key
/// cached [`CrawlReport`]s on the exact configuration that produced them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Virtual time budget in minutes (the paper uses 30, §V-A.4).
    pub budget_minutes: f64,
    /// Live-coverage sampling interval in seconds (Fig. 2 granularity).
    pub sample_interval_secs: f64,
    /// The browser-side cost model.
    pub cost: CostModel,
    /// When true, every step's action and reward is recorded in
    /// [`CrawlReport::trace`] — useful for debugging crawler behaviour,
    /// at some memory cost.
    pub record_trace: bool,
    /// The deterministic fault schedule (default: no faults). Part of
    /// the config — and therefore of the run-cache key — so a faulty run
    /// can never be served from a clean run's cache entry.
    pub faults: FaultPlan,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            budget_minutes: 30.0,
            sample_interval_secs: 30.0,
            cost: CostModel::default(),
            record_trace: false,
            faults: FaultPlan::none(),
        }
    }
}

impl EngineConfig {
    /// A config with the given budget and default sampling/costs.
    pub fn with_budget_minutes(minutes: f64) -> Self {
        EngineConfig { budget_minutes: minutes, ..Default::default() }
    }
}

/// One recorded step of a traced crawl (see [`EngineConfig::record_trace`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Virtual seconds at which the step completed.
    pub secs: f64,
    /// The crawler's action label (an arm name or element signature).
    pub action: String,
    /// The reward fed to the policy, if the crawler learns.
    pub reward: Option<f64>,
}

/// One point of the live coverage time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageSample {
    /// Virtual seconds since the start of the run.
    pub secs: f64,
    /// Server-side lines covered at that instant.
    pub lines: u64,
}

/// The measurable outcome of one crawl run.
///
/// Serde impls are manual (matching the derive's field order exactly):
/// the `faults` field is emitted only when a fault actually fired, and
/// the `phase` breakdown only when non-empty, so degenerate reports —
/// and anything written before either field existed — keep their prior
/// byte layout and still parse.
#[derive(Debug, Clone, PartialEq)]
pub struct CrawlReport {
    /// Crawler identifier.
    pub crawler: String,
    /// Application identifier.
    pub app: String,
    /// Seed of the run.
    pub seed: u64,
    /// Atomic element interactions performed (§V-D metric).
    pub interactions: u64,
    /// Lines covered at the end of the run.
    pub final_lines_covered: u64,
    /// Total declared server-side lines (coverage-node style denominator).
    pub total_declared_lines: u64,
    /// Live coverage samples (empty for final-mode applications, mirroring
    /// coverage-node's inability to observe mid-run coverage).
    pub coverage_series: Vec<CoverageSample>,
    /// Every covered `(file_index, line)` pair, for union ground-truth
    /// estimation (§V-B).
    pub covered_lines: Vec<(u32, u32)>,
    /// Distinct same-origin URLs gathered (link coverage, §IV-C).
    pub distinct_urls: usize,
    /// Abstracted states created, for state-based crawlers.
    pub state_count: Option<usize>,
    /// Virtual seconds actually consumed.
    pub elapsed_secs: f64,
    /// Per-step trace, populated only under [`EngineConfig::record_trace`].
    pub trace: Vec<TraceEntry>,
    /// Fault/retry/recovery counts (all zeros without a fault plan).
    pub faults: FaultStats,
    /// Where the virtual time went: per-phase totals partitioning
    /// `elapsed_secs` exactly (see `mak_obs::span::PhaseTotals`).
    pub phase: PhaseTotals,
}

impl Serialize for CrawlReport {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("crawler".to_owned(), self.crawler.to_value()),
            ("app".to_owned(), self.app.to_value()),
            ("seed".to_owned(), self.seed.to_value()),
            ("interactions".to_owned(), self.interactions.to_value()),
            ("final_lines_covered".to_owned(), self.final_lines_covered.to_value()),
            ("total_declared_lines".to_owned(), self.total_declared_lines.to_value()),
            ("coverage_series".to_owned(), self.coverage_series.to_value()),
            ("covered_lines".to_owned(), self.covered_lines.to_value()),
            ("distinct_urls".to_owned(), self.distinct_urls.to_value()),
            ("state_count".to_owned(), self.state_count.to_value()),
            ("elapsed_secs".to_owned(), self.elapsed_secs.to_value()),
            ("trace".to_owned(), self.trace.to_value()),
        ];
        if self.faults != FaultStats::default() {
            fields.push(("faults".to_owned(), self.faults.to_value()));
        }
        if self.phase != PhaseTotals::default() {
            fields.push(("phase".to_owned(), self.phase.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for CrawlReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let entries =
            v.as_object().ok_or_else(|| serde::Error::custom("expected CrawlReport object"))?;
        Ok(CrawlReport {
            crawler: serde::__field(entries, "crawler")?,
            app: serde::__field(entries, "app")?,
            seed: serde::__field(entries, "seed")?,
            interactions: serde::__field(entries, "interactions")?,
            final_lines_covered: serde::__field(entries, "final_lines_covered")?,
            total_declared_lines: serde::__field(entries, "total_declared_lines")?,
            coverage_series: serde::__field(entries, "coverage_series")?,
            covered_lines: serde::__field(entries, "covered_lines")?,
            distinct_urls: serde::__field(entries, "distinct_urls")?,
            state_count: serde::__field(entries, "state_count")?,
            elapsed_secs: serde::__field(entries, "elapsed_secs")?,
            trace: serde::__field(entries, "trace")?,
            // Absent in zero-fault reports (and in every pre-fault-layer
            // report): all-zero stats.
            faults: match v.get("faults") {
                Some(stats) => FaultStats::from_value(stats)?,
                None => FaultStats::default(),
            },
            // Absent in pre-profiling reports: an empty breakdown.
            phase: match v.get("phase") {
                Some(phase) => PhaseTotals::from_value(phase)?,
                None => PhaseTotals::default(),
            },
        })
    }
}

/// Runs `crawler` on `app` for the configured budget.
///
/// The run is deterministic in `(crawler state, app, seed, config)`.
///
/// # Examples
///
/// ```
/// use mak::framework::engine::{run_crawl, EngineConfig};
/// use mak::baselines::StaticCrawler;
/// use mak_websim::apps;
///
/// let mut bfs = StaticCrawler::bfs(1);
/// let report = run_crawl(&mut bfs, apps::build("addressbook").unwrap(),
///                        &EngineConfig::with_budget_minutes(1.0), 1);
/// assert!(report.interactions > 0);
/// ```
pub fn run_crawl(
    crawler: &mut dyn Crawler,
    app: Box<dyn WebApp>,
    config: &EngineConfig,
    seed: u64,
) -> CrawlReport {
    run_crawl_with_sink(crawler, app, config, seed, &SinkHandle::none())
}

/// Like [`run_crawl`], but wires `sink` through the whole stack for the
/// duration of the run: the engine emits `RunStarted`, `StepStarted`,
/// `RewardComputed`, `StepFinished`, and `RunFinished`; the [`Browser`],
/// [`AppHost`], and the crawler's policy add their own events (see
/// `mak_obs::event::Event` for the taxonomy).
///
/// Sinks are strictly observational: the returned [`CrawlReport`] is
/// byte-identical to the sink-less run (enforced by the workspace's
/// observability tests), and the event stream itself is a pure function
/// of `(crawler, app, seed, config)` because events carry only
/// virtual-clock time.
pub fn run_crawl_with_sink(
    crawler: &mut dyn Crawler,
    app: Box<dyn WebApp>,
    config: &EngineConfig,
    seed: u64,
    sink: &SinkHandle,
) -> CrawlReport {
    // The whole engine loop lives in `Session` (the resumable state
    // machine the serving layer multiplexes); the one-shot entry point is
    // a session driven to completion, so the two paths cannot drift. The
    // `session_equivalence` differential suite additionally proves the
    // step-driven path byte-identical, reports and traces included.
    crate::framework::session::Session::borrowed(crawler, app, config, seed, sink.clone()).finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::StaticCrawler;
    use mak_websim::apps;

    fn short() -> EngineConfig {
        EngineConfig::with_budget_minutes(2.0)
    }

    #[test]
    fn run_produces_consistent_report() {
        let mut c = StaticCrawler::bfs(3);
        let report = run_crawl(&mut c, apps::build("addressbook").unwrap(), &short(), 3);
        assert_eq!(report.crawler, "bfs");
        assert_eq!(report.app, "addressbook");
        assert!(report.interactions > 10);
        assert!(report.final_lines_covered > 0);
        assert_eq!(report.covered_lines.len() as u64, report.final_lines_covered);
        assert!(report.distinct_urls > 0);
        assert!(report.elapsed_secs >= 120.0 * 0.9);
    }

    #[test]
    fn live_apps_yield_time_series_final_apps_do_not() {
        let mut c = StaticCrawler::bfs(3);
        let live = run_crawl(&mut c, apps::build("addressbook").unwrap(), &short(), 3);
        assert!(!live.coverage_series.is_empty());
        let mut c2 = StaticCrawler::bfs(3);
        let fin = run_crawl(&mut c2, apps::build("retroboard").unwrap(), &short(), 3);
        assert!(fin.coverage_series.is_empty(), "coverage-node cannot sample mid-run");
        assert!(fin.final_lines_covered > 0);
    }

    #[test]
    fn coverage_series_spans_the_whole_budget() {
        let mut c = StaticCrawler::bfs(3);
        let report = run_crawl(&mut c, apps::build("addressbook").unwrap(), &short(), 3);
        let first = report.coverage_series.first().expect("live series");
        assert_eq!(first.secs, 0.0, "t = 0 baseline is recorded before the first step");
        let last = report.coverage_series.last().expect("live series");
        assert_eq!(last.secs, report.elapsed_secs, "series closes at budget expiry");
        assert_eq!(last.lines, report.final_lines_covered);
    }

    #[test]
    fn coverage_series_is_monotone() {
        let mut c = StaticCrawler::random(9);
        let report = run_crawl(&mut c, apps::build("vanilla").unwrap(), &short(), 9);
        for w in report.coverage_series.windows(2) {
            assert!(w[1].lines >= w[0].lines);
            assert!(w[1].secs > w[0].secs);
        }
    }

    #[test]
    fn trace_is_recorded_only_when_asked() {
        let mut c = StaticCrawler::bfs(4);
        let untraced = run_crawl(&mut c, apps::build("addressbook").unwrap(), &short(), 4);
        assert!(untraced.trace.is_empty());

        let mut cfg = short();
        cfg.record_trace = true;
        let mut c = StaticCrawler::bfs(4);
        let traced = run_crawl(&mut c, apps::build("addressbook").unwrap(), &cfg, 4);
        assert_eq!(traced.trace.len() as u64, traced.interactions);
        for w in traced.trace.windows(2) {
            assert!(w[1].secs >= w[0].secs, "trace times are monotone");
        }
        assert!(traced.trace.iter().all(|t| t.action == "Head"), "bfs always plays Head");
    }

    #[test]
    fn report_phase_breakdown_partitions_elapsed_time() {
        let mut c = StaticCrawler::bfs(3);
        let report = run_crawl(&mut c, apps::build("addressbook").unwrap(), &short(), 3);
        let elapsed_ms = report.elapsed_secs * 1000.0;
        let total = report.phase.total_ms();
        assert!(
            (total - elapsed_ms).abs() <= 1e-6 * elapsed_ms,
            "phase buckets must sum to the elapsed budget: {total} vs {elapsed_ms}",
        );
        assert!(report.phase.policy_ms > 0.0, "every step charges policy overhead");
        assert!(report.phase.render_ms > 0.0);
    }

    #[test]
    fn report_phase_breakdown_survives_serde_and_its_absence() {
        let mut c = StaticCrawler::bfs(3);
        let report = run_crawl(&mut c, apps::build("addressbook").unwrap(), &short(), 3);
        let json = serde_json::to_string(&report).unwrap();
        let back: CrawlReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report, "phase field round-trips");

        // A pre-profiling report (no `phase` key) still parses, with an
        // empty breakdown.
        let mut stripped = report.clone();
        stripped.phase = PhaseTotals::default();
        let legacy_json = serde_json::to_string(&stripped).unwrap();
        assert!(!legacy_json.contains("\"phase\""), "default breakdown is omitted");
        let legacy: CrawlReport = serde_json::from_str(&legacy_json).unwrap();
        assert_eq!(legacy.phase, PhaseTotals::default());
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        let run = |seed| {
            let mut c = StaticCrawler::random(seed);
            run_crawl(&mut c, apps::build("phpbb2").unwrap(), &short(), seed)
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.final_lines_covered, b.final_lines_covered);
        assert_eq!(a.interactions, b.interactions);
        assert_eq!(a.distinct_urls, b.distinct_urls);
        let c = run(6);
        assert!(
            c.final_lines_covered != a.final_lines_covered || c.interactions != a.interactions,
            "different seeds should (almost surely) differ"
        );
    }
}
