//! WebExplor's state abstraction: exact URL + HTML-tag-sequence matching.

use crate::framework::qcrawler::StateAbstraction;
use mak_browser::page::Page;
use mak_websim::dom::{DocShared, Tag};
use serde::Serialize as _;
use std::collections::HashMap;
use std::fmt::Write;
use std::sync::Arc;

/// Fraction of positional tag mismatches (and length difference) tolerated
/// by the pattern-matching similarity before a new state is created.
const TAG_TOLERANCE: f64 = 0.10;

#[derive(Debug)]
struct StateEntry {
    /// The page derivations (tag sequence lives here). Holding the `Arc`
    /// instead of a cloned `Vec<Tag>` makes revisits of a cached page a
    /// pointer comparison.
    shared: Arc<DocShared>,
}

/// WebExplor's pre-processing + similarity functions (§III-A):
///
/// 1. pre-process a page into (URL, tag sequence);
/// 2. exact-match the URL against known states — a *new* URL is always a
///    new state (this is what explodes on HotCRP-style alias links);
/// 3. among states with the same URL, compare tag sequences with a
///    tolerant pattern match; if none is close enough, create a new state
///    anyway.
#[derive(Debug, Default)]
pub struct WebExplorState {
    entries: Vec<StateEntry>,
    by_url: HashMap<String, Vec<usize>>,
    /// Reusable key buffer: the exact (non-normalized) URL string is
    /// rebuilt here each lookup, so the hit path allocates nothing.
    url_key: String,
}

impl WebExplorState {
    /// Creates an empty state store.
    pub fn new() -> Self {
        Self::default()
    }

    fn similar(a: &[Tag], b: &[Tag]) -> bool {
        let (la, lb) = (a.len(), b.len());
        let max = la.max(lb);
        if max == 0 {
            return true;
        }
        if (la as f64 - lb as f64).abs() / max as f64 > TAG_TOLERANCE {
            return false;
        }
        let min = la.min(lb);
        let mismatches = a.iter().zip(b.iter()).filter(|(x, y)| x != y).count() + (max - min);
        (mismatches as f64 / max as f64) <= TAG_TOLERANCE
    }
}

impl StateAbstraction for WebExplorState {
    fn state_of(&mut self, page: &Page) -> u64 {
        self.url_key.clear();
        write!(self.url_key, "{}", page.url()).expect("writing to a String cannot fail");
        let shared = page.shared();

        if let Some(candidates) = self.by_url.get(self.url_key.as_str()) {
            for &idx in candidates {
                let entry = &self.entries[idx];
                // Pointer-equal derivations are trivially similar (identical
                // tag sequences), so revisits of a cached page skip the
                // positional comparison entirely.
                if Arc::ptr_eq(&entry.shared, shared)
                    || Self::similar(entry.shared.tags(), shared.tags())
                {
                    return idx as u64;
                }
            }
        }
        let idx = self.entries.len();
        self.entries.push(StateEntry { shared: Arc::clone(shared) });
        self.by_url.entry(self.url_key.clone()).or_default().push(idx);
        idx as u64
    }

    fn state_count(&self) -> usize {
        self.entries.len()
    }

    fn kind(&self) -> &'static str {
        "webexplor"
    }

    fn snapshot_value(&self) -> serde::Value {
        // Entries carry only their tag sequence; the owning URL lives in
        // the index. Emit one `{url, tags}` object per entry, in state-id
        // order, so the payload is a pure function of the table's content.
        let mut urls: Vec<&str> = vec![""; self.entries.len()];
        for (url, idxs) in &self.by_url {
            for &i in idxs {
                urls[i] = url;
            }
        }
        serde::Value::Array(
            self.entries
                .iter()
                .zip(&urls)
                .map(|(entry, url)| {
                    serde::Value::Object(vec![
                        ("url".to_owned(), serde::Value::Str((*url).to_owned())),
                        ("tags".to_owned(), entry.shared.tags().to_value()),
                    ])
                })
                .collect(),
        )
    }

    fn restore_value(&mut self, value: &serde::Value) -> Result<(), serde::Error> {
        let items = match value {
            serde::Value::Array(items) => items,
            other => {
                return Err(serde::Error::custom(format!(
                    "expected WebExplor state array, got {other:?}"
                )))
            }
        };
        let mut entries = Vec::with_capacity(items.len());
        let mut by_url: HashMap<String, Vec<usize>> = HashMap::new();
        for (idx, item) in items.iter().enumerate() {
            let obj = item
                .as_object()
                .ok_or_else(|| serde::Error::custom("expected WebExplor state entry object"))?;
            let url: String = serde::__field(obj, "url")?;
            let tags: Vec<Tag> = serde::__field(obj, "tags")?;
            by_url.entry(url).or_default().push(idx);
            // Restored entries hold a fresh derivation: `state_of`'s
            // pointer-equality fast path misses, but identical tag
            // sequences compare similar, so the returned ids — and hence
            // the crawl — are unchanged.
            entries.push(StateEntry { shared: Arc::new(DocShared::from_parts(Vec::new(), tags)) });
        }
        self.entries = entries;
        self.by_url = by_url;
        self.url_key.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mak_websim::dom::{Document, Element, Tag};
    use mak_websim::http::Status;

    fn page(url: &str, extra_divs: usize) -> Page {
        let mut body = Element::new(Tag::Body);
        for _ in 0..extra_divs {
            body = body.child(Element::new(Tag::Div));
        }
        Page::from_document(Status::Ok, Document::new(url.parse().unwrap(), "t", body))
    }

    #[test]
    fn same_url_same_tags_is_one_state() {
        let mut s = WebExplorState::new();
        let a = s.state_of(&page("http://h/p", 3));
        let b = s.state_of(&page("http://h/p", 3));
        assert_eq!(a, b);
        assert_eq!(s.state_count(), 1);
    }

    #[test]
    fn new_url_is_always_a_new_state() {
        // The Fig. 1 (top) failure: two alias URLs of the same page.
        let mut s = WebExplorState::new();
        let a = s.state_of(&page("http://h/review?p=8&r=23-8", 3));
        let b = s.state_of(&page("http://h/review?p=8&m=re", 3));
        assert_ne!(a, b, "exact URL matching duplicates states for aliases");
        assert_eq!(s.state_count(), 2);
    }

    #[test]
    fn small_tag_drift_is_tolerated() {
        let mut s = WebExplorState::new();
        let a = s.state_of(&page("http://h/p", 40));
        let b = s.state_of(&page("http://h/p", 42)); // ~5% longer
        assert_eq!(a, b, "pattern matching tolerates small differences");
    }

    #[test]
    fn large_tag_drift_creates_a_new_state() {
        let mut s = WebExplorState::new();
        let a = s.state_of(&page("http://h/p", 10));
        let b = s.state_of(&page("http://h/p", 30));
        assert_ne!(a, b);
    }

    #[test]
    fn bodyless_pages_are_states_too() {
        let mut s = WebExplorState::new();
        let p = Page::empty(Status::NotFound, "http://h/missing".parse().unwrap());
        let a = s.state_of(&p);
        let b = s.state_of(&p);
        assert_eq!(a, b);
        assert_eq!(s.state_count(), 1);
    }
}
