//! The WebExplor baseline (Zheng et al., ICSE 2021), reimplemented per the
//! paper's description (Table I and §III):
//!
//! - **state abstraction**: a page is the pair (exact URL, sequence of HTML
//!   tags); similarity first requires an exact URL match, then compares tag
//!   sequences with a pattern-matching tolerance;
//! - **reward**: curiosity — inverse-square-root visit counters per
//!   state/action pair;
//! - **policy update**: standard Bellman Q-learning;
//! - **action selection**: Gumbel-softmax over the current state's
//!   Q-values.
//!
//! The DFA guidance of the original tool is intentionally omitted, exactly
//! as in the paper's evaluation (§V-A.2 assumption iii).

pub mod state;

pub use state::WebExplorState;

use crate::framework::qcrawler::{ActionSelection, CuriosityReward, QCrawler, UpdateRule};

/// Builds the WebExplor crawler with the given RNG seed.
///
/// # Examples
///
/// ```
/// use mak::framework::engine::{run_crawl, EngineConfig};
/// use mak_websim::apps;
///
/// let mut crawler = mak::webexplor::webexplor(7);
/// let report = run_crawl(&mut crawler, apps::build("addressbook").unwrap(),
///                        &EngineConfig::with_budget_minutes(1.0), 7);
/// assert_eq!(report.crawler, "webexplor");
/// assert!(report.state_count.unwrap() > 0);
/// ```
pub fn webexplor(seed: u64) -> QCrawler<WebExplorState> {
    QCrawler::new(
        "webexplor",
        WebExplorState::new(),
        ActionSelection::GumbelSoftmax { temperature: 0.2 },
        UpdateRule::Bellman,
        CuriosityReward::InverseSqrt,
        // γ = 0.2 with first-use reward 1/√2 puts the reachable Q ceiling at
        // ≈ 0.88; the optimistic init 0.9 therefore stays strictly above
        // every used action, so Gumbel-softmax keeps favoring fresh ones.
        mak_bandit::qlearning::QTable::new(0.5, 0.2, 0.9),
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::crawler::Crawler;
    use mak_browser::client::Browser;
    use mak_browser::clock::VirtualClock;
    use mak_websim::apps;
    use mak_websim::server::AppHost;

    #[test]
    fn crawls_and_builds_states() {
        let host = AppHost::new(apps::build("addressbook").unwrap());
        let mut b = Browser::new(host, VirtualClock::with_budget_minutes(5.0), 1);
        let mut c = webexplor(1);
        for _ in 0..50 {
            if c.step(&mut b).is_err() {
                break;
            }
        }
        assert!(c.state_count().unwrap() > 3);
        assert!(c.distinct_urls() > 3);
        assert!(b.interaction_count() > 30);
    }

    #[test]
    fn url_aliases_explode_webexplor_states() {
        // Fig. 1 (top): on HotCRP-like aliased URLs, exact URL matching
        // manufactures a distinct state for every alias of the same page.
        let host = AppHost::new(apps::build("hotcrp").unwrap());
        let mut b = Browser::new(host, VirtualClock::with_budget_minutes(10.0), 2);
        let mut c = webexplor(2);
        let mut steps = 0;
        while steps < 300 && c.step(&mut b).is_ok() {
            steps += 1;
        }
        let states = c.state_count().unwrap();
        assert!(
            states > 60,
            "alias URLs should inflate the state table: {states} states in {steps} steps"
        );
    }

    #[test]
    fn policy_overhead_grows_with_states() {
        let cost = mak_browser::cost::CostModel::default();
        let host = AppHost::new(apps::build("addressbook").unwrap());
        let mut b = Browser::new(host, VirtualClock::with_budget_minutes(5.0), 3);
        let mut c = webexplor(3);
        let before = c.policy_overhead_ms(&cost);
        for _ in 0..40 {
            if c.step(&mut b).is_err() {
                break;
            }
        }
        assert!(c.policy_overhead_ms(&cost) > before);
    }
}
