//! Non-learning baseline crawlers: BFS, DFS, Random (§V-C).
//!
//! The ablation of §V-C compares MAK against the three classical
//! navigation strategies. As the paper notes, "these strategies can be
//! simulated with MAK by always executing one of its three actions Head,
//! Tail, and Random" — which is exactly how [`StaticCrawler`] is built, so
//! the comparison isolates the learning component.

use crate::framework::crawler::{CrawlEnd, Crawler, StepReport};
use crate::mak::crawler::MakCrawler;
use crate::mak::deque::Arm;
use mak_browser::client::Browser;
use mak_browser::cost::CostModel;

/// A non-learning crawler pinned to one navigation strategy.
#[derive(Debug)]
pub struct StaticCrawler {
    inner: MakCrawler,
}

impl StaticCrawler {
    /// Breadth-first search: always plays `Head`.
    pub fn bfs(seed: u64) -> Self {
        StaticCrawler { inner: MakCrawler::with_fixed_arm("bfs", Arm::Head, seed) }
    }

    /// Depth-first search: always plays `Tail`.
    pub fn dfs(seed: u64) -> Self {
        StaticCrawler { inner: MakCrawler::with_fixed_arm("dfs", Arm::Tail, seed) }
    }

    /// Random strategy: always plays `Random`.
    pub fn random(seed: u64) -> Self {
        StaticCrawler { inner: MakCrawler::with_fixed_arm("random", Arm::Random, seed) }
    }

    /// Builds the static crawler named `name` (`"bfs"`, `"dfs"`,
    /// `"random"`), or `None` for an unknown name.
    pub fn by_name(name: &str, seed: u64) -> Option<Self> {
        match name {
            "bfs" => Some(Self::bfs(seed)),
            "dfs" => Some(Self::dfs(seed)),
            "random" => Some(Self::random(seed)),
            _ => None,
        }
    }
}

impl Crawler for StaticCrawler {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn step(&mut self, browser: &mut Browser) -> Result<StepReport, CrawlEnd> {
        self.inner.step(browser)
    }

    fn policy_overhead_ms(&self, cost: &CostModel) -> f64 {
        // No policy at all: cheaper than even the stateless learner.
        cost.stateless_policy_cost() * 0.5
    }

    fn distinct_urls(&self) -> usize {
        self.inner.distinct_urls()
    }

    fn attach_sink(&mut self, sink: mak_obs::sink::SinkHandle) {
        self.inner.attach_sink(sink);
    }

    fn snapshot_state(&self) -> Option<crate::framework::checkpoint::CrawlerState> {
        self.inner.snapshot_state()
    }

    fn restore_state(
        &mut self,
        state: &crate::framework::checkpoint::CrawlerState,
    ) -> Result<(), serde::Error> {
        self.inner.restore_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::engine::{run_crawl, EngineConfig};
    use mak_websim::apps;

    #[test]
    fn by_name_builds_all_three() {
        assert_eq!(StaticCrawler::by_name("bfs", 1).unwrap().name(), "bfs");
        assert_eq!(StaticCrawler::by_name("dfs", 1).unwrap().name(), "dfs");
        assert_eq!(StaticCrawler::by_name("random", 1).unwrap().name(), "random");
        assert!(StaticCrawler::by_name("astar", 1).is_none());
    }

    #[test]
    fn strategies_visit_different_frontiers() {
        let cfg = EngineConfig::with_budget_minutes(3.0);
        let mut bfs = StaticCrawler::bfs(1);
        let mut dfs = StaticCrawler::dfs(1);
        let b = run_crawl(&mut bfs, apps::build("wordpress").unwrap(), &cfg, 1);
        let d = run_crawl(&mut dfs, apps::build("wordpress").unwrap(), &cfg, 1);
        assert_ne!(
            b.final_lines_covered, d.final_lines_covered,
            "BFS and DFS must explore differently on a deep/wide app"
        );
    }

    #[test]
    fn dfs_sinks_into_pagination_traps() {
        // WordPress has long near-empty archive chains: depth-first should
        // pay for them with lower coverage than breadth-first on average.
        let cfg = EngineConfig::with_budget_minutes(10.0);
        let mean = |make: fn(u64) -> StaticCrawler| -> f64 {
            (1..=3u64)
                .map(|seed| {
                    let mut c = make(seed);
                    run_crawl(&mut c, apps::build("wordpress").unwrap(), &cfg, seed)
                        .final_lines_covered as f64
                })
                .sum::<f64>()
                / 3.0
        };
        let b = mean(StaticCrawler::bfs);
        let d = mean(StaticCrawler::dfs);
        assert!(b > d, "bfs {b} vs dfs {d}");
    }
}
