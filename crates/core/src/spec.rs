//! Table I as data, plus the crawler factory used by the bench harness.

use crate::baselines::StaticCrawler;
use crate::framework::crawler::Crawler;
use crate::mak::MakCrawler;
use crate::qexplore::qexplore;
use crate::webexplor::webexplor;
use serde::{Deserialize, Serialize};

/// One row of Table I: the components of a reviewed crawler.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrawlerSpec {
    /// Tool name.
    pub tool: &'static str,
    /// State abstraction.
    pub state_abstraction: &'static str,
    /// Action definition.
    pub action_definition: &'static str,
    /// Reward.
    pub reward: &'static str,
    /// Policy update.
    pub policy_update: &'static str,
    /// Action selection.
    pub action_selection: &'static str,
}

/// The three rows of Table I.
pub fn table1() -> Vec<CrawlerSpec> {
    vec![
        CrawlerSpec {
            tool: "WebExplor",
            state_abstraction: "URL + sequence of HTML tags",
            action_definition: "interactable DOM elements",
            reward: "Curiosity",
            policy_update: "Q-Learning update",
            action_selection: "Gumbel-softmax",
        },
        CrawlerSpec {
            tool: "QExplore",
            state_abstraction: "Sequence of attribute values of interactable DOM elements",
            action_definition: "interactable DOM elements",
            reward: "Curiosity",
            policy_update: "Modified Q-Learning update",
            action_selection: "Maximum Q-value",
        },
        CrawlerSpec {
            tool: "MAK",
            state_abstraction: "Stateless",
            action_definition: "Head, Tail, Random",
            reward: "Link coverage",
            policy_update: "Exp3.1",
            action_selection: "Exp3.1",
        },
    ]
}

/// All crawler names the factory understands: the three RL crawlers first,
/// then the §V-C static baselines.
pub const CRAWLER_NAMES: &[&str] = &["mak", "webexplor", "qexplore", "bfs", "dfs", "random"];

/// The three learning crawlers compared in Fig. 2 and Table II.
pub const RL_CRAWLERS: &[&str] = &["mak", "webexplor", "qexplore"];

/// MAK design-choice variants for the extended ablations (the `ablation2`
/// bench): alternative arm policies, alternative rewards, and a flat
/// (non-leveled) element pool.
pub const MAK_VARIANTS: &[&str] = &[
    "mak-exp3",
    "mak-epsilon",
    "mak-ucb1",
    "mak-thompson",
    "mak-uniform",
    "mak-raw",
    "mak-curiosity",
    "mak-flat",
];

/// Builds the crawler registered under `name`, or `None` for an unknown
/// name.
///
/// # Examples
///
/// ```
/// let crawler = mak::spec::build_crawler("mak", 42).expect("known crawler");
/// assert_eq!(crawler.name(), "mak");
/// assert!(mak::spec::build_crawler("googlebot", 42).is_none());
/// ```
pub fn build_crawler(name: &str, seed: u64) -> Option<Box<dyn Crawler>> {
    use crate::mak::{ArmPolicy, RewardKind};
    const K: usize = 3;
    let std = RewardKind::StandardizedLinkCoverage;
    let crawler: Box<dyn Crawler> = match name {
        "mak" => Box::new(MakCrawler::new(seed)),
        "webexplor" => Box::new(webexplor(seed)),
        "qexplore" => Box::new(qexplore(seed)),
        "bfs" | "dfs" | "random" => Box::new(StaticCrawler::by_name(name, seed)?),
        "mak-exp3" => Box::new(MakCrawler::variant(name, ArmPolicy::exp3(K, 0.1), std, true, seed)),
        "mak-epsilon" => {
            Box::new(MakCrawler::variant(name, ArmPolicy::epsilon_greedy(K, 0.1), std, true, seed))
        }
        "mak-ucb1" => Box::new(MakCrawler::variant(name, ArmPolicy::ucb1(K), std, true, seed)),
        "mak-thompson" => {
            Box::new(MakCrawler::variant(name, ArmPolicy::thompson(K), std, true, seed))
        }
        "mak-uniform" => Box::new(MakCrawler::variant(name, ArmPolicy::Uniform, std, true, seed)),
        "mak-raw" => Box::new(MakCrawler::variant(
            name,
            ArmPolicy::exp31(K),
            RewardKind::RawLinkCoverage,
            true,
            seed,
        )),
        "mak-curiosity" => Box::new(MakCrawler::variant(
            name,
            ArmPolicy::exp31(K),
            RewardKind::Curiosity,
            true,
            seed,
        )),
        "mak-flat" => Box::new(MakCrawler::variant(name, ArmPolicy::exp31(K), std, false, seed)),
        _ => {
            // Ensembles: "mak-ensemble<N>" for any N >= 1 (§VI extension).
            let agents = name.strip_prefix("mak-ensemble")?.parse::<usize>().ok()?;
            if agents == 0 || agents > 64 {
                return None;
            }
            Box::new(crate::mak::EnsembleCrawler::new(agents, seed))
        }
    };
    Some(crawler)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper() {
        let rows = table1();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2].tool, "MAK");
        assert_eq!(rows[2].state_abstraction, "Stateless");
        assert_eq!(rows[0].action_selection, "Gumbel-softmax");
        assert_eq!(rows[1].action_selection, "Maximum Q-value");
    }

    #[test]
    fn factory_builds_every_registered_crawler() {
        for name in CRAWLER_NAMES.iter().chain(MAK_VARIANTS) {
            let c = build_crawler(name, 1).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(c.name(), *name);
        }
        assert!(build_crawler("wget", 1).is_none());
    }

    #[test]
    fn only_q_learners_report_states() {
        assert!(build_crawler("mak", 1).unwrap().state_count().is_none());
        assert!(build_crawler("bfs", 1).unwrap().state_count().is_none());
        assert!(build_crawler("webexplor", 1).unwrap().state_count().is_some());
        assert!(build_crawler("qexplore", 1).unwrap().state_count().is_some());
    }
}
