//! # mak — Multi-Armed Krawler and its baselines
//!
//! This crate is the reproduction of the paper's primary contribution:
//! **MAK**, a *stateless* web crawler that learns how to interleave the
//! three classical navigation strategies (BFS, DFS, Random) by treating
//! crawling as an Adversarial Multi-Armed Bandit problem solved with
//! Exp3.1, rewarded by standardized link-coverage increments (§IV).
//!
//! Like the paper's unified evaluation framework (§V-A.1), the crate also
//! implements the competing crawlers from the same building blocks, so the
//! comparison isolates the RL formulation rather than engineering details:
//!
//! - [`webexplor`] — Q-learning over URL + HTML-tag-sequence states with a
//!   curiosity reward and Gumbel-softmax selection;
//! - [`qexplore`] — Q-learning over interactable-attribute-value states
//!   with a modified update and deterministic arg-max selection;
//! - [`baselines`] — non-learning BFS / DFS / Random crawlers, realised by
//!   pinning MAK's arm (§V-C);
//! - [`framework`] — the generic RL crawling loop of Algorithm 2 and the
//!   crawl engine that runs any crawler under the virtual time budget;
//! - [`spec`] — the Table I component summary, as data.
//!
//! ## Quick start
//!
//! ```
//! use mak::framework::engine::{run_crawl, EngineConfig};
//! use mak::mak::MakCrawler;
//! use mak_websim::apps;
//!
//! let mut crawler = MakCrawler::new(42);
//! let app = apps::build("addressbook").expect("known app");
//! let report = run_crawl(&mut crawler, app, &EngineConfig::with_budget_minutes(2.0), 42);
//! assert!(report.final_lines_covered > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod framework;
pub mod mak;
pub mod qexplore;
pub mod spec;
pub mod webexplor;
