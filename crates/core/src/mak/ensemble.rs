//! An ensemble of stateless MAK agents (extension).
//!
//! §VI of the paper, discussing multi-agent RL crawlers: "Our proposal has
//! the potential to improve multi-agent RL-based crawlers as well, because
//! each agent of the ensemble can benefit from our stateless approach."
//! This crawler realises that hint in the simplest faithful way: `n`
//! independent Exp3.1 policies take turns (round-robin) over one shared
//! element pool and one browser session. Each agent learns only from the
//! rewards of its own steps, so agents can settle on *different* arm mixes
//! — a soft division of labour between breadth, depth, and random probing.

use crate::framework::checkpoint::{CrawlerState, EnsembleState};
use crate::framework::crawler::{CrawlEnd, Crawler, StepReport};
use crate::framework::linklog::LinkLog;
use crate::mak::deque::{Arm, LeveledDeque};
use mak_bandit::exp31::Exp31;
use mak_bandit::normalize::StandardizedReward;
use mak_bandit::policy::BanditPolicy;
use mak_browser::client::{BrowseError, Browser};
use mak_browser::page::Page;
use mak_obs::event::Event;
use mak_obs::sink::SinkHandle;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize as _, Serialize as _};
use std::borrow::Cow;

/// A round-robin ensemble of independent MAK policies over a shared pool.
#[derive(Debug)]
pub struct EnsembleCrawler {
    name: String,
    policies: Vec<Exp31>,
    rewards: Vec<StandardizedReward>,
    next_agent: usize,
    deque: LeveledDeque,
    links: LinkLog,
    rng: StdRng,
    started: bool,
    sink: SinkHandle,
}

impl EnsembleCrawler {
    /// Creates an ensemble of `agents` independent policies.
    ///
    /// # Panics
    ///
    /// Panics if `agents` is zero.
    pub fn new(agents: usize, seed: u64) -> Self {
        assert!(agents > 0, "ensemble needs at least one agent");
        EnsembleCrawler {
            name: format!("mak-ensemble{agents}"),
            policies: (0..agents).map(|_| Exp31::new(Arm::ALL.len())).collect(),
            rewards: (0..agents).map(|_| StandardizedReward::new()).collect(),
            next_agent: 0,
            deque: LeveledDeque::new(),
            links: LinkLog::new(),
            rng: StdRng::seed_from_u64(seed),
            started: false,
            sink: SinkHandle::none(),
        }
    }

    /// Number of agents in the ensemble.
    pub fn agent_count(&self) -> usize {
        self.policies.len()
    }

    /// The arm probabilities of agent `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn agent_probabilities(&self, i: usize) -> Vec<f64> {
        self.policies[i].probabilities()
    }

    fn ingest(&mut self, page: &Page, browser: &Browser) -> u64 {
        let origin = browser.origin();
        let increment = self.links.absorb_page(page, origin);
        for el in page.valid_interactables(origin) {
            self.deque.push_new(el);
        }
        increment
    }
}

impl Crawler for EnsembleCrawler {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, browser: &mut Browser) -> Result<StepReport, CrawlEnd> {
        if !self.started {
            let page = match browser.open_seed() {
                Ok(p) => p,
                Err(BrowseError::BudgetExhausted) => return Err(CrawlEnd::BudgetExhausted),
                Err(BrowseError::ExternalDomain(_)) => unreachable!("seed is same-origin"),
                Err(
                    BrowseError::TooManyRedirects(_)
                    | BrowseError::Transient { .. }
                    | BrowseError::StaleElement,
                ) => {
                    // Transient fault on the seed fetch; its cost is
                    // charged, the next step retries from scratch.
                    return Ok(StepReport { action: Cow::Borrowed("SeedRetry"), reward: None });
                }
            };
            self.ingest(&page, browser);
            self.started = true;
        }

        let agent = self.next_agent;
        self.next_agent = (self.next_agent + 1) % self.policies.len();

        let arm = Arm::from_index(self.policies[agent].choose(&mut self.rng));
        self.sink.emit_with(|| Event::ActionChosen {
            arm: format!("agent{agent}:{arm}"),
            probs: self.policies[agent].probabilities(),
        });
        let Some((element, level)) = self.deque.pop(arm, &mut self.rng) else {
            return Err(CrawlEnd::Stuck);
        };

        let page = match browser.execute(&element) {
            Ok(p) => p,
            Err(BrowseError::BudgetExhausted) => {
                self.deque.reinsert(element, level);
                return Err(CrawlEnd::BudgetExhausted);
            }
            Err(BrowseError::ExternalDomain(_)) => {
                return Ok(StepReport { action: Cow::Borrowed(arm.name()), reward: None });
            }
            Err(
                BrowseError::TooManyRedirects(_)
                | BrowseError::Transient { .. }
                | BrowseError::StaleElement,
            ) => {
                // Graceful degradation: penalize the acting agent with a
                // zero reward and demote the element — never blacklist it.
                self.policies[agent].update(arm.index(), 0.0);
                self.deque.reinsert(element, level + 1);
                return Ok(StepReport {
                    action: Cow::Owned(format!("agent{agent}:{arm}")),
                    reward: Some(0.0),
                });
            }
        };

        let increment = self.ingest(&page, browser);
        // Each agent standardizes against its *own* reward history — its
        // private sense of what a good step looks like.
        let reward = self.rewards[agent].transform(increment as f64);
        self.policies[agent].update(arm.index(), reward);
        self.deque.reinsert(element, level + 1);
        self.sink.emit_with(|| Event::DequeDepth {
            len: self.deque.len() as u64,
            levels: (0..self.deque.level_count()).map(|l| self.deque.level_len(l) as u64).collect(),
        });

        Ok(StepReport { action: Cow::Owned(format!("agent{agent}:{arm}")), reward: Some(reward) })
    }

    fn distinct_urls(&self) -> usize {
        self.links.len()
    }

    fn attach_sink(&mut self, sink: SinkHandle) {
        for policy in &mut self.policies {
            policy.attach_sink(sink.clone());
        }
        self.sink = sink;
    }

    fn snapshot_state(&self) -> Option<CrawlerState> {
        Some(CrawlerState::Ensemble(EnsembleState {
            policies: self.policies.iter().map(|p| p.to_value()).collect(),
            rewards: self.rewards.iter().map(|r| r.to_value()).collect(),
            next_agent: self.next_agent as u64,
            deque: self.deque.to_value(),
            links: self.links.to_value(),
            rng: self.rng.state().to_vec(),
            started: self.started,
        }))
    }

    fn restore_state(&mut self, state: &CrawlerState) -> Result<(), serde::Error> {
        let CrawlerState::Ensemble(s) = state else {
            return Err(serde::Error::custom(format!(
                "crawler `{}` cannot restore a non-ensemble state",
                self.name
            )));
        };
        if s.policies.len() != self.policies.len() {
            return Err(serde::Error::custom(format!(
                "checkpoint has {} agents, crawler has {}",
                s.policies.len(),
                self.policies.len()
            )));
        }
        if s.rewards.len() != s.policies.len() || s.next_agent as usize >= s.policies.len() {
            return Err(serde::Error::custom("inconsistent ensemble checkpoint"));
        }
        if s.rng.len() != 4 || s.rng.iter().all(|&w| w == 0) {
            return Err(serde::Error::custom("invalid RNG state in ensemble checkpoint"));
        }
        let mut words = [0u64; 4];
        words.copy_from_slice(&s.rng);
        self.policies = s.policies.iter().map(Exp31::from_value).collect::<Result<Vec<_>, _>>()?;
        self.rewards =
            s.rewards.iter().map(StandardizedReward::from_value).collect::<Result<Vec<_>, _>>()?;
        self.next_agent = s.next_agent as usize;
        self.deque = LeveledDeque::from_value(&s.deque)?;
        self.links = LinkLog::from_value(&s.links)?;
        self.rng = StdRng::from_state(words);
        self.started = s.started;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::engine::{run_crawl, EngineConfig};
    use mak_websim::apps;

    #[test]
    fn ensemble_crawls_and_reports() {
        let mut c = EnsembleCrawler::new(3, 1);
        assert_eq!(c.agent_count(), 3);
        let report = run_crawl(
            &mut c,
            apps::build("vanilla").unwrap(),
            &EngineConfig::with_budget_minutes(3.0),
            1,
        );
        assert_eq!(report.crawler, "mak-ensemble3");
        assert!(report.final_lines_covered > 0);
        assert!(report.state_count.is_none(), "agents are stateless");
    }

    #[test]
    fn agents_take_turns() {
        let mut cfg = EngineConfig::with_budget_minutes(2.0);
        cfg.record_trace = true;
        let mut c = EnsembleCrawler::new(2, 2);
        let report = run_crawl(&mut c, apps::build("addressbook").unwrap(), &cfg, 2);
        let agents: Vec<&str> =
            report.trace.iter().map(|t| t.action.split(':').next().unwrap()).collect();
        // Strict round-robin: agent0, agent1, agent0, ...
        for (i, a) in agents.iter().enumerate() {
            assert_eq!(*a, format!("agent{}", i % 2));
        }
    }

    #[test]
    fn agents_learn_independently() {
        let mut c = EnsembleCrawler::new(2, 3);
        let _ = run_crawl(
            &mut c,
            apps::build("hotcrp").unwrap(),
            &EngineConfig::with_budget_minutes(10.0),
            3,
        );
        let p0 = c.agent_probabilities(0);
        let p1 = c.agent_probabilities(1);
        assert!(
            p0.iter().zip(&p1).any(|(a, b)| (a - b).abs() > 1e-6),
            "independent policies should diverge: {p0:?} vs {p1:?}"
        );
    }

    #[test]
    fn single_agent_matches_plain_mak_coverage_scale() {
        let cfg = EngineConfig::with_budget_minutes(5.0);
        let mut ensemble = EnsembleCrawler::new(1, 4);
        let e = run_crawl(&mut ensemble, apps::build("phpbb2").unwrap(), &cfg, 4);
        let mut plain = crate::mak::MakCrawler::new(4);
        let p = run_crawl(&mut plain, apps::build("phpbb2").unwrap(), &cfg, 4);
        let ratio = e.final_lines_covered as f64 / p.final_lines_covered as f64;
        assert!((0.9..=1.1).contains(&ratio), "one-agent ensemble ≈ MAK: {ratio}");
    }

    #[test]
    #[should_panic(expected = "at least one agent")]
    fn zero_agents_panics() {
        let _ = EnsembleCrawler::new(0, 1);
    }
}
