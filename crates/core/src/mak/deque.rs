//! The leveled deque of interactable elements (§IV-B).
//!
//! MAK stores every interactable element it has extracted in "a list of
//! deques, each one with an associated level i ∈ ℕ₀. The deque at level i
//! contains all the interactable elements … that have already been
//! interacted with by the crawler i times." Actions always draw from the
//! *lowest* non-empty level, so the crawler tries the least-explored
//! elements first — the curiosity principle folded into the action
//! definition rather than the reward.
//!
//! The deque tracks **action availability only**: no page state, no
//! environment model (§IV-B's closing remark), so MAK stays stateless.

use mak_intern::Interner;
use mak_websim::dom::Interactable;
use rand::Rng;
use std::collections::VecDeque;
use std::fmt;

/// MAK's three actions (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arm {
    /// Extract the least recently discovered element — emulates BFS.
    Head,
    /// Extract the most recently discovered element — emulates DFS.
    Tail,
    /// Extract a uniformly random element — escapes local plateaus.
    Random,
}

impl Arm {
    /// All arms in policy-index order.
    pub const ALL: [Arm; 3] = [Arm::Head, Arm::Tail, Arm::Random];

    /// The policy index of this arm.
    pub fn index(self) -> usize {
        match self {
            Arm::Head => 0,
            Arm::Tail => 1,
            Arm::Random => 2,
        }
    }

    /// The arm at a policy index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 3`.
    pub fn from_index(index: usize) -> Arm {
        Arm::ALL[index]
    }

    /// The arm's display name as a static string — lets hot paths label
    /// steps without allocating.
    pub fn name(self) -> &'static str {
        match self {
            Arm::Head => "Head",
            Arm::Tail => "Tail",
            Arm::Random => "Random",
        }
    }
}

impl fmt::Display for Arm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The global, level-indexed pool of interactable elements.
///
/// Deduplication keys on interned signature [`Symbol`](mak_intern::Symbol)s
/// rather than owned `String`s: probing with an already-known element
/// allocates nothing (the interner reuses a scratch buffer), and the element
/// itself is only cloned into the pool when it is genuinely new.
#[derive(Debug, Default)]
pub struct LeveledDeque {
    levels: Vec<VecDeque<Interactable>>,
    known: Interner,
    len: usize,
}

impl LeveledDeque {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a newly discovered element at level 0 (back of the deque, so
    /// `Tail` retrieves the newest discovery). Elements are deduplicated by
    /// [signature](Interactable::signature): re-extracting the same element
    /// on a later visit does not re-add it. Returns `true` if inserted.
    pub fn push_new(&mut self, element: &Interactable) -> bool {
        let (_, new) = self.known.intern_with(|buf| element.write_signature(buf));
        if !new {
            return false;
        }
        if self.levels.is_empty() {
            self.levels.push(VecDeque::new());
        }
        self.levels[0].push_back(element.clone());
        self.len += 1;
        true
    }

    /// Re-inserts an element after an interaction, at `level + 1`.
    pub fn reinsert(&mut self, element: Interactable, new_level: usize) {
        while self.levels.len() <= new_level {
            self.levels.push(VecDeque::new());
        }
        self.levels[new_level].push_back(element);
        self.len += 1;
    }

    /// Extracts an element per `arm` from the lowest non-empty level,
    /// returning it with its level. `None` if the pool is empty.
    pub fn pop<R: Rng + ?Sized>(&mut self, arm: Arm, rng: &mut R) -> Option<(Interactable, usize)> {
        let level = self.levels.iter().position(|d| !d.is_empty())?;
        let deque = &mut self.levels[level];
        let element = match arm {
            Arm::Head => deque.pop_front(),
            Arm::Tail => deque.pop_back(),
            Arm::Random => {
                let idx = rng.gen_range(0..deque.len());
                deque.remove(idx)
            }
        }?;
        self.len -= 1;
        Some((element, level))
    }

    /// Total elements across all levels.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of allocated levels (highest interaction count + 1).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Elements currently waiting at `level`.
    pub fn level_len(&self, level: usize) -> usize {
        self.levels.get(level).map_or(0, VecDeque::len)
    }

    /// Whether an element with this signature was ever inserted.
    pub fn knows(&self, signature: &str) -> bool {
        self.known.get(signature).is_some()
    }

    /// The signature interner (diagnostics: table size under `MAK_LOG=debug`).
    pub fn interner(&self) -> &Interner {
        &self.known
    }
}

/// Checkpointing: the pool serializes as its per-level element queues plus
/// the dedup interner's strings in insertion order. Empty trailing levels
/// are preserved so `level_count` (and the `DequeDepth` event it feeds) is
/// bit-identical after a restore.
impl serde::Serialize for LeveledDeque {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            (
                "levels".to_owned(),
                serde::Value::Array(
                    self.levels
                        .iter()
                        .map(|deque| {
                            serde::Value::Array(
                                deque.iter().map(serde::Serialize::to_value).collect(),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "known".to_owned(),
                serde::Value::Array(
                    self.known.ordered_strings().map(|s| serde::Value::Str(s.to_owned())).collect(),
                ),
            ),
        ])
    }
}

impl serde::Deserialize for LeveledDeque {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let raw_levels: Vec<Vec<Interactable>> = match v.get("levels") {
            Some(levels) => serde::Deserialize::from_value(levels)?,
            None => return Err(serde::Error::custom("LeveledDeque missing `levels`")),
        };
        let raw_known: Vec<String> = match v.get("known") {
            Some(known) => serde::Deserialize::from_value(known)?,
            None => return Err(serde::Error::custom("LeveledDeque missing `known`")),
        };
        let known = Interner::from_ordered(&raw_known);
        let mut len = 0;
        let mut levels: Vec<VecDeque<Interactable>> = Vec::with_capacity(raw_levels.len());
        for level in raw_levels {
            // Every pooled element must have been interned once: a payload
            // whose queues and dedup table disagree is corrupt, not a pool
            // state any sequence of operations could have produced.
            for el in &level {
                if known.get(&el.signature()).is_none() {
                    return Err(serde::Error::custom(format!(
                        "pooled element `{}` missing from the dedup interner",
                        el.signature()
                    )));
                }
            }
            len += level.len();
            levels.push(level.into_iter().collect());
        }
        Ok(LeveledDeque { levels, known, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn link(path: &str) -> Interactable {
        Interactable::Link { href: format!("http://h{path}").parse().unwrap(), text: String::new() }
    }

    #[test]
    fn head_is_fifo_tail_is_lifo() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = LeveledDeque::new();
        d.push_new(&link("/a"));
        d.push_new(&link("/b"));
        d.push_new(&link("/c"));
        let (first, _) = d.pop(Arm::Head, &mut rng).unwrap();
        assert_eq!(first.target_url().path(), "/a", "Head = least recently discovered (BFS)");
        let (last, _) = d.pop(Arm::Tail, &mut rng).unwrap();
        assert_eq!(last.target_url().path(), "/c", "Tail = newest discovery (DFS)");
    }

    #[test]
    fn random_pop_returns_each_element_eventually() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = HashSet::new();
        for _ in 0..50 {
            let mut d = LeveledDeque::new();
            d.push_new(&link("/a"));
            d.push_new(&link("/b"));
            d.push_new(&link("/c"));
            let (el, _) = d.pop(Arm::Random, &mut rng).unwrap();
            seen.insert(el.target_url().path().to_owned());
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn deduplicates_by_signature() {
        let mut d = LeveledDeque::new();
        assert!(d.push_new(&link("/a")));
        assert!(!d.push_new(&link("/a")));
        assert_eq!(d.len(), 1);
        assert!(d.knows(&link("/a").signature()));
    }

    #[test]
    fn lowest_level_is_drained_first() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = LeveledDeque::new();
        d.push_new(&link("/fresh"));
        d.reinsert(link("/used"), 1);
        let (el, level) = d.pop(Arm::Tail, &mut rng).unwrap();
        assert_eq!(el.target_url().path(), "/fresh");
        assert_eq!(level, 0);
        let (el, level) = d.pop(Arm::Head, &mut rng).unwrap();
        assert_eq!(el.target_url().path(), "/used");
        assert_eq!(level, 1, "falls back to the next level once level 0 drains");
    }

    #[test]
    fn reinsert_grows_levels() {
        let mut d = LeveledDeque::new();
        d.reinsert(link("/x"), 4);
        assert_eq!(d.level_count(), 5);
        assert_eq!(d.level_len(4), 1);
        assert_eq!(d.level_len(0), 0);
        assert!(!d.is_empty());
    }

    #[test]
    fn pop_on_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut d = LeveledDeque::new();
        assert!(d.pop(Arm::Head, &mut rng).is_none());
    }

    #[test]
    fn arm_indices_roundtrip() {
        for arm in Arm::ALL {
            assert_eq!(Arm::from_index(arm.index()), arm);
        }
        assert_eq!(Arm::Head.to_string(), "Head");
    }
}
