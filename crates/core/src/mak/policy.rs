//! Pluggable arm-selection policies for MAK variants.
//!
//! The paper chooses **Exp3.1** for its adversarial guarantees and its
//! epoch-reset mechanism (§IV-D). The design-choice ablations (the
//! `ablation2` bench binary) swap in alternatives to quantify what that
//! choice buys: plain Exp3 (no epoch resets), stochastic-bandit learners
//! (ε-greedy, UCB1, Thompson sampling — whose i.i.d.-reward assumption web
//! crawling violates), and a uniform non-learner.

use mak_bandit::epsilon::EpsilonGreedy;
use mak_bandit::exp3::Exp3;
use mak_bandit::exp31::Exp31;
use mak_bandit::policy::BanditPolicy;
use mak_bandit::thompson::Thompson;
use mak_bandit::ucb::Ucb1;
use rand::Rng;

/// An arm-selection policy over MAK's three arms.
///
/// This is an enum rather than a trait object because
/// [`BanditPolicy::choose`] is generic over the RNG and therefore not
/// object-safe.
#[derive(Debug, Clone)]
pub enum ArmPolicy {
    /// The paper's choice: Exp3.1 with epoch resets.
    Exp31(Exp31),
    /// Plain Exp3 with a fixed exploration rate.
    Exp3(Exp3),
    /// ε-greedy over empirical means (stochastic assumption).
    EpsilonGreedy(EpsilonGreedy),
    /// UCB1 (stochastic assumption).
    Ucb1(Ucb1),
    /// Thompson sampling with Beta posteriors (stochastic assumption).
    Thompson(Thompson),
    /// Uniform random arm choice; never learns.
    Uniform,
}

impl ArmPolicy {
    /// The paper's default: Exp3.1 over `k` arms.
    pub fn exp31(k: usize) -> Self {
        ArmPolicy::Exp31(Exp31::new(k))
    }

    /// Plain Exp3 with exploration rate `gamma`.
    pub fn exp3(k: usize, gamma: f64) -> Self {
        ArmPolicy::Exp3(Exp3::new(k, gamma))
    }

    /// ε-greedy with exploration probability `epsilon`.
    pub fn epsilon_greedy(k: usize, epsilon: f64) -> Self {
        ArmPolicy::EpsilonGreedy(EpsilonGreedy::new(k, epsilon))
    }

    /// UCB1.
    pub fn ucb1(k: usize) -> Self {
        ArmPolicy::Ucb1(Ucb1::new(k))
    }

    /// Thompson sampling.
    pub fn thompson(k: usize) -> Self {
        ArmPolicy::Thompson(Thompson::new(k))
    }

    /// Samples the next arm.
    pub fn choose<R: Rng + ?Sized>(&mut self, rng: &mut R, k: usize) -> usize {
        match self {
            ArmPolicy::Exp31(p) => p.choose(rng),
            ArmPolicy::Exp3(p) => p.choose(rng),
            ArmPolicy::EpsilonGreedy(p) => p.choose(rng),
            ArmPolicy::Ucb1(p) => p.choose(rng),
            ArmPolicy::Thompson(p) => p.choose(rng),
            ArmPolicy::Uniform => rng.gen_range(0..k),
        }
    }

    /// Feeds back the observed reward.
    pub fn update(&mut self, arm: usize, reward: f64) {
        match self {
            ArmPolicy::Exp31(p) => p.update(arm, reward),
            ArmPolicy::Exp3(p) => p.update(arm, reward),
            ArmPolicy::EpsilonGreedy(p) => p.update(arm, reward),
            ArmPolicy::Ucb1(p) => p.update(arm, reward),
            ArmPolicy::Thompson(p) => p.update(arm, reward),
            ArmPolicy::Uniform => {}
        }
    }

    /// Current selection probabilities (uniform for the non-learner).
    pub fn probabilities(&self, k: usize) -> Vec<f64> {
        match self {
            ArmPolicy::Exp31(p) => p.probabilities(),
            ArmPolicy::Exp3(p) => p.probabilities(),
            ArmPolicy::EpsilonGreedy(p) => p.probabilities(),
            ArmPolicy::Ucb1(p) => p.probabilities(),
            ArmPolicy::Thompson(p) => p.probabilities(),
            ArmPolicy::Uniform => vec![1.0 / k as f64; k],
        }
    }

    /// The inner Exp3.1 learner, when this policy is Exp3.1 — used by the
    /// testkit oracle for simplex and epoch-bound checks.
    pub fn as_exp31(&self) -> Option<&Exp31> {
        match self {
            ArmPolicy::Exp31(p) => Some(p),
            _ => None,
        }
    }

    /// Mutable access to the inner Exp3.1 learner, for testkit fault
    /// injection only.
    pub fn as_exp31_mut(&mut self) -> Option<&mut Exp31> {
        match self {
            ArmPolicy::Exp31(p) => Some(p),
            _ => None,
        }
    }

    /// Observability: forwards the sink to learners that emit policy
    /// events (currently Exp3.1; the ablation policies stay silent).
    pub fn attach_sink(&mut self, sink: mak_obs::sink::SinkHandle) {
        if let ArmPolicy::Exp31(p) = self {
            p.attach_sink(sink);
        }
    }

    /// Short identifier used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            ArmPolicy::Exp31(_) => "exp31",
            ArmPolicy::Exp3(_) => "exp3",
            ArmPolicy::EpsilonGreedy(_) => "epsilon",
            ArmPolicy::Ucb1(_) => "ucb1",
            ArmPolicy::Thompson(_) => "thompson",
            ArmPolicy::Uniform => "uniform",
        }
    }
}

/// Checkpointing: externally tagged by the policy's short name, with the
/// learner's full mutable state (including its fixed hyper-parameters) as
/// the payload, so a restore needs no out-of-band configuration.
impl serde::Serialize for ArmPolicy {
    fn to_value(&self) -> serde::Value {
        let payload = match self {
            ArmPolicy::Exp31(p) => p.to_value(),
            ArmPolicy::Exp3(p) => p.to_value(),
            ArmPolicy::EpsilonGreedy(p) => p.to_value(),
            ArmPolicy::Ucb1(p) => p.to_value(),
            ArmPolicy::Thompson(p) => p.to_value(),
            ArmPolicy::Uniform => serde::Value::Null,
        };
        serde::Value::Object(vec![(self.name().to_owned(), payload)])
    }
}

impl serde::Deserialize for ArmPolicy {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let entries =
            v.as_object().ok_or_else(|| serde::Error::custom("expected ArmPolicy object"))?;
        let [(tag, payload)] = entries else {
            return Err(serde::Error::custom("expected single-variant ArmPolicy object"));
        };
        Ok(match tag.as_str() {
            "exp31" => ArmPolicy::Exp31(serde::Deserialize::from_value(payload)?),
            "exp3" => ArmPolicy::Exp3(serde::Deserialize::from_value(payload)?),
            "epsilon" => ArmPolicy::EpsilonGreedy(serde::Deserialize::from_value(payload)?),
            "ucb1" => ArmPolicy::Ucb1(serde::Deserialize::from_value(payload)?),
            "thompson" => ArmPolicy::Thompson(serde::Deserialize::from_value(payload)?),
            "uniform" => ArmPolicy::Uniform,
            other => return Err(serde::Error::custom(format!("unknown arm policy `{other}`"))),
        })
    }
}

/// How MAK turns raw link-coverage increments into policy rewards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewardKind {
    /// The paper's reward: standardized increment squashed by the logistic
    /// function (§IV-C/D).
    StandardizedLinkCoverage,
    /// Ablation: the raw increment clipped to `[0, 1]` by `min(r/10, 1)` —
    /// no history standardization, so early large increments saturate and
    /// late small ones vanish.
    RawLinkCoverage,
    /// Ablation: an element-level curiosity reward, `1/(level + 1)` of the
    /// popped element — reproduces the §III-B critique inside the stateless
    /// setting (rewards revisiting fresh elements regardless of yield).
    Curiosity,
}

impl RewardKind {
    /// Short identifier used in reports.
    pub fn name(self) -> &'static str {
        match self {
            RewardKind::StandardizedLinkCoverage => "standardized",
            RewardKind::RawLinkCoverage => "raw",
            RewardKind::Curiosity => "curiosity",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_policies_choose_valid_arms() {
        let mut rng = StdRng::seed_from_u64(1);
        for mut policy in [
            ArmPolicy::exp31(3),
            ArmPolicy::exp3(3, 0.2),
            ArmPolicy::epsilon_greedy(3, 0.1),
            ArmPolicy::ucb1(3),
            ArmPolicy::thompson(3),
            ArmPolicy::Uniform,
        ] {
            for _ in 0..50 {
                let arm = policy.choose(&mut rng, 3);
                assert!(arm < 3, "{}", policy.name());
                policy.update(arm, 0.5);
            }
            let probs = policy.probabilities(3);
            assert_eq!(probs.len(), 3);
            assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{}", policy.name());
        }
    }

    #[test]
    fn uniform_never_learns() {
        let mut policy = ArmPolicy::Uniform;
        for _ in 0..100 {
            policy.update(0, 1.0);
        }
        let p = policy.probabilities(3);
        assert!(p.iter().all(|&x| (x - 1.0 / 3.0).abs() < 1e-12));
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<&str> = [
            ArmPolicy::exp31(2).name(),
            ArmPolicy::exp3(2, 0.1).name(),
            ArmPolicy::epsilon_greedy(2, 0.1).name(),
            ArmPolicy::ucb1(2).name(),
            ArmPolicy::thompson(2).name(),
            ArmPolicy::Uniform.name(),
        ]
        .into_iter()
        .collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn reward_kind_names() {
        assert_eq!(RewardKind::StandardizedLinkCoverage.name(), "standardized");
        assert_ne!(RewardKind::RawLinkCoverage.name(), RewardKind::Curiosity.name());
    }
}
