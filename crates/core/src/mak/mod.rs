//! Multi-Armed Krawler (MAK) — the paper's contribution (§IV).
//!
//! MAK is *stateless*: it never abstracts pages into states. Its three
//! actions — [`Arm::Head`], [`Arm::Tail`], [`Arm::Random`] — operate on a
//! global [leveled deque](deque::LeveledDeque) of interactable elements and
//! emulate BFS, DFS, and random navigation respectively (§IV-B). An
//! [Exp3.1](mak_bandit::exp31::Exp31) policy learns how to interleave them,
//! rewarded by the standardized increment in link coverage squashed to
//! `[0, 1]` (§IV-C/D).

pub mod crawler;
pub mod deque;
pub mod ensemble;
pub mod policy;

pub use crawler::MakCrawler;
pub use deque::{Arm, LeveledDeque};
pub use ensemble::EnsembleCrawler;
pub use policy::{ArmPolicy, RewardKind};
