//! The MAK crawler (§IV) and its design-choice variants.

use crate::framework::checkpoint::{CrawlerState, MakState};
use crate::framework::crawler::{CrawlEnd, Crawler, StepReport};
use crate::framework::linklog::LinkLog;
use crate::mak::deque::{Arm, LeveledDeque};
use crate::mak::policy::{ArmPolicy, RewardKind};
use mak_bandit::normalize::StandardizedReward;
use mak_browser::client::{BrowseError, Browser};
use mak_browser::page::Page;
use mak_obs::event::Event;
use mak_obs::sink::SinkHandle;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize as _, Serialize as _};
use std::borrow::Cow;

/// Multi-Armed Krawler: stateless, Exp3.1-driven, link-coverage rewarded.
///
/// The default configuration ([`MakCrawler::new`]) is the paper's MAK;
/// [`MakCrawler::variant`] assembles ablation variants with a different
/// arm policy, reward, or a flat (single-level) element pool, and
/// [`MakCrawler::with_fixed_arm`] pins one arm to obtain the §V-C static
/// baselines.
///
/// # Examples
///
/// ```
/// use mak::framework::engine::{run_crawl, EngineConfig};
/// use mak::mak::MakCrawler;
/// use mak_websim::apps;
///
/// let mut crawler = MakCrawler::new(7);
/// let report = run_crawl(&mut crawler, apps::build("vanilla").unwrap(),
///                        &EngineConfig::with_budget_minutes(1.0), 7);
/// assert_eq!(report.crawler, "mak");
/// assert!(report.distinct_urls > 0);
/// ```
#[derive(Debug)]
pub struct MakCrawler {
    name: String,
    policy: ArmPolicy,
    reward_kind: RewardKind,
    deque: LeveledDeque,
    links: LinkLog,
    reward: StandardizedReward,
    rng: StdRng,
    started: bool,
    /// When false, elements re-enter the pool at level 0: a flat deque
    /// without the curiosity-in-action-space mechanism of §IV-B.
    leveled: bool,
    /// When set, the policy is bypassed and this arm is always played —
    /// §V-C: "these strategies can be simulated with MAK by always
    /// executing one of its three actions".
    fixed_arm: Option<Arm>,
    /// Observability: receives `ActionChosen` / `DequeDepth`. Inert by
    /// default; never influences crawl decisions.
    sink: SinkHandle,
}

impl MakCrawler {
    /// Creates the paper's crawler: Exp3.1 policy, standardized
    /// link-coverage reward, leveled deque.
    pub fn new(seed: u64) -> Self {
        Self::variant(
            "mak",
            ArmPolicy::exp31(Arm::ALL.len()),
            RewardKind::StandardizedLinkCoverage,
            true,
            seed,
        )
    }

    /// Assembles a design-choice variant (used by the `ablation2` bench).
    pub fn variant(
        name: impl Into<String>,
        policy: ArmPolicy,
        reward_kind: RewardKind,
        leveled: bool,
        seed: u64,
    ) -> Self {
        MakCrawler {
            name: name.into(),
            policy,
            reward_kind,
            deque: LeveledDeque::new(),
            links: LinkLog::new(),
            reward: StandardizedReward::new(),
            rng: StdRng::seed_from_u64(seed),
            started: false,
            leveled,
            fixed_arm: None,
            sink: SinkHandle::none(),
        }
    }

    /// Creates a non-learning variant that always plays `arm`, named
    /// `name` — the BFS/DFS/Random ablation crawlers of §V-C.
    pub fn with_fixed_arm(name: impl Into<String>, arm: Arm, seed: u64) -> Self {
        let mut c = Self::new(seed);
        c.name = name.into();
        c.fixed_arm = Some(arm);
        c
    }

    /// The arm policy (uniform and unused when an arm is pinned).
    pub fn policy(&self) -> &ArmPolicy {
        &self.policy
    }

    /// The current probability of each arm, in [`Arm::ALL`] order.
    pub fn arm_probabilities(&self) -> Vec<f64> {
        self.policy.probabilities(Arm::ALL.len())
    }

    /// The reward configuration.
    pub fn reward_kind(&self) -> RewardKind {
        self.reward_kind
    }

    /// The element pool.
    pub fn deque(&self) -> &LeveledDeque {
        &self.deque
    }

    /// The link-coverage log (diagnostics: its URL interner's table size is
    /// printed by `mak-cli cache stats` under `MAK_LOG=debug`).
    pub fn links(&self) -> &LinkLog {
        &self.links
    }

    /// Testkit fault injection: mutable access to the arm policy, so the
    /// oracle self-test can plant a known bug (e.g. disabling Exp3.1 epoch
    /// advances) and prove the invariant oracle catches it.
    pub fn policy_mut(&mut self) -> &mut ArmPolicy {
        &mut self.policy
    }

    /// Absorbs a fetched page: counts new URLs (the raw reward increment)
    /// and enqueues newly discovered same-origin elements at level 0.
    fn ingest(&mut self, page: &Page, browser: &Browser) -> u64 {
        let origin = browser.origin();
        let increment = self.links.absorb_page(page, origin);
        for el in page.valid_interactables(origin) {
            self.deque.push_new(el);
        }
        increment
    }

    /// Opens the seed page if not yet started. `Ok(false)` means a
    /// transient fault spoiled the seed fetch: the failed attempt's time
    /// is already charged, and the next step retries.
    fn ensure_started(&mut self, browser: &mut Browser) -> Result<bool, CrawlEnd> {
        if self.started {
            return Ok(true);
        }
        let page = match browser.open_seed() {
            Ok(p) => p,
            Err(BrowseError::BudgetExhausted) => return Err(CrawlEnd::BudgetExhausted),
            Err(BrowseError::ExternalDomain(_)) => unreachable!("seed is same-origin"),
            Err(
                BrowseError::TooManyRedirects(_)
                | BrowseError::Transient { .. }
                | BrowseError::StaleElement,
            ) => return Ok(false),
        };
        // The seed page's links seed both the pool and the link log; they
        // predate any action, so no reward is granted for them.
        self.ingest(&page, browser);
        self.started = true;
        Ok(true)
    }

    fn compute_reward(&mut self, increment: u64, level: usize) -> f64 {
        match self.reward_kind {
            RewardKind::StandardizedLinkCoverage => self.reward.transform(increment as f64),
            RewardKind::RawLinkCoverage => (increment as f64 / 10.0).min(1.0),
            RewardKind::Curiosity => 1.0 / (level as f64 + 1.0),
        }
    }
}

impl Crawler for MakCrawler {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, browser: &mut Browser) -> Result<StepReport, CrawlEnd> {
        if !self.ensure_started(browser)? {
            // Transient fault on the seed fetch; its cost is charged, the
            // next step retries from scratch.
            return Ok(StepReport { action: Cow::Borrowed("SeedRetry"), reward: None });
        }

        let arm = match self.fixed_arm {
            Some(arm) => arm,
            None => Arm::from_index(self.policy.choose(&mut self.rng, Arm::ALL.len())),
        };
        self.sink.emit_with(|| Event::ActionChosen {
            arm: arm.to_string(),
            probs: self.arm_probabilities(),
        });

        let Some((element, level)) = self.deque.pop(arm, &mut self.rng) else {
            return Err(CrawlEnd::Stuck);
        };

        let page = match browser.execute(&element) {
            Ok(p) => p,
            Err(BrowseError::BudgetExhausted) => {
                self.deque.reinsert(element, level);
                return Err(CrawlEnd::BudgetExhausted);
            }
            Err(BrowseError::ExternalDomain(_)) => {
                // Ingest filters external targets, so this is unreachable in
                // practice; drop the element defensively.
                return Ok(StepReport { action: Cow::Borrowed(arm.name()), reward: None });
            }
            Err(
                BrowseError::TooManyRedirects(_)
                | BrowseError::Transient { .. }
                | BrowseError::StaleElement,
            ) => {
                // Graceful degradation: the action failed but the crawl
                // goes on. The arm is penalized with a zero reward and the
                // element demoted a level — never blacklisted, so a
                // transiently flaky element stays reachable.
                if self.fixed_arm.is_none() {
                    self.policy.update(arm.index(), 0.0);
                }
                let next_level = if self.leveled { level + 1 } else { 0 };
                self.deque.reinsert(element, next_level);
                self.sink.emit_with(|| Event::DequeDepth {
                    len: self.deque.len() as u64,
                    levels: (0..self.deque.level_count())
                        .map(|l| self.deque.level_len(l) as u64)
                        .collect(),
                });
                return Ok(StepReport { action: Cow::Borrowed(arm.name()), reward: Some(0.0) });
            }
        };

        let increment = self.ingest(&page, browser);
        let reward = self.compute_reward(increment, level);
        if self.fixed_arm.is_none() {
            self.policy.update(arm.index(), reward);
        }
        let next_level = if self.leveled { level + 1 } else { 0 };
        self.deque.reinsert(element, next_level);
        self.sink.emit_with(|| Event::DequeDepth {
            len: self.deque.len() as u64,
            levels: (0..self.deque.level_count()).map(|l| self.deque.level_len(l) as u64).collect(),
        });

        Ok(StepReport { action: Cow::Borrowed(arm.name()), reward: Some(reward) })
    }

    fn distinct_urls(&self) -> usize {
        self.links.len()
    }

    fn attach_sink(&mut self, sink: SinkHandle) {
        self.policy.attach_sink(sink.clone());
        self.sink = sink;
    }

    fn snapshot_state(&self) -> Option<CrawlerState> {
        Some(CrawlerState::Mak(MakState {
            policy: self.policy.to_value(),
            reward: self.reward.to_value(),
            deque: self.deque.to_value(),
            links: self.links.to_value(),
            rng: self.rng.state().to_vec(),
            started: self.started,
        }))
    }

    fn restore_state(&mut self, state: &CrawlerState) -> Result<(), serde::Error> {
        let CrawlerState::Mak(s) = state else {
            return Err(serde::Error::custom(format!(
                "crawler `{}` cannot restore a non-MAK state",
                self.name
            )));
        };
        if s.rng.len() != 4 || s.rng.iter().all(|&w| w == 0) {
            return Err(serde::Error::custom("invalid RNG state in MAK checkpoint"));
        }
        let mut words = [0u64; 4];
        words.copy_from_slice(&s.rng);
        self.policy = ArmPolicy::from_value(&s.policy)?;
        self.reward = StandardizedReward::from_value(&s.reward)?;
        self.deque = LeveledDeque::from_value(&s.deque)?;
        self.links = LinkLog::from_value(&s.links)?;
        self.rng = StdRng::from_state(words);
        self.started = s.started;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mak_browser::clock::VirtualClock;
    use mak_websim::apps;
    use mak_websim::server::AppHost;

    fn browser(app: &str, minutes: f64, seed: u64) -> Browser {
        let host = AppHost::new(apps::build(app).unwrap());
        Browser::new(host, VirtualClock::with_budget_minutes(minutes), seed)
    }

    #[test]
    fn first_step_bootstraps_from_seed() {
        let mut b = browser("addressbook", 30.0, 1);
        let mut c = MakCrawler::new(1);
        let report = c.step(&mut b).unwrap();
        assert!(report.reward.is_some());
        assert_eq!(b.interaction_count(), 1);
        assert!(c.distinct_urls() > 1);
        assert!(!c.deque().is_empty());
    }

    #[test]
    fn is_stateless() {
        let c = MakCrawler::new(1);
        assert_eq!(c.state_count(), None);
        assert_eq!(c.name(), "mak");
        assert_eq!(c.reward_kind(), RewardKind::StandardizedLinkCoverage);
    }

    #[test]
    fn fixed_arm_never_updates_policy() {
        let mut b = browser("vanilla", 5.0, 2);
        let mut c = MakCrawler::with_fixed_arm("bfs", Arm::Head, 2);
        for _ in 0..30 {
            if c.step(&mut b).is_err() {
                break;
            }
        }
        let p = c.arm_probabilities();
        assert!((p[0] - p[1]).abs() < 1e-12, "policy stays uniform: {p:?}");
        assert!((p[1] - p[2]).abs() < 1e-12);
    }

    #[test]
    fn interacted_elements_move_up_levels() {
        let mut b = browser("addressbook", 30.0, 3);
        let mut c = MakCrawler::new(3);
        // Run enough steps to exhaust level 0 on this small app.
        for _ in 0..120 {
            if c.step(&mut b).is_err() {
                break;
            }
        }
        assert!(c.deque().level_count() >= 2, "elements were re-inserted at higher levels");
        assert!(c.deque().level_len(1) > 0 || c.deque().level_len(0) == 0);
    }

    #[test]
    fn flat_variant_never_grows_levels() {
        let mut b = browser("addressbook", 30.0, 3);
        let mut c = MakCrawler::variant(
            "mak-flat",
            ArmPolicy::exp31(3),
            RewardKind::StandardizedLinkCoverage,
            false,
            3,
        );
        for _ in 0..120 {
            if c.step(&mut b).is_err() {
                break;
            }
        }
        assert_eq!(c.deque().level_count(), 1, "flat pool keeps everything at level 0");
    }

    #[test]
    fn curiosity_variant_rewards_by_level() {
        let mut b = browser("addressbook", 30.0, 4);
        let mut c = MakCrawler::variant(
            "mak-curiosity",
            ArmPolicy::exp31(3),
            RewardKind::Curiosity,
            true,
            4,
        );
        let mut rewards = Vec::new();
        for _ in 0..150 {
            match c.step(&mut b) {
                Ok(r) => rewards.push(r.reward.unwrap()),
                Err(_) => break,
            }
        }
        // Early (level 0) rewards are exactly 1.0; once elements recycle at
        // level 1 the reward halves.
        assert!(rewards.iter().take(10).all(|&r| (r - 1.0).abs() < 1e-12));
        assert!(rewards.iter().any(|&r| (r - 0.5).abs() < 1e-12));
    }

    #[test]
    fn budget_exhaustion_is_propagated() {
        let host = AppHost::new(apps::build("addressbook").unwrap());
        let mut b = Browser::new(host, VirtualClock::new(1_500.0), 4);
        let mut c = MakCrawler::new(4);
        let mut saw_end = false;
        for _ in 0..10 {
            match c.step(&mut b) {
                Err(CrawlEnd::BudgetExhausted) => {
                    saw_end = true;
                    break;
                }
                Err(CrawlEnd::Stuck) => panic!("should not be stuck"),
                Ok(_) => {}
            }
        }
        assert!(saw_end);
    }

    #[test]
    fn rewards_reflect_link_discovery() {
        let mut b = browser("drupal", 30.0, 5);
        let mut c = MakCrawler::new(5);
        let mut rewards = Vec::new();
        for _ in 0..40 {
            match c.step(&mut b) {
                Ok(r) => rewards.push(r.reward.unwrap()),
                Err(_) => break,
            }
        }
        assert!(rewards.iter().all(|r| (0.0..=1.0).contains(r)));
        let distinct: std::collections::BTreeSet<u64> =
            rewards.iter().map(|r| (r * 1e9) as u64).collect();
        assert!(distinct.len() > 3, "rewards vary with discovery rate");
    }
}
