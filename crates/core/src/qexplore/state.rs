//! QExplore's state abstraction: hashed interactable attribute values.

use crate::framework::qcrawler::StateAbstraction;
use mak_browser::page::Page;
use mak_websim::util::hash_str;
use std::collections::HashMap;

/// QExplore abstracts a page into "a sequence of attribute values of the
/// interactable elements of the page", then compares "the hash of the
/// string representations of the resulting states" (§III-A). Equal hashes
/// are the same state; any change in the element list — including a single
/// appended broken link — is a brand-new state, which is the unbounded
/// state-explosion failure of Fig. 1 (bottom).
#[derive(Debug, Default)]
pub struct QExploreState {
    by_hash: HashMap<u64, u64>,
    /// Reusable representation buffer: the abstraction re-serializes every
    /// interactable on every step, so the buffer is cleared and refilled
    /// instead of reallocated (same bytes, same hash).
    repr: String,
}

impl QExploreState {
    /// Creates an empty state store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StateAbstraction for QExploreState {
    fn state_of(&mut self, page: &Page) -> u64 {
        self.repr.clear();
        for el in page.interactables() {
            el.write_attribute_values(&mut self.repr);
            self.repr.push('\n');
        }
        let hash = hash_str(&self.repr);
        let next_id = self.by_hash.len() as u64;
        *self.by_hash.entry(hash).or_insert(next_id)
    }

    fn state_count(&self) -> usize {
        self.by_hash.len()
    }

    fn kind(&self) -> &'static str {
        "qexplore"
    }

    fn snapshot_value(&self) -> serde::Value {
        let mut pairs: Vec<(u64, u64)> = self.by_hash.iter().map(|(&h, &id)| (h, id)).collect();
        pairs.sort_unstable();
        serde::Serialize::to_value(&pairs)
    }

    fn restore_value(&mut self, value: &serde::Value) -> Result<(), serde::Error> {
        let pairs: Vec<(u64, u64)> = serde::Deserialize::from_value(value)?;
        // State ids are handed out densely (`next_id = len` at insertion),
        // so a valid table's ids are exactly a permutation of `0..len`.
        let len = pairs.len() as u64;
        let mut seen_ids = vec![false; pairs.len()];
        for &(_, id) in &pairs {
            if id >= len || seen_ids[id as usize] {
                return Err(serde::Error::custom("QExplore state ids are not a dense set"));
            }
            seen_ids[id as usize] = true;
        }
        let by_hash: HashMap<u64, u64> = pairs.into_iter().collect();
        if by_hash.len() as u64 != len {
            return Err(serde::Error::custom("duplicate hash in QExplore state table"));
        }
        self.by_hash = by_hash;
        self.repr.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mak_websim::dom::{Document, Element, Tag};
    use mak_websim::http::Status;

    fn page(url: &str, hrefs: &[&str]) -> Page {
        let mut body = Element::new(Tag::Body);
        for h in hrefs {
            body = body.child(Element::new(Tag::A).attr("href", (*h).to_owned()).text(*h));
        }
        Page::from_document(Status::Ok, Document::new(url.parse().unwrap(), "t", body))
    }

    #[test]
    fn same_elements_same_state_even_across_urls() {
        // Unlike WebExplor, QExplore ignores the URL: two alias URLs with
        // identical element lists collapse into one state.
        let mut s = QExploreState::new();
        let a = s.state_of(&page("http://h/p?r=23-8", &["/x", "/y"]));
        let b = s.state_of(&page("http://h/p?m=re", &["/x", "/y"]));
        assert_eq!(a, b);
        assert_eq!(s.state_count(), 1);
    }

    #[test]
    fn appended_element_is_a_new_state() {
        let mut s = QExploreState::new();
        let a = s.state_of(&page("http://h/p", &["/x"]));
        let b = s.state_of(&page("http://h/p", &["/x", "/shortcut/a1"]));
        let c = s.state_of(&page("http://h/p", &["/x", "/shortcut/a2"]));
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(s.state_count(), 3, "unbounded growth under mutation");
    }

    #[test]
    fn element_order_matters() {
        let mut s = QExploreState::new();
        let a = s.state_of(&page("http://h/p", &["/x", "/y"]));
        let b = s.state_of(&page("http://h/p", &["/y", "/x"]));
        assert_ne!(a, b);
    }

    #[test]
    fn empty_pages_share_one_state() {
        let mut s = QExploreState::new();
        let a = s.state_of(&Page::empty(Status::NotFound, "http://h/a".parse().unwrap()));
        let b = s.state_of(&Page::empty(Status::NotFound, "http://h/b".parse().unwrap()));
        assert_eq!(a, b);
    }
}
