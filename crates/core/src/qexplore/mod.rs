//! The QExplore baseline (Sherin et al., JSS 2023), reimplemented per the
//! paper's description (Table I and §III):
//!
//! - **state abstraction**: the hash of the sequence of attribute values of
//!   the page's interactable elements;
//! - **reward**: curiosity — inverse visit counters;
//! - **policy update**: Q-learning modified to steer towards states with
//!   more actions;
//! - **action selection**: deterministic maximum-Q (with optimistic
//!   initialization so fresh actions get tried).

pub mod state;

pub use state::QExploreState;

use crate::framework::qcrawler::{ActionSelection, CuriosityReward, QCrawler, UpdateRule};

/// Builds the QExplore crawler with the given RNG seed.
///
/// # Examples
///
/// ```
/// use mak::framework::engine::{run_crawl, EngineConfig};
/// use mak_websim::apps;
///
/// let mut crawler = mak::qexplore::qexplore(7);
/// let report = run_crawl(&mut crawler, apps::build("addressbook").unwrap(),
///                        &EngineConfig::with_budget_minutes(1.0), 7);
/// assert_eq!(report.crawler, "qexplore");
/// ```
pub fn qexplore(seed: u64) -> QCrawler<QExploreState> {
    QCrawler::new(
        "qexplore",
        QExploreState::new(),
        ActionSelection::MaxQ,
        UpdateRule::QExplore { beta: 0.2 },
        CuriosityReward::Inverse,
        // Deterministic arg-max relies on the optimistic init to drive
        // exploration: with γ = 0.2, first-use reward 0.5 and the ≤ 0.2
        // action-count bonus, used actions peak around 0.88 < 0.9.
        mak_bandit::qlearning::QTable::new(0.5, 0.2, 0.9),
        seed,
    )
    // Hashing every element's attribute values per page costs more than
    // WebExplor's URL-indexed lookup (§V-D: 827 vs 854 interactions).
    .with_overhead_factor(2.2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::crawler::Crawler;
    use mak_browser::client::Browser;
    use mak_browser::clock::VirtualClock;
    use mak_websim::apps;
    use mak_websim::server::AppHost;

    #[test]
    fn crawls_and_builds_states() {
        let host = AppHost::new(apps::build("vanilla").unwrap());
        let mut b = Browser::new(host, VirtualClock::with_budget_minutes(5.0), 1);
        let mut c = qexplore(1);
        for _ in 0..60 {
            if c.step(&mut b).is_err() {
                break;
            }
        }
        assert!(c.state_count().unwrap() > 3);
        assert!(b.interaction_count() > 40);
    }

    #[test]
    fn mutating_trap_creates_unbounded_states() {
        // Fig. 1 (bottom): every Drupal-shortcut submission changes the
        // element list, so the attribute-value hash allocates a new state.
        let host = AppHost::new(apps::build("drupal").unwrap());
        let mut b = Browser::new(host, VirtualClock::with_budget_minutes(15.0), 2);
        // Drive the browser to the trap page and submit the form repeatedly
        // through a crawler-independent probe: each re-render must map to a
        // fresh QExplore state.
        let mut states = QExploreState::new();
        use crate::framework::qcrawler::StateAbstraction;
        let trap_url: mak_websim::url::Url = "http://drupal.local/shortcuts".parse().unwrap();
        let page0 = b.navigate(&trap_url).unwrap();
        let s0 = states.state_of(&page0);
        let form = page0
            .valid_interactables(&trap_url)
            .find(|i| matches!(i, mak_websim::dom::Interactable::Form(_)))
            .cloned()
            .unwrap();
        let mut last = s0;
        for _ in 0..5 {
            let page = b.execute(&form).unwrap();
            let s = states.state_of(&page);
            assert_ne!(s, last, "each submission must look like a brand-new state");
            last = s;
        }
        assert_eq!(states.state_count(), 6);
    }
}
