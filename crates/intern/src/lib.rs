//! Deterministic string interning for hot-path symbol keys.
//!
//! The crawl loop compares the same handful of strings — normalized URLs and
//! interactable signatures — millions of times per run. Keeping a
//! `HashSet<String>` per layer means every *probe* allocates a fresh key
//! (`format!`, `normalized()`) even when the answer is "seen it already".
//! An [`Interner`] replaces those string keys with dense [`Symbol`]s: the
//! string is stored once, the probe reuses a scratch buffer, and downstream
//! layers key on a `u32`.
//!
//! # Determinism contract
//!
//! Symbol ids are **insertion-order dense indices**: the `n`-th distinct
//! string interned gets `Symbol(n)`, independent of hasher seeds, thread
//! count, or platform. Two runs that intern the same strings in the same
//! order therefore assign identical ids, which keeps golden reports, traces
//! and the run cache bit-identical. Symbols are only meaningful relative to
//! the interner that produced them and are never serialized directly;
//! checkpoints persist the insertion-ordered string sequence
//! ([`Interner::ordered_strings`]) and re-intern it on restore
//! ([`Interner::from_ordered`]), which re-derives identical ids. Nothing
//! ever iterates the internal `HashMap`, so its iteration order cannot leak
//! into results.

use std::collections::HashMap;

/// A dense handle to an interned string.
///
/// Ids are assigned in insertion order starting at 0; see the crate-level
/// determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The dense index of the symbol, usable as a key in measurement-side
    /// data structures.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// An insertion-ordered string interner.
///
/// # Examples
///
/// ```
/// use mak_intern::Interner;
///
/// let mut interner = Interner::new();
/// let (a, new_a) = interner.try_intern("link:http://h/a");
/// let (b, new_b) = interner.try_intern("link:http://h/b");
/// let (a2, new_a2) = interner.try_intern("link:http://h/a");
/// assert!(new_a && new_b && !new_a2);
/// assert_eq!(a, a2);
/// assert_ne!(a, b);
/// assert_eq!(interner.resolve(a), "link:http://h/a");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Interner {
    /// Lookup table. Keys duplicate `strings` entries; the duplication buys
    /// a fully safe implementation and the tables here stay small (one
    /// entry per *distinct* URL or signature, not per step).
    map: HashMap<Box<str>, Symbol>,
    /// Interned strings in insertion order; `strings[sym.index()]` resolves.
    strings: Vec<Box<str>>,
    /// Total bytes of distinct interned text (one copy), for diagnostics.
    bytes: usize,
    /// Reusable key-building buffer for [`Interner::intern_with`].
    scratch: String,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its symbol and whether it was newly added.
    pub fn try_intern(&mut self, s: &str) -> (Symbol, bool) {
        if let Some(&sym) = self.map.get(s) {
            return (sym, false);
        }
        let sym = Symbol(u32::try_from(self.strings.len()).expect("interner overflow"));
        let owned: Box<str> = s.into();
        self.bytes += owned.len();
        self.strings.push(owned.clone());
        self.map.insert(owned, sym);
        (sym, true)
    }

    /// Interns `s`, returning its symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.try_intern(s).0
    }

    /// Builds a key into an internal scratch buffer with `build`, then
    /// interns it — the allocation-free probe for callers whose keys are
    /// derived (e.g. an interactable signature). The buffer is reused across
    /// calls, so a probe that finds an existing symbol allocates nothing.
    pub fn intern_with(&mut self, build: impl FnOnce(&mut String)) -> (Symbol, bool) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        build(&mut scratch);
        let out = self.try_intern(&scratch);
        self.scratch = scratch;
        out
    }

    /// The symbol previously assigned to `s`, if any. Never allocates.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// The string behind `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` did not come from this interner (index out of range).
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Total bytes of distinct interned text (counting each string once).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The interned strings in insertion order — index `n` is the string
    /// behind `Symbol(n)`. This is the checkpoint form of an interner:
    /// feeding the sequence back through [`Interner::from_ordered`]
    /// reproduces identical symbol assignments.
    pub fn ordered_strings(&self) -> impl Iterator<Item = &str> {
        self.strings.iter().map(|s| s.as_ref())
    }

    /// Rebuilds an interner from strings captured by
    /// [`Interner::ordered_strings`]. Because ids are insertion-order dense,
    /// re-interning in the same order re-assigns the same ids, so symbols
    /// recorded elsewhere in a checkpoint stay valid.
    pub fn from_ordered<S: AsRef<str>>(strings: impl IntoIterator<Item = S>) -> Self {
        let mut interner = Interner::new();
        for s in strings {
            interner.intern(s.as_ref());
        }
        interner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_insertion_order_dense() {
        let mut i = Interner::new();
        for (n, s) in ["c", "a", "b", "a", "c", "d"].iter().enumerate() {
            let sym = i.intern(s);
            // First occurrences get 0, 1, 2, 3 in encounter order.
            let expected = match *s {
                "c" => 0,
                "a" => 1,
                "b" => 2,
                "d" => 3,
                _ => unreachable!(),
            };
            assert_eq!(sym.index(), expected, "string #{n} ({s})");
        }
        assert_eq!(i.len(), 4);
    }

    #[test]
    fn round_trips_symbol_to_string() {
        let mut i = Interner::new();
        let strings = ["", "x", "link:http://h/p?a=1", "form:login@http://h/login"];
        let syms: Vec<Symbol> = strings.iter().map(|s| i.intern(s)).collect();
        for (s, sym) in strings.iter().zip(&syms) {
            assert_eq!(i.resolve(*sym), *s);
            assert_eq!(i.get(s), Some(*sym));
        }
        assert_eq!(i.get("never-interned"), None);
    }

    #[test]
    fn try_intern_reports_novelty() {
        let mut i = Interner::new();
        assert!(i.is_empty());
        let (a, new) = i.try_intern("a");
        assert!(new);
        let (a2, new) = i.try_intern("a");
        assert!(!new);
        assert_eq!(a, a2);
        assert!(!i.is_empty());
    }

    #[test]
    fn intern_with_builds_and_dedups_without_leaking_scratch() {
        let mut i = Interner::new();
        let (a, new) = i.intern_with(|buf| buf.push_str("key-1"));
        assert!(new);
        // Scratch reuse must not concatenate across calls.
        let (b, new) = i.intern_with(|buf| buf.push_str("key-2"));
        assert!(new);
        let (a2, new) = i.intern_with(|buf| buf.push_str("key-1"));
        assert!(!new);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(b), "key-2");
    }

    #[test]
    fn bytes_counts_each_distinct_string_once() {
        let mut i = Interner::new();
        i.intern("abcd");
        i.intern("ab");
        i.intern("abcd");
        assert_eq!(i.bytes(), 6);
    }

    #[test]
    fn independent_instances_assign_identical_ids_for_identical_sequences() {
        // The determinism contract: ids are a pure function of the
        // insertion sequence, not of hasher state or instance identity.
        let seq = ["q", "w", "e", "q", "r", "t", "w", "y"];
        let mut a = Interner::new();
        let ids_a: Vec<u32> = seq.iter().map(|s| a.intern(s).index()).collect();
        let mut b = Interner::new();
        let ids_b: Vec<u32> = seq.iter().map(|s| b.intern(s).index()).collect();
        assert_eq!(ids_a, ids_b);
    }

    #[test]
    fn identical_ids_across_threads() {
        let seq: Vec<String> = (0..200).map(|n| format!("sym-{}", n % 50)).collect();
        let baseline: Vec<u32> = {
            let mut i = Interner::new();
            seq.iter().map(|s| i.intern(s).index()).collect()
        };
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let seq = seq.clone();
                std::thread::spawn(move || {
                    let mut i = Interner::new();
                    seq.iter().map(|s| i.intern(s).index()).collect::<Vec<u32>>()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), baseline);
        }
    }
}
