//! Reflected-input probing.
//!
//! For every `(path, parameter)` pair and every form field the crawl
//! discovered, the prober submits a unique canary value and reports a
//! [`Finding`] when the application's response echoes it — the black-box
//! signal behind reflected-XSS detection in scanners like Black Widow
//! (which the paper positions MAK as a front-end for).

use crate::surface::AttackSurface;
use mak_browser::client::{BrowseError, Browser};
use mak_websim::dom::{FieldKind, FormSpec};
use mak_websim::http::Request;
use mak_websim::url::Url;
use serde::{Deserialize, Serialize};

/// Where a reflection was observed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sink {
    /// A query parameter on a `GET` endpoint.
    QueryParam {
        /// Endpoint path.
        path: String,
        /// Parameter name.
        param: String,
    },
    /// A field of a submitted form.
    FormField {
        /// The form's action path.
        action: String,
        /// Field name.
        field: String,
    },
}

/// One confirmed reflected-input finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// The reflecting sink.
    pub sink: Sink,
    /// The canary that was echoed back.
    pub canary: String,
}

/// Probes every discovered parameter and form field, returning the
/// findings. Stops early when the browser's budget runs out.
pub fn probe_surface(browser: &mut Browser, surface: &AttackSurface) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut canary_id = 0u64;
    let host = browser.origin().host().to_owned();

    // Query parameters: GET path?param=canary.
    let targets: Vec<(String, String)> =
        surface.param_targets().map(|(path, param)| (path.to_owned(), param.to_owned())).collect();
    for (path, param) in targets {
        canary_id += 1;
        let canary = format!("zzcanary{canary_id}zz");
        let url = Url::new(host.clone(), path.clone()).with_query(param.clone(), canary.clone());
        match browser.navigate(&url) {
            Ok(page) => {
                if reflects(&page, &canary) {
                    findings.push(Finding { sink: Sink::QueryParam { path, param }, canary });
                }
            }
            Err(BrowseError::BudgetExhausted) => return findings,
            // A flaky endpoint that outlived its retries is simply not
            // probed further — skip to the next target.
            Err(_) => {}
        }
    }

    // Form fields: submit with one canary-bearing field at a time.
    let forms: Vec<FormSpec> = surface.forms().cloned().collect();
    for form in forms {
        for (idx, field) in form.fields.iter().enumerate() {
            if !matches!(field.kind, FieldKind::Text) {
                continue;
            }
            canary_id += 1;
            let canary = format!("zzcanary{canary_id}zz");
            let data: Vec<(String, String)> = form
                .fields
                .iter()
                .enumerate()
                .map(|(i, f)| {
                    let value = if i == idx {
                        canary.clone()
                    } else {
                        match &f.kind {
                            FieldKind::Hidden(v) => v.clone(),
                            FieldKind::Select(opts) => opts.first().cloned().unwrap_or_default(),
                            FieldKind::Password => "password123".to_owned(),
                            FieldKind::Text => "probe".to_owned(),
                        }
                    };
                    (f.name.clone(), value)
                })
                .collect();
            let request = match form.method {
                mak_websim::http::Method::Get => {
                    let mut url = form.action.clone();
                    for (k, v) in data {
                        url = url.with_query(k, v);
                    }
                    Request::get(url)
                }
                mak_websim::http::Method::Post => Request::post(form.action.clone(), data),
            };
            match browser_submit(browser, request) {
                Ok(Some(text)) if text.contains(&canary) => {
                    findings.push(Finding {
                        sink: Sink::FormField {
                            action: form.action.path().to_owned(),
                            field: field.name.clone(),
                        },
                        canary,
                    });
                }
                Ok(_) => {}
                Err(BrowseError::BudgetExhausted) => return findings,
                Err(_) => {}
            }
        }
    }
    findings
}

fn reflects(page: &mak_browser::page::Page, canary: &str) -> bool {
    page.document().map(|d| d.text_content().contains(canary)).unwrap_or(false)
}

#[allow(clippy::result_large_err)] // internal helper; `BrowseError` is returned unboxed everywhere
fn browser_submit(browser: &mut Browser, request: Request) -> Result<Option<String>, BrowseError> {
    // The browser only exposes navigation and element execution; probing a
    // raw request goes through `navigate` for GET and a synthetic form
    // interactable for POST.
    match request.method {
        mak_websim::http::Method::Get => {
            let page = browser.navigate(&request.url)?;
            Ok(page.document().map(|d| d.text_content()))
        }
        mak_websim::http::Method::Post => {
            let page = browser.post(&request.url, request.form)?;
            Ok(page.document().map(|d| d.text_content()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mak_browser::clock::VirtualClock;
    use mak_websim::apps;
    use mak_websim::server::AppHost;

    fn browser(app: &str) -> Browser {
        let host = AppHost::new(apps::build(app).unwrap());
        Browser::new(host, VirtualClock::with_budget_minutes(60.0), 1)
    }

    #[test]
    fn finds_reflected_search_parameter() {
        // WordPress's search echoes the query — the §III-B page doubles as
        // a reflected sink.
        let mut b = browser("wordpress");
        let mut surface = AttackSurface::new();
        let page = b.navigate(&"http://wordpress.local/search?q=test".parse().unwrap()).unwrap();
        surface.absorb_page(&page, &"http://wordpress.local/".parse().unwrap());
        let findings = probe_surface(&mut b, &surface);
        assert!(
            findings.iter().any(|f| matches!(
                &f.sink,
                Sink::QueryParam { path, param } if path == "/search" && param == "q"
            )),
            "search query reflection detected: {findings:?}"
        );
    }

    #[test]
    fn non_reflecting_params_produce_no_findings() {
        let mut b = browser("matomo");
        let mut surface = AttackSurface::new();
        let page =
            b.navigate(&"http://matomo.local/index.php?module=CoreHome".parse().unwrap()).unwrap();
        surface.absorb_page(&page, &"http://matomo.local/".parse().unwrap());
        let findings = probe_surface(&mut b, &surface);
        assert!(
            !findings
                .iter()
                .any(|f| matches!(&f.sink, Sink::QueryParam { param, .. } if param == "module")),
            "dispatch parameters are not reflected"
        );
    }

    #[test]
    fn probing_respects_budget() {
        let host = AppHost::new(apps::build("wordpress").unwrap());
        let mut b = Browser::new(host, VirtualClock::new(1.0), 1);
        let mut surface = AttackSurface::new();
        // Budget of 1 ms: the single allowed request happens, then probing
        // stops without panicking.
        let page = b.navigate(&"http://wordpress.local/".parse().unwrap()).unwrap();
        surface.absorb_page(&page, &"http://wordpress.local/".parse().unwrap());
        let findings = probe_surface(&mut b, &surface);
        assert!(findings.is_empty());
    }
}
