//! The attack surface exposed by a crawl.

use mak_browser::page::Page;
use mak_websim::dom::{FormSpec, Interactable};
use mak_websim::url::Url;
use std::collections::{BTreeMap, BTreeSet};

/// Everything a crawl exposed that a scanner can probe: endpoints (paths),
/// query parameters per path, and submittable forms.
#[derive(Debug, Default, Clone)]
pub struct AttackSurface {
    endpoints: BTreeSet<String>,
    params: BTreeMap<String, BTreeSet<String>>,
    forms: BTreeMap<String, FormSpec>,
}

impl AttackSurface {
    /// An empty surface.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one rendered page: its own URL, every same-origin link
    /// target's path and query keys, and every form.
    pub fn absorb_page(&mut self, page: &Page, origin: &Url) {
        if page.url().same_origin(origin) {
            self.absorb_url(page.url());
        }
        for el in page.valid_interactables(origin) {
            match el {
                Interactable::Link { href, .. } => self.absorb_url(href),
                Interactable::Button { target, .. } => self.absorb_url(target),
                Interactable::Form(form) => {
                    self.absorb_url(&form.action);
                    self.forms.insert(el.signature(), form.clone());
                }
            }
        }
    }

    fn absorb_url(&mut self, url: &Url) {
        self.endpoints.insert(url.path().to_owned());
        for (key, _) in url.query() {
            self.params.entry(url.path().to_owned()).or_default().insert(key.clone());
        }
    }

    /// Number of distinct endpoint paths discovered.
    pub fn endpoint_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Number of distinct `(path, query parameter)` pairs discovered.
    pub fn param_count(&self) -> usize {
        self.params.values().map(BTreeSet::len).sum()
    }

    /// Number of distinct forms discovered.
    pub fn form_count(&self) -> usize {
        self.forms.len()
    }

    /// Iterates over `(path, parameter)` probe targets.
    pub fn param_targets(&self) -> impl Iterator<Item = (&str, &str)> {
        self.params
            .iter()
            .flat_map(|(path, keys)| keys.iter().map(move |k| (path.as_str(), k.as_str())))
    }

    /// Iterates over the discovered forms.
    pub fn forms(&self) -> impl Iterator<Item = &FormSpec> {
        self.forms.values()
    }

    /// Merges another surface into this one (union).
    pub fn merge(&mut self, other: &AttackSurface) {
        self.endpoints.extend(other.endpoints.iter().cloned());
        for (path, keys) in &other.params {
            self.params.entry(path.clone()).or_default().extend(keys.iter().cloned());
        }
        for (sig, form) in &other.forms {
            self.forms.entry(sig.clone()).or_insert_with(|| form.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mak_websim::dom::{Document, Element, Tag};
    use mak_websim::http::Status;

    fn page(url: &str, hrefs: &[&str], with_form: bool) -> Page {
        let mut body = Element::new(Tag::Body);
        for h in hrefs {
            body = body.child(Element::new(Tag::A).attr("href", (*h).to_owned()));
        }
        if with_form {
            body = body.child(
                Element::new(Tag::Form)
                    .attr("action", "/submit")
                    .attr("method", "post")
                    .attr("name", "f")
                    .child(Element::new(Tag::Input).attr("type", "text").attr("name", "q")),
            );
        }
        Page::from_document(Status::Ok, Document::new(url.parse().unwrap(), "t", body))
    }

    #[test]
    fn collects_endpoints_params_and_forms() {
        let origin: Url = "http://h/".parse().unwrap();
        let mut s = AttackSurface::new();
        s.absorb_page(&page("http://h/a?x=1", &["/b?y=2&z=3", "/c"], true), &origin);
        assert_eq!(s.endpoint_count(), 4); // /a /b /c /submit
        assert_eq!(s.param_count(), 3); // (a,x) (b,y) (b,z)
        assert_eq!(s.form_count(), 1);
        let targets: Vec<_> = s.param_targets().collect();
        assert!(targets.contains(&("/b", "y")));
    }

    #[test]
    fn external_links_are_ignored() {
        let origin: Url = "http://h/".parse().unwrap();
        let mut s = AttackSurface::new();
        s.absorb_page(&page("http://h/a", &["http://evil.example/x?p=1"], false), &origin);
        assert_eq!(s.endpoint_count(), 1);
        assert_eq!(s.param_count(), 0);
    }

    #[test]
    fn absorption_is_idempotent() {
        let origin: Url = "http://h/".parse().unwrap();
        let mut s = AttackSurface::new();
        let p = page("http://h/a?x=1", &["/b?y=2"], true);
        s.absorb_page(&p, &origin);
        let (e, q, f) = (s.endpoint_count(), s.param_count(), s.form_count());
        s.absorb_page(&p, &origin);
        assert_eq!((e, q, f), (s.endpoint_count(), s.param_count(), s.form_count()));
    }

    #[test]
    fn merge_unions_surfaces() {
        let origin: Url = "http://h/".parse().unwrap();
        let mut a = AttackSurface::new();
        a.absorb_page(&page("http://h/a?x=1", &[], false), &origin);
        let mut b = AttackSurface::new();
        b.absorb_page(&page("http://h/b?y=1", &[], true), &origin);
        a.merge(&b);
        assert_eq!(a.endpoint_count(), 3);
        assert_eq!(a.param_count(), 2);
        assert_eq!(a.form_count(), 1);
    }
}
