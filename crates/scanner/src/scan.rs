//! The two-phase scan: crawl (any registered crawler), then probe.

use crate::probe::{probe_surface, Finding};
use crate::surface::AttackSurface;
use mak::framework::crawler::CrawlEnd;
use mak::spec::build_crawler;
use mak_browser::client::Browser;
use mak_browser::clock::VirtualClock;
use mak_websim::apps;
use mak_websim::server::AppHost;
use std::sync::Arc;
use std::sync::Mutex;

/// Scan parameters.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Virtual minutes spent crawling (surface enumeration).
    pub crawl_minutes: f64,
    /// Virtual minutes reserved for probing afterwards.
    pub probe_minutes: f64,
}

impl ScanConfig {
    /// Builds a config from the two phase budgets.
    ///
    /// # Panics
    ///
    /// Panics if either budget is not positive.
    pub fn with_minutes(crawl_minutes: f64, probe_minutes: f64) -> Self {
        assert!(crawl_minutes > 0.0, "crawl budget must be positive");
        assert!(probe_minutes > 0.0, "probe budget must be positive");
        ScanConfig { crawl_minutes, probe_minutes }
    }
}

impl Default for ScanConfig {
    fn default() -> Self {
        // The paper's 30-minute crawl plus a 10-minute probing pass.
        ScanConfig { crawl_minutes: 30.0, probe_minutes: 10.0 }
    }
}

/// The outcome of one scan.
#[derive(Debug)]
pub struct ScanReport {
    /// Crawler used for enumeration.
    pub crawler: String,
    /// Application scanned.
    pub app: String,
    /// The enumerated attack surface.
    pub surface: AttackSurface,
    /// Confirmed reflected-input findings.
    pub findings: Vec<Finding>,
    /// Interactions performed during the crawl phase.
    pub crawl_interactions: u64,
    /// Server lines covered by the end of the scan.
    pub lines_covered: u64,
}

/// Runs a scan of `app` using `crawler_name` for enumeration. Returns
/// `None` for unknown crawler or application names.
pub fn run_scan(
    crawler_name: &str,
    app: &str,
    config: &ScanConfig,
    seed: u64,
) -> Option<ScanReport> {
    let app_model = apps::build(app)?;
    let mut crawler = build_crawler(crawler_name, seed)?;

    let host = AppHost::new(app_model);
    let total_budget = (config.crawl_minutes + config.probe_minutes) * 60_000.0;
    let mut browser = Browser::new(host, VirtualClock::new(total_budget), seed);

    // Shadow the crawl: every page the browser renders feeds the surface.
    let surface = Arc::new(Mutex::new(AttackSurface::new()));
    let origin = browser.origin().clone();
    {
        let surface = Arc::clone(&surface);
        browser.set_page_observer(move |page| {
            surface.lock().unwrap().absorb_page(page, &origin);
        });
    }

    // Phase 1: crawl until the crawl budget is consumed.
    let crawl_budget_ms = config.crawl_minutes * 60_000.0;
    while browser.clock().elapsed_ms() < crawl_budget_ms {
        browser.charge_policy_overhead(crawler.policy_overhead_ms(browser.cost_model()));
        match crawler.step(&mut browser) {
            Ok(_) => {}
            Err(CrawlEnd::BudgetExhausted) | Err(CrawlEnd::Stuck) => break,
        }
    }
    let crawl_interactions = browser.interaction_count();

    // Phase 2: probe everything the crawl exposed, within what remains of
    // the total budget.
    let surface = surface.lock().unwrap().clone();
    let findings = probe_surface(&mut browser, &surface);

    let host = browser.finish();
    Some(ScanReport {
        crawler: crawler_name.to_owned(),
        app: app.to_owned(),
        surface,
        findings,
        crawl_interactions,
        lines_covered: host.tracker().lines_covered_unchecked(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::Sink;

    fn quick() -> ScanConfig {
        ScanConfig::with_minutes(3.0, 2.0)
    }

    #[test]
    fn scan_enumerates_and_probes() {
        let report = run_scan("mak", "wordpress", &quick(), 1).expect("known names");
        assert!(report.surface.endpoint_count() > 20);
        assert!(report.surface.form_count() >= 1);
        assert!(report.crawl_interactions > 10);
        // WordPress's search reflects its query: at least one finding.
        assert!(
            report.findings.iter().any(|f| matches!(
                &f.sink,
                Sink::QueryParam { param, .. } | Sink::FormField { field: param, .. }
                    if param == "q"
            )),
            "expected the search reflection: {:?}",
            report.findings
        );
    }

    #[test]
    fn better_crawlers_expose_more_surface() {
        let mak = run_scan("mak", "drupal", &quick(), 2).unwrap();
        let qexplore = run_scan("qexplore", "drupal", &quick(), 2).unwrap();
        assert!(
            mak.surface.endpoint_count() > qexplore.surface.endpoint_count(),
            "MAK {} vs QExplore {} endpoints — coverage drives scanner yield",
            mak.surface.endpoint_count(),
            qexplore.surface.endpoint_count()
        );
    }

    #[test]
    fn unknown_names_yield_none() {
        assert!(run_scan("nessus", "drupal", &quick(), 1).is_none());
        assert!(run_scan("mak", "geocities", &quick(), 1).is_none());
    }

    #[test]
    fn scans_are_deterministic() {
        let a = run_scan("bfs", "vanilla", &quick(), 5).unwrap();
        let b = run_scan("bfs", "vanilla", &quick(), 5).unwrap();
        assert_eq!(a.findings, b.findings);
        assert_eq!(a.surface.endpoint_count(), b.surface.endpoint_count());
        assert_eq!(a.lines_covered, b.lines_covered);
    }
}
