//! # mak-scanner — crawler-driven black-box scanning
//!
//! The paper closes with: *"Future work will focus on […] integrating MAK
//! within web scanners to enhance web application testing and security
//! assessments"* (§VII). This crate is that integration, built on the
//! reproduction's substrate:
//!
//! - [`surface`] — the [`AttackSurface`](surface::AttackSurface): every
//!   endpoint, query parameter, and form a crawl exposes, collected by
//!   shadowing the browser ([`Browser::set_page_observer`]);
//! - [`probe`] — reflected-input probing: canary values injected into each
//!   discovered parameter and form field, with findings reported when the
//!   application echoes them back;
//! - [`scan`] — the two-phase orchestration: crawl (with any registered
//!   crawler) then probe, under one virtual-time budget.
//!
//! Because probing starts from whatever the crawl discovered, scanner yield
//! is directly proportional to crawl coverage — the paper's motivation for
//! better crawling ("inadequate coverage can leave issues undetected", §I).
//!
//! ## Example
//!
//! ```
//! use mak_scanner::scan::{run_scan, ScanConfig};
//!
//! let report = run_scan("mak", "vanilla", &ScanConfig::with_minutes(2.0, 1.0), 7)
//!     .expect("known crawler and app");
//! assert!(report.surface.endpoint_count() > 0);
//! ```
//!
//! [`Browser::set_page_observer`]: mak_browser::client::Browser::set_page_observer

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod probe;
pub mod scan;
pub mod surface;
