//! Redirect handling against a purpose-built application: chains within
//! the cap are followed transparently; loops and external redirects are
//! cut off rather than followed forever.

use mak_browser::client::{BrowseError, Browser};
use mak_browser::clock::VirtualClock;
use mak_websim::coverage::{Block, CodeModel, CoverageMode};
use mak_websim::dom::{Document, Element, Tag};
use mak_websim::http::{Request, Response, Status};
use mak_websim::server::{AppHost, RequestCtx, WebApp};
use mak_websim::url::Url;

/// Routes: `/` (page), `/chain/<n>` redirects to `/chain/<n-1>` down to
/// `/chain/0` (page), `/loop` redirects to itself, `/out` redirects to an
/// external domain.
struct RedirectMaze {
    model: CodeModel,
    block: Block,
}

impl RedirectMaze {
    fn new() -> Self {
        let mut model = CodeModel::new();
        let file = model.declare_file("maze.php", 10);
        RedirectMaze { model, block: Block { file, start: 1, end: 10 } }
    }
}

impl WebApp for RedirectMaze {
    fn name(&self) -> &str {
        "maze"
    }

    fn seed_url(&self) -> Url {
        Url::new("maze.local", "/")
    }

    fn code_model(&self) -> &CodeModel {
        &self.model
    }

    fn coverage_mode(&self) -> CoverageMode {
        CoverageMode::Live
    }

    fn handle(&self, req: &Request, ctx: &mut RequestCtx<'_>) -> Response {
        ctx.execute(self.block);
        let path = req.url.path();
        if let Some(n) = path.strip_prefix("/chain/").and_then(|n| n.parse::<u32>().ok()) {
            return if n == 0 {
                Response::html(Document::new(
                    req.url.clone(),
                    "end of chain",
                    Element::new(Tag::Body).child(Element::new(Tag::A).attr("href", "/")),
                ))
            } else {
                Response::redirect(Url::new("maze.local", format!("/chain/{}", n - 1)))
            };
        }
        match path {
            "/loop" => Response::redirect(Url::new("maze.local", "/loop")),
            "/out" => Response::redirect("http://elsewhere.example/".parse().unwrap()),
            _ => Response::html(Document::new(
                req.url.clone(),
                "home",
                Element::new(Tag::Body)
                    .child(Element::new(Tag::A).attr("href", "/chain/3"))
                    .child(Element::new(Tag::A).attr("href", "/loop"))
                    .child(Element::new(Tag::A).attr("href", "/out")),
            )),
        }
    }
}

fn browser() -> Browser {
    Browser::new(
        AppHost::new(Box::new(RedirectMaze::new())),
        VirtualClock::with_budget_minutes(30.0),
        1,
    )
}

#[test]
fn short_chains_are_followed_to_the_end() {
    let mut b = browser();
    let page = b.navigate(&"http://maze.local/chain/3".parse().unwrap()).unwrap();
    assert_eq!(page.status(), Status::Ok);
    assert_eq!(page.url().path(), "/chain/0", "final URL is the chain end");
    assert_eq!(page.title(), "end of chain");
}

#[test]
fn redirect_loops_are_cut_off() {
    let mut b = browser();
    let before = b.clock().elapsed_ms();
    let err = b.navigate(&"http://maze.local/loop".parse().unwrap()).unwrap_err();
    match err {
        BrowseError::TooManyRedirects(url) => {
            assert_eq!(url.path(), "/loop", "the looping location is named");
        }
        other => panic!("loop surfaces as a typed error, got {other:?}"),
    }
    // Each followed hop was charged, so the loop consumed bounded time.
    let spent = b.clock().elapsed_ms() - before;
    assert!(spent > 0.0, "the followed hops were still charged");
    assert!(spent < 10_000.0, "bounded hops: {spent}ms");
}

#[test]
fn redirects_to_external_domains_are_not_followed() {
    let mut b = browser();
    let page = b.navigate(&"http://maze.local/out".parse().unwrap()).unwrap();
    assert_eq!(page.status(), Status::ServerError);
    assert!(!page.url().same_origin(&"http://maze.local/".parse().unwrap()));
    // The external host was never contacted (the simulator would have
    // answered 404 for a foreign host; the browser refused before that).
    assert!(page.document().is_none());
}

#[test]
fn redirect_hops_cost_less_than_full_loads() {
    let mut b = browser();
    b.navigate(&"http://maze.local/".parse().unwrap()).unwrap();
    let t0 = b.clock().elapsed_ms();
    b.navigate(&"http://maze.local/chain/1".parse().unwrap()).unwrap();
    let one_hop = b.clock().elapsed_ms() - t0;
    let t1 = b.clock().elapsed_ms();
    b.navigate(&"http://maze.local/chain/0".parse().unwrap()).unwrap();
    let direct = b.clock().elapsed_ms() - t1;
    assert!(one_hop > direct, "a hop adds latency: {one_hop} vs {direct}");
    assert!(one_hop < direct * 3.0, "but only a headers-only round trip");
}
