//! The black-box browsing client.
//!
//! [`Browser`] is the `EXECUTE(p, a)` primitive of the paper's Algorithm 2:
//! it navigates to URLs, clicks buttons, fills and submits forms, follows
//! redirects, refuses external domains (§V-A assumption ii), carries the
//! session cookie, and charges every operation to the virtual clock.

use crate::clock::VirtualClock;
use crate::cost::CostModel;
use crate::page::Page;
use mak_obs::event::Event;
use mak_obs::sink::SinkHandle;
use mak_websim::dom::{FieldKind, FormSpec, Interactable};
use mak_websim::http::{Body, Method, Request, SessionId, Status};
use mak_websim::server::AppHost;
use mak_websim::url::Url;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Maximum redirects followed per navigation, as in real browsers.
const MAX_REDIRECTS: usize = 5;

/// Errors surfaced to crawlers by the browser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrowseError {
    /// The virtual time budget is exhausted; the run is over.
    BudgetExhausted,
    /// The target URL leaves the application's origin; the action is
    /// invalid per §V-A assumption ii.
    ExternalDomain(Url),
}

impl fmt::Display for BrowseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrowseError::BudgetExhausted => write!(f, "virtual time budget exhausted"),
            BrowseError::ExternalDomain(url) => write!(f, "external domain: {url}"),
        }
    }
}

impl std::error::Error for BrowseError {}

/// Callback invoked with every page the browser renders; see
/// [`Browser::set_page_observer`].
pub type PageObserver = Box<dyn FnMut(&Page)>;

/// A black-box browsing client bound to one hosted application.
pub struct Browser {
    host: AppHost,
    origin: Url,
    cookie: Option<SessionId>,
    clock: VirtualClock,
    cost: CostModel,
    rng: StdRng,
    interactions: u64,
    fill_counter: u64,
    observer: Option<PageObserver>,
    sink: SinkHandle,
}

impl std::fmt::Debug for Browser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Browser")
            .field("origin", &self.origin)
            .field("interactions", &self.interactions)
            .field("elapsed_ms", &self.clock.elapsed_ms())
            .field("has_observer", &self.observer.is_some())
            .finish_non_exhaustive()
    }
}

impl Browser {
    /// Opens a browser against `host` with the default cost model.
    pub fn new(host: AppHost, clock: VirtualClock, seed: u64) -> Self {
        Self::with_cost_model(host, clock, seed, CostModel::default())
    }

    /// Opens a browser with an explicit cost model.
    pub fn with_cost_model(host: AppHost, clock: VirtualClock, seed: u64, cost: CostModel) -> Self {
        let origin = host.app().seed_url();
        Browser {
            host,
            origin,
            cookie: None,
            clock,
            cost,
            rng: StdRng::seed_from_u64(seed),
            interactions: 0,
            fill_counter: 0,
            observer: None,
            sink: SinkHandle::none(),
        }
    }

    /// Attaches an event sink; the browser emits
    /// [`Event::PageFetched`] / [`Event::RedirectFollowed`] with the
    /// cost-model breakdown of every charge. Purely observational —
    /// the charges themselves are identical with or without a sink.
    pub fn set_sink(&mut self, sink: SinkHandle) {
        self.sink = sink;
    }

    /// Installs a callback invoked with every rendered page, in fetch
    /// order — how a scanner shadowing the crawl collects the attack
    /// surface without altering crawler behaviour.
    pub fn set_page_observer(&mut self, observer: impl FnMut(&Page) + 'static) {
        self.observer = Some(Box::new(observer));
    }

    /// The application's origin (seed URL).
    pub fn origin(&self) -> &Url {
        &self.origin
    }

    /// The virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The cost model in effect, so crawlers can price their own policy
    /// overhead (see [`CostModel::state_policy_cost`]).
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Number of element interactions executed so far — the §V-D metric.
    pub fn interaction_count(&self) -> u64 {
        self.interactions
    }

    /// The hosted application (measurement side).
    pub fn host(&self) -> &AppHost {
        &self.host
    }

    /// Seals the run and returns the host for final measurement.
    pub fn finish(mut self) -> AppHost {
        self.host.shutdown();
        self.host
    }

    /// Charges policy-decision overhead to the clock (called by the crawl
    /// engine once per decision; see [`CostModel`]).
    pub fn charge_policy_overhead(&mut self, ms: f64) {
        self.clock.advance(ms);
    }

    /// Loads the application's seed URL — the start of every crawl.
    ///
    /// # Errors
    ///
    /// Returns [`BrowseError::BudgetExhausted`] if the budget is spent.
    pub fn open_seed(&mut self) -> Result<Page, BrowseError> {
        let seed = self.origin.clone();
        self.navigate(&seed)
    }

    /// Navigates to `url` with `GET`, following redirects.
    ///
    /// # Errors
    ///
    /// - [`BrowseError::BudgetExhausted`] if the budget is spent;
    /// - [`BrowseError::ExternalDomain`] if `url` leaves the origin.
    pub fn navigate(&mut self, url: &Url) -> Result<Page, BrowseError> {
        self.request(Request::get(url.clone()))
    }

    /// Sends a raw `POST` with an explicit body — the primitive scanners
    /// use to replay a discovered form with chosen values rather than the
    /// browser's standard fill.
    ///
    /// # Errors
    ///
    /// Same conditions as [`navigate`](Self::navigate).
    pub fn post(&mut self, url: &Url, form: Vec<(String, String)>) -> Result<Page, BrowseError> {
        self.request(Request::post(url.clone(), form))
    }

    /// Executes an interactable element: follows a link, clicks a button, or
    /// fills and submits a form. Counts as one atomic interaction (§V-D).
    ///
    /// # Errors
    ///
    /// Same conditions as [`navigate`](Self::navigate).
    pub fn execute(&mut self, action: &Interactable) -> Result<Page, BrowseError> {
        let result = match action {
            Interactable::Link { href, .. } => self.request(Request::get(href.clone())),
            Interactable::Button { target, .. } => {
                self.request(Request::post(target.clone(), Vec::new()))
            }
            Interactable::Form(form) => {
                let data = self.fill_form(form);
                match form.method {
                    Method::Get => {
                        let mut url = form.action.clone();
                        for (k, v) in data {
                            url = url.with_query(k, v);
                        }
                        self.request(Request::get(url))
                    }
                    Method::Post => self.request(Request::post(form.action.clone(), data)),
                }
            }
        };
        if result.is_ok() {
            self.interactions += 1;
        }
        result
    }

    /// Fills a form the way the unified framework does for all crawlers
    /// (§V-A assumption i): generated strings for text fields, echoed hidden
    /// values, the first option for selects, a fixed password.
    fn fill_form(&mut self, form: &FormSpec) -> Vec<(String, String)> {
        use rand::Rng as _;
        let mut data = Vec::with_capacity(form.fields.len());
        for field in &form.fields {
            self.fill_counter += 1;
            let value = match &field.kind {
                // Unique within the run (counter) and across runs (seeded
                // salt): different runs submit different values, so
                // input-dependent server branches vary per seed — the
                // run-to-run diversity behind the §V-B union ground truth.
                FieldKind::Text => {
                    format!("input{}-{:04x}", self.fill_counter, self.rng.gen::<u16>())
                }
                FieldKind::Hidden(v) => v.clone(),
                FieldKind::Select(options) => options.first().cloned().unwrap_or_default(),
                FieldKind::Password => "password123".to_owned(),
            };
            data.push((field.name.clone(), value));
        }
        data
    }

    fn request(&mut self, mut req: Request) -> Result<Page, BrowseError> {
        if self.clock.expired() {
            return Err(BrowseError::BudgetExhausted);
        }
        if !req.url.same_origin(&self.origin) {
            return Err(BrowseError::ExternalDomain(req.url));
        }
        let mut hops = 0;
        loop {
            req.session = self.cookie;
            let resp = self.host.fetch(&req);
            if resp.session.is_some() {
                self.cookie = resp.session;
            }
            let latency = self.host.app().base_latency_ms();
            match resp.body {
                Body::Redirect(location) => {
                    // Redirect hop: charge a headers-only round trip.
                    let hop_ms = latency * 0.5;
                    self.clock.advance(hop_ms);
                    self.sink.emit_with(|| Event::RedirectFollowed {
                        url: location.normalized(),
                        fetch_ms: hop_ms,
                    });
                    hops += 1;
                    if hops > MAX_REDIRECTS || !location.same_origin(&self.origin) {
                        return Ok(Page::empty(Status::ServerError, location));
                    }
                    req = Request::get(location);
                }
                Body::Html(doc) => {
                    let page = Page::from_document(resp.status, doc);
                    let cost = self.cost.fetch_cost_parts(
                        &mut self.rng,
                        latency,
                        page.interactables().len(),
                    );
                    self.clock.advance(cost.total());
                    self.sink.emit_with(|| Event::PageFetched {
                        url: page.url().normalized(),
                        status: page.status().code(),
                        fetch_ms: cost.fetch_ms,
                        think_ms: cost.think_ms,
                        interact_ms: cost.interact_ms,
                        elements: page.interactables().len() as u64,
                    });
                    if let Some(observer) = &mut self.observer {
                        observer(&page);
                    }
                    return Ok(page);
                }
                Body::Empty => {
                    let cost = self.cost.fetch_cost_parts(&mut self.rng, latency, 0);
                    self.clock.advance(cost.total());
                    let page = Page::empty(resp.status, req.url);
                    self.sink.emit_with(|| Event::PageFetched {
                        url: page.url().normalized(),
                        status: page.status().code(),
                        fetch_ms: cost.fetch_ms,
                        think_ms: cost.think_ms,
                        interact_ms: cost.interact_ms,
                        elements: 0,
                    });
                    if let Some(observer) = &mut self.observer {
                        observer(&page);
                    }
                    return Ok(page);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mak_websim::apps;

    fn browser(app: &str, budget_min: f64) -> Browser {
        let host = AppHost::new(apps::build(app).expect("known app"));
        Browser::new(host, VirtualClock::with_budget_minutes(budget_min), 7)
    }

    #[test]
    fn open_seed_charges_time_and_returns_elements() {
        let mut b = browser("addressbook", 30.0);
        let page = b.open_seed().unwrap();
        assert!(!page.interactables().is_empty());
        assert!(b.clock().elapsed_ms() > 0.0);
        assert_eq!(b.interaction_count(), 0, "bare navigation is not an interaction");
    }

    #[test]
    fn execute_link_counts_interaction() {
        let mut b = browser("addressbook", 30.0);
        let page = b.open_seed().unwrap();
        let origin = b.origin().clone();
        let link = page
            .valid_interactables(&origin)
            .find(|i| matches!(i, Interactable::Link { .. }))
            .cloned()
            .unwrap();
        let next = b.execute(&link).unwrap();
        assert_eq!(b.interaction_count(), 1);
        assert_eq!(next.status(), Status::Ok);
    }

    #[test]
    fn external_navigation_is_rejected() {
        let mut b = browser("addressbook", 30.0);
        let err = b.navigate(&"http://evil.example/".parse().unwrap()).unwrap_err();
        assert!(matches!(err, BrowseError::ExternalDomain(_)));
        assert_eq!(b.interaction_count(), 0);
    }

    #[test]
    fn budget_exhaustion_stops_navigation() {
        let host = AppHost::new(apps::build("addressbook").unwrap());
        let mut b = Browser::new(host, VirtualClock::new(1.0), 7);
        // First fetch may still run (budget not yet spent)...
        let _ = b.open_seed().unwrap();
        // ...but afterwards the clock has advanced past 1ms.
        let err = b.open_seed().unwrap_err();
        assert_eq!(err, BrowseError::BudgetExhausted);
    }

    #[test]
    fn session_cookie_persists_across_requests() {
        let mut b = browser("oscommerce2", 30.0);
        b.open_seed().unwrap();
        b.navigate(&"http://oscommerce.local/cart".parse().unwrap()).unwrap();
        b.navigate(&"http://oscommerce.local/cart".parse().unwrap()).unwrap();
        assert_eq!(b.host().session_count(), 1, "one session reused");
    }

    #[test]
    fn form_submission_reaches_server_state() {
        let mut b = browser("drupal", 30.0);
        let trap = b.navigate(&"http://drupal.local/shortcuts".parse().unwrap()).unwrap();
        let origin = b.origin().clone();
        let form = trap
            .valid_interactables(&origin)
            .find(|i| matches!(i, Interactable::Form(_)))
            .cloned()
            .expect("trap page has a form");
        let before = trap.interactables().len();
        let after_page = b.execute(&form).unwrap();
        assert_eq!(after_page.interactables().len(), before + 1, "trap form adds a broken link");
    }

    #[test]
    fn filled_text_fields_are_unique_per_submission() {
        let mut b = browser("wordpress", 30.0);
        let page = b.navigate(&"http://wordpress.local/search".parse().unwrap()).unwrap();
        let origin = b.origin().clone();
        let form = page
            .valid_interactables(&origin)
            .find(|i| matches!(i, Interactable::Form(_)))
            .cloned()
            .unwrap();
        let r1 = b.execute(&form).unwrap();
        let r2 = b.execute(&form).unwrap();
        assert_ne!(r1.url(), r2.url(), "distinct generated queries yield distinct URLs");
    }

    #[test]
    fn finish_seals_coverage() {
        let mut b = browser("actual", 30.0);
        b.open_seed().unwrap();
        let host = b.finish();
        assert!(host.tracker().is_sealed());
        assert!(host.tracker().observe_lines_covered().unwrap() > 0);
    }
}
