//! The black-box browsing client.
//!
//! [`Browser`] is the `EXECUTE(p, a)` primitive of the paper's Algorithm 2:
//! it navigates to URLs, clicks buttons, fills and submits forms, follows
//! redirects, refuses external domains (§V-A assumption ii), carries the
//! session cookie, and charges every operation to the virtual clock.

use crate::clock::VirtualClock;
use crate::cost::CostModel;
use crate::fault::{self, FaultKind, FaultPlan, FaultStats};
use crate::page::Page;
use mak_obs::event::Event;
use mak_obs::sink::SinkHandle;
use mak_obs::span::{Phase, PhaseTotals};
use mak_websim::dom::{FieldKind, FormSpec, Interactable};
use mak_websim::http::{Body, Method, Request, SessionId, Status};
use mak_websim::server::{AppHost, HostState};
use mak_websim::url::Url;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Maximum redirects followed per navigation, as in real browsers.
const MAX_REDIRECTS: usize = 5;

/// Errors surfaced to crawlers by the browser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrowseError {
    /// The virtual time budget is exhausted; the run is over.
    BudgetExhausted,
    /// The target URL leaves the application's origin; the action is
    /// invalid per §V-A assumption ii.
    ExternalDomain(Url),
    /// A same-origin redirect chain exceeded [`MAX_REDIRECTS`] hops — a
    /// redirect loop, surfaced as a typed error instead of a silently
    /// truncated error page.
    TooManyRedirects(Url),
    /// An injected transient fault survived every retry (see
    /// [`crate::fault::FaultPlan`]); the navigation was abandoned.
    Transient {
        /// The fault kind that kept firing.
        kind: FaultKind,
        /// Failed attempts made before giving up.
        attempts: u32,
    },
    /// The targeted interactable went stale before execution (injected;
    /// see [`crate::fault::FaultPlan::stale_element`]).
    StaleElement,
}

impl fmt::Display for BrowseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrowseError::BudgetExhausted => write!(f, "virtual time budget exhausted"),
            BrowseError::ExternalDomain(url) => write!(f, "external domain: {url}"),
            BrowseError::TooManyRedirects(url) => write!(f, "redirect loop at: {url}"),
            BrowseError::Transient { kind, attempts } => {
                write!(f, "transient {kind} fault persisted across {attempts} attempts")
            }
            BrowseError::StaleElement => write!(f, "stale element reference"),
        }
    }
}

impl std::error::Error for BrowseError {}

/// Callback invoked with every page the browser renders; see
/// [`Browser::set_page_observer`]. `Send + Sync` so a [`Browser`] owning
/// one stays movable between scheduler worker threads.
pub type PageObserver = Box<dyn FnMut(&Page) + Send + Sync>;

/// A black-box browsing client bound to one hosted application.
pub struct Browser {
    host: AppHost,
    origin: Url,
    cookie: Option<SessionId>,
    clock: VirtualClock,
    cost: CostModel,
    rng: StdRng,
    interactions: u64,
    fill_counter: u64,
    observer: Option<PageObserver>,
    sink: SinkHandle,
    faults: FaultPlan,
    /// Seed of the fault-decision stream: `plan.fault_seed ^ run seed`.
    fault_stream_seed: u64,
    /// Monotonic decision counter; each injection decision consumes one
    /// index of the stream and never touches `rng`.
    fault_counter: u64,
    fault_stats: FaultStats,
    /// Always-on per-phase attribution of every clock charge (see
    /// [`PhaseTotals`]); the clock advances themselves are untouched, so
    /// the virtual timeline is bit-identical with or without readers.
    phase: PhaseTotals,
}

impl std::fmt::Debug for Browser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Browser")
            .field("origin", &self.origin)
            .field("interactions", &self.interactions)
            .field("elapsed_ms", &self.clock.elapsed_ms())
            .field("has_observer", &self.observer.is_some())
            .finish_non_exhaustive()
    }
}

impl Browser {
    /// Opens a browser against `host` with the default cost model.
    pub fn new(host: AppHost, clock: VirtualClock, seed: u64) -> Self {
        Self::with_cost_model(host, clock, seed, CostModel::default())
    }

    /// Opens a browser with an explicit cost model and no fault plan.
    pub fn with_cost_model(host: AppHost, clock: VirtualClock, seed: u64, cost: CostModel) -> Self {
        Self::with_faults(host, clock, seed, cost, FaultPlan::none())
    }

    /// Opens a browser with an explicit cost model and fault plan. With
    /// [`FaultPlan::none`] this is exactly [`Self::with_cost_model`]: the
    /// fault layer is never consulted and behaviour is bit-identical.
    pub fn with_faults(
        host: AppHost,
        clock: VirtualClock,
        seed: u64,
        cost: CostModel,
        faults: FaultPlan,
    ) -> Self {
        let origin = host.app().seed_url();
        let fault_stream_seed = faults.fault_seed ^ seed;
        Browser {
            host,
            origin,
            cookie: None,
            clock,
            cost,
            rng: StdRng::seed_from_u64(seed),
            interactions: 0,
            fill_counter: 0,
            observer: None,
            sink: SinkHandle::none(),
            faults,
            fault_stream_seed,
            fault_counter: 0,
            fault_stats: FaultStats::default(),
            phase: PhaseTotals::default(),
        }
    }

    /// Attaches an event sink; the browser emits
    /// [`Event::PageFetched`] / [`Event::RedirectFollowed`] with the
    /// cost-model breakdown of every charge. Purely observational —
    /// the charges themselves are identical with or without a sink.
    pub fn set_sink(&mut self, sink: SinkHandle) {
        self.sink = sink;
    }

    /// Installs a callback invoked with every rendered page, in fetch
    /// order — how a scanner shadowing the crawl collects the attack
    /// surface without altering crawler behaviour.
    pub fn set_page_observer(&mut self, observer: impl FnMut(&Page) + Send + Sync + 'static) {
        self.observer = Some(Box::new(observer));
    }

    /// The application's origin (seed URL).
    pub fn origin(&self) -> &Url {
        &self.origin
    }

    /// The virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The cost model in effect, so crawlers can price their own policy
    /// overhead (see [`CostModel::state_policy_cost`]).
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Number of element interactions executed so far — the §V-D metric.
    pub fn interaction_count(&self) -> u64 {
        self.interactions
    }

    /// What the fault layer did so far (all zeros without a fault plan).
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault_stats
    }

    /// Where the virtual time went so far: every clock charge attributed
    /// to one leaf phase. The buckets partition
    /// [`VirtualClock::elapsed_ms`] exactly (up to float summation
    /// order).
    pub fn phase_totals(&self) -> &PhaseTotals {
        &self.phase
    }

    /// The hosted application (measurement side).
    pub fn host(&self) -> &AppHost {
        &self.host
    }

    /// Seals the run and returns the host for final measurement.
    pub fn finish(mut self) -> AppHost {
        self.host.shutdown();
        self.host
    }

    /// Charges policy-decision overhead to the clock (called by the crawl
    /// engine once per decision; see [`CostModel`]).
    pub fn charge_policy_overhead(&mut self, ms: f64) {
        self.clock.advance(ms);
        self.phase.policy_ms += ms;
        self.sink.span_set_now(self.clock.elapsed_ms());
    }

    /// Loads the application's seed URL — the start of every crawl.
    ///
    /// # Errors
    ///
    /// Returns [`BrowseError::BudgetExhausted`] if the budget is spent.
    pub fn open_seed(&mut self) -> Result<Page, BrowseError> {
        let seed = self.origin.clone();
        self.navigate(&seed)
    }

    /// Navigates to `url` with `GET`, following redirects.
    ///
    /// # Errors
    ///
    /// - [`BrowseError::BudgetExhausted`] if the budget is spent;
    /// - [`BrowseError::ExternalDomain`] if `url` leaves the origin.
    pub fn navigate(&mut self, url: &Url) -> Result<Page, BrowseError> {
        self.request(Request::get(url.clone()))
    }

    /// Sends a raw `POST` with an explicit body — the primitive scanners
    /// use to replay a discovered form with chosen values rather than the
    /// browser's standard fill.
    ///
    /// # Errors
    ///
    /// Same conditions as [`navigate`](Self::navigate).
    pub fn post(&mut self, url: &Url, form: Vec<(String, String)>) -> Result<Page, BrowseError> {
        self.request(Request::post(url.clone(), form))
    }

    /// Executes an interactable element: follows a link, clicks a button, or
    /// fills and submits a form. Counts as one atomic interaction (§V-D).
    ///
    /// # Errors
    ///
    /// Same conditions as [`navigate`](Self::navigate).
    pub fn execute(&mut self, action: &Interactable) -> Result<Page, BrowseError> {
        let span = self.sink.span_open(Phase::ExecuteAction, self.clock.elapsed_ms());
        let result = self.execute_inner(action);
        self.sink.span_close(span, self.clock.elapsed_ms());
        result
    }

    fn execute_inner(&mut self, action: &Interactable) -> Result<Page, BrowseError> {
        if !self.faults.is_none() {
            if self.clock.expired() {
                return Err(BrowseError::BudgetExhausted);
            }
            let roll = self.next_fault_roll();
            if self.faults.element_stale(roll) {
                // The element reference died before any request went out:
                // charge the aborted round trip, no interaction counted.
                let kind = FaultKind::StaleElement;
                let wait = self.cost.fault_wait_ms(
                    self.host.app().base_latency_ms(),
                    kind.round_trips(&self.faults),
                );
                let start = self.clock.elapsed_ms();
                self.clock.advance(wait);
                self.charge_render(start, wait);
                self.fault_stats.injected += 1;
                self.fault_stats.stale_elements += 1;
                let url = action_target(action).normalized().to_owned();
                self.sink.emit_with(|| Event::FaultInjected {
                    kind: kind.name().to_owned(),
                    url,
                    wait_ms: wait,
                });
                return Err(BrowseError::StaleElement);
            }
        }
        let result = match action {
            Interactable::Link { href, .. } => self.request(Request::get(href.clone())),
            Interactable::Button { target, .. } => {
                self.request(Request::post(target.clone(), Vec::new()))
            }
            Interactable::Form(form) => {
                let data = self.fill_form(form);
                match form.method {
                    Method::Get => {
                        let mut url = form.action.clone();
                        for (k, v) in data {
                            url = url.with_query(k, v);
                        }
                        self.request(Request::get(url))
                    }
                    Method::Post => self.request(Request::post(form.action.clone(), data)),
                }
            }
        };
        if result.is_ok() {
            self.interactions += 1;
        }
        result
    }

    /// Fills a form the way the unified framework does for all crawlers
    /// (§V-A assumption i): generated strings for text fields, echoed hidden
    /// values, the first option for selects, a fixed password.
    fn fill_form(&mut self, form: &FormSpec) -> Vec<(String, String)> {
        use rand::Rng as _;
        let mut data = Vec::with_capacity(form.fields.len());
        for field in &form.fields {
            self.fill_counter += 1;
            let value = match &field.kind {
                // Unique within the run (counter) and across runs (seeded
                // salt): different runs submit different values, so
                // input-dependent server branches vary per seed — the
                // run-to-run diversity behind the §V-B union ground truth.
                FieldKind::Text => {
                    format!("input{}-{:04x}", self.fill_counter, self.rng.gen::<u16>())
                }
                FieldKind::Hidden(v) => v.clone(),
                FieldKind::Select(options) => options.first().cloned().unwrap_or_default(),
                FieldKind::Password => "password123".to_owned(),
            };
            data.push((field.name.clone(), value));
        }
        data
    }

    /// The next draw of the fault-decision stream — a pure function of
    /// `(fault_stream_seed, counter)`, deliberately separate from `rng`
    /// so injection never shifts the cost-model jitter sequence.
    fn next_fault_roll(&mut self) -> f64 {
        let index = self.fault_counter;
        self.fault_counter += 1;
        fault::roll(self.fault_stream_seed, index)
    }

    fn request(&mut self, req: Request) -> Result<Page, BrowseError> {
        if self.clock.expired() {
            return Err(BrowseError::BudgetExhausted);
        }
        if !req.url.same_origin(&self.origin) {
            return Err(BrowseError::ExternalDomain(req.url));
        }
        if self.faults.is_none() {
            // Zero-fault fast path: no decision stream, bit-identical to
            // the pre-fault-injection browser.
            return self.perform(req);
        }
        let mut attempts: u32 = 0;
        loop {
            let roll = self.next_fault_roll();
            if let Some(kind) = self.faults.transient_fault(roll) {
                if kind == FaultKind::SessionExpiry {
                    // The server forgot us: drop the cookie and proceed as
                    // an anonymous visitor — a recoverable reset, not an
                    // error (MAK's statelessness is motivated by exactly
                    // this, §II).
                    self.cookie = None;
                    self.fault_stats.injected += 1;
                    self.fault_stats.session_expiries += 1;
                    let url = req.url.normalized().to_owned();
                    self.sink.emit_with(|| Event::FaultInjected {
                        kind: kind.name().to_owned(),
                        url,
                        wait_ms: 0.0,
                    });
                } else {
                    let wait = self.cost.fault_wait_ms(
                        self.host.app().base_latency_ms(),
                        kind.round_trips(&self.faults),
                    );
                    let start = self.clock.elapsed_ms();
                    self.clock.advance(wait);
                    self.charge_render(start, wait);
                    self.fault_stats.injected += 1;
                    attempts += 1;
                    let url = req.url.normalized().to_owned();
                    self.sink.emit_with(|| Event::FaultInjected {
                        kind: kind.name().to_owned(),
                        url,
                        wait_ms: wait,
                    });
                    if self.clock.expired() {
                        return Err(BrowseError::BudgetExhausted);
                    }
                    if attempts >= self.faults.retry.max_attempts {
                        self.fault_stats.exhausted += 1;
                        return Err(BrowseError::Transient { kind, attempts });
                    }
                    let backoff = self.faults.retry.backoff_ms(attempts);
                    let start = self.clock.elapsed_ms();
                    self.clock.advance(backoff);
                    self.phase.backoff_ms += backoff;
                    self.sink.span_leaf(Phase::Backoff, start, backoff);
                    self.sink.span_set_now(self.clock.elapsed_ms());
                    self.fault_stats.retries += 1;
                    self.fault_stats.backoff_ms += backoff;
                    self.sink.emit_with(|| Event::RetryScheduled {
                        attempt: attempts as u64,
                        backoff_ms: backoff,
                    });
                    if self.clock.expired() {
                        return Err(BrowseError::BudgetExhausted);
                    }
                    continue;
                }
            }
            let page = self.perform(req.clone())?;
            if attempts > 0 {
                self.fault_stats.recoveries += 1;
                let recovered_after = attempts as u64;
                self.sink.emit_with(|| Event::FaultRecovered { attempts: recovered_after });
            }
            return Ok(page);
        }
    }

    /// One actual navigation (no injection): fetch, follow redirects,
    /// charge the cost model, render the page.
    fn perform(&mut self, mut req: Request) -> Result<Page, BrowseError> {
        let mut hops = 0;
        loop {
            req.session = self.cookie;
            let resp = self.host.fetch(&req);
            if resp.session.is_some() {
                self.cookie = resp.session;
            }
            let latency = self.host.app().base_latency_ms();
            match resp.body {
                Body::Redirect(location) => {
                    // Redirect hop: charge a headers-only round trip.
                    let hop_ms = latency * 0.5;
                    let start = self.clock.elapsed_ms();
                    self.clock.advance(hop_ms);
                    self.charge_render(start, hop_ms);
                    self.sink.emit_with(|| Event::RedirectFollowed {
                        url: location.normalized().to_owned(),
                        fetch_ms: hop_ms,
                    });
                    hops += 1;
                    if !location.same_origin(&self.origin) {
                        // Off-origin redirect: not followed, rendered as an
                        // error page (the crawler sees a dead end, not a
                        // failure).
                        return Ok(Page::empty(Status::ServerError, location));
                    }
                    if hops > MAX_REDIRECTS {
                        // A same-origin redirect loop is a navigation
                        // failure, surfaced as a typed error rather than a
                        // silently truncated error page.
                        return Err(BrowseError::TooManyRedirects(location));
                    }
                    req = Request::get(location);
                }
                Body::Html(doc) => {
                    let page = Page::from_document(resp.status, doc);
                    let cost = self.cost.fetch_cost_parts(
                        &mut self.rng,
                        latency,
                        page.interactables().len(),
                    );
                    let start = self.clock.elapsed_ms();
                    self.clock.advance(cost.total());
                    self.charge_fetch(start, cost.fetch_ms, cost.think_ms, cost.interact_ms);
                    self.sink.emit_with(|| Event::PageFetched {
                        url: page.url().normalized().to_owned(),
                        status: page.status().code(),
                        fetch_ms: cost.fetch_ms,
                        think_ms: cost.think_ms,
                        interact_ms: cost.interact_ms,
                        elements: page.interactables().len() as u64,
                    });
                    if let Some(observer) = &mut self.observer {
                        observer(&page);
                    }
                    return Ok(page);
                }
                Body::Empty => {
                    let cost = self.cost.fetch_cost_parts(&mut self.rng, latency, 0);
                    let start = self.clock.elapsed_ms();
                    self.clock.advance(cost.total());
                    self.charge_fetch(start, cost.fetch_ms, cost.think_ms, cost.interact_ms);
                    let page = Page::empty(resp.status, req.url);
                    self.sink.emit_with(|| Event::PageFetched {
                        url: page.url().normalized().to_owned(),
                        status: page.status().code(),
                        fetch_ms: cost.fetch_ms,
                        think_ms: cost.think_ms,
                        interact_ms: cost.interact_ms,
                        elements: 0,
                    });
                    if let Some(observer) = &mut self.observer {
                        observer(&page);
                    }
                    return Ok(page);
                }
            }
        }
    }
}

impl Browser {
    /// Attributes a network-shaped charge (fault wait, redirect hop)
    /// already advanced on the clock: bucket it under `Render` and emit
    /// the leaf span when profiling. Never advances the clock itself.
    fn charge_render(&mut self, start_ms: f64, ms: f64) {
        self.phase.render_ms += ms;
        self.sink.span_leaf(Phase::Render, start_ms, ms);
        self.sink.span_set_now(self.clock.elapsed_ms());
    }

    /// Attributes one fetch charge (already advanced as a single
    /// `cost.total()` so the timeline is unchanged) to its three parts,
    /// laying the leaf spans out consecutively from `start_ms`.
    fn charge_fetch(&mut self, start_ms: f64, fetch_ms: f64, think_ms: f64, interact_ms: f64) {
        self.phase.render_ms += fetch_ms;
        self.phase.think_ms += think_ms;
        self.phase.extract_ms += interact_ms;
        if self.sink.spans_active() {
            self.sink.span_leaf(Phase::Render, start_ms, fetch_ms);
            self.sink.span_leaf(Phase::Think, start_ms + fetch_ms, think_ms);
            self.sink.span_leaf(
                Phase::ExtractInteractables,
                start_ms + fetch_ms + think_ms,
                interact_ms,
            );
            self.sink.span_set_now(self.clock.elapsed_ms());
        }
    }
}

/// The browser's full mutable state between steps, captured by
/// [`Browser::snapshot`] and rehydrated by [`Browser::restore`].
///
/// Only state that evolves during the crawl is here; the immutable run
/// configuration (seed, [`CostModel`], [`FaultPlan`]) is supplied again at
/// restore time by whoever owns the checkpoint, and derived values
/// (`origin`, `fault_stream_seed`) are recomputed. The observer and sink
/// are deliberately absent — both are observational attachments the caller
/// re-installs after restore.
#[derive(Debug, Clone)]
pub struct BrowserState {
    /// The session cookie, if the crawl is logged in.
    pub cookie: Option<SessionId>,
    /// Elapsed virtual milliseconds.
    pub now_ms: f64,
    /// The virtual budget in milliseconds.
    pub budget_ms: f64,
    /// The cost-model RNG's xoshiro256++ words — resuming replays the
    /// jitter stream from exactly where it stopped.
    pub rng: [u64; 4],
    /// Interactions executed so far (§V-D metric).
    pub interactions: u64,
    /// Monotonic form-fill counter (keeps generated field values unique).
    pub fill_counter: u64,
    /// Fault-decision stream position.
    pub fault_counter: u64,
    /// Fault-layer statistics so far.
    pub fault_stats: FaultStats,
    /// Per-phase virtual-time attribution so far.
    pub phase: PhaseTotals,
    /// The hosted application's server-side state (coverage tracker,
    /// session store, request count).
    pub host: HostState,
}

impl serde::Serialize for BrowserState {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("cookie".to_owned(), self.cookie.to_value()),
            ("now_ms".to_owned(), serde::Value::Float(self.now_ms)),
            ("budget_ms".to_owned(), serde::Value::Float(self.budget_ms)),
            ("rng".to_owned(), self.rng.to_value()),
            ("interactions".to_owned(), serde::Value::UInt(self.interactions)),
            ("fill_counter".to_owned(), serde::Value::UInt(self.fill_counter)),
            ("fault_counter".to_owned(), serde::Value::UInt(self.fault_counter)),
            ("fault_stats".to_owned(), self.fault_stats.to_value()),
            ("phase".to_owned(), self.phase.to_value()),
            ("host".to_owned(), self.host.to_value()),
        ])
    }
}

impl serde::Deserialize for BrowserState {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(entries) = value else {
            return Err(serde::Error::custom("expected BrowserState object"));
        };
        let rng_words: Vec<u64> = serde::__field(entries, "rng")?;
        let rng: [u64; 4] = rng_words
            .as_slice()
            .try_into()
            .map_err(|_| serde::Error::custom("rng state must be four words"))?;
        if rng == [0; 4] {
            return Err(serde::Error::custom("rng state must be non-zero"));
        }
        let now_ms: f64 = serde::__field(entries, "now_ms")?;
        let budget_ms: f64 = serde::__field(entries, "budget_ms")?;
        // Negated so NaN in either field also fails validation.
        let clock_ok = budget_ms > 0.0 && now_ms >= 0.0;
        if !clock_ok {
            return Err(serde::Error::custom("malformed clock state"));
        }
        Ok(BrowserState {
            cookie: serde::__field(entries, "cookie")?,
            now_ms,
            budget_ms,
            rng,
            interactions: serde::__field(entries, "interactions")?,
            fill_counter: serde::__field(entries, "fill_counter")?,
            fault_counter: serde::__field(entries, "fault_counter")?,
            fault_stats: serde::__field(entries, "fault_stats")?,
            phase: serde::__field(entries, "phase")?,
            host: serde::__field(entries, "host")?,
        })
    }
}

impl Browser {
    /// Captures the full mutable state of this browser and its hosted
    /// application. Call between steps (never mid-request); restoring the
    /// result with [`Browser::restore`] under the same `(seed, cost,
    /// faults)` continues the crawl bit-identically.
    pub fn snapshot(&self) -> BrowserState {
        BrowserState {
            cookie: self.cookie,
            now_ms: self.clock.elapsed_ms(),
            budget_ms: self.clock.budget_ms(),
            rng: self.rng.state(),
            interactions: self.interactions,
            fill_counter: self.fill_counter,
            fault_counter: self.fault_counter,
            fault_stats: self.fault_stats.clone(),
            phase: self.phase,
            host: self.host.snapshot_state(),
        }
    }

    /// Rebuilds a browser mid-crawl. `host` must already be rehydrated
    /// from the same checkpoint's embedded [`HostState`]
    /// (`AppHost::restore_shared` / `restore_owned`); `seed`, `cost`, and
    /// `faults` are the run's immutable configuration, re-supplied because
    /// they never travel in the checkpoint. The restored browser has no
    /// observer and a null sink — re-attach after restore if needed.
    pub fn restore(
        host: AppHost,
        seed: u64,
        cost: CostModel,
        faults: FaultPlan,
        state: &BrowserState,
    ) -> Self {
        let origin = host.app().seed_url();
        let fault_stream_seed = faults.fault_seed ^ seed;
        Browser {
            host,
            origin,
            cookie: state.cookie,
            clock: VirtualClock::restore(state.now_ms, state.budget_ms),
            cost,
            rng: StdRng::from_state(state.rng),
            interactions: state.interactions,
            fill_counter: state.fill_counter,
            observer: None,
            sink: SinkHandle::none(),
            faults,
            fault_stream_seed,
            fault_counter: state.fault_counter,
            fault_stats: state.fault_stats.clone(),
            phase: state.phase,
        }
    }
}

/// The URL an interactable resolves to — used to label fault events.
fn action_target(action: &Interactable) -> &Url {
    match action {
        Interactable::Link { href, .. } => href,
        Interactable::Button { target, .. } => target,
        Interactable::Form(form) => &form.action,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mak_websim::apps;

    fn browser(app: &str, budget_min: f64) -> Browser {
        let host = AppHost::new(apps::build(app).expect("known app"));
        Browser::new(host, VirtualClock::with_budget_minutes(budget_min), 7)
    }

    #[test]
    fn open_seed_charges_time_and_returns_elements() {
        let mut b = browser("addressbook", 30.0);
        let page = b.open_seed().unwrap();
        assert!(!page.interactables().is_empty());
        assert!(b.clock().elapsed_ms() > 0.0);
        assert_eq!(b.interaction_count(), 0, "bare navigation is not an interaction");
    }

    #[test]
    fn execute_link_counts_interaction() {
        let mut b = browser("addressbook", 30.0);
        let page = b.open_seed().unwrap();
        let origin = b.origin().clone();
        let link = page
            .valid_interactables(&origin)
            .find(|i| matches!(i, Interactable::Link { .. }))
            .cloned()
            .unwrap();
        let next = b.execute(&link).unwrap();
        assert_eq!(b.interaction_count(), 1);
        assert_eq!(next.status(), Status::Ok);
    }

    #[test]
    fn external_navigation_is_rejected() {
        let mut b = browser("addressbook", 30.0);
        let err = b.navigate(&"http://evil.example/".parse().unwrap()).unwrap_err();
        assert!(matches!(err, BrowseError::ExternalDomain(_)));
        assert_eq!(b.interaction_count(), 0);
    }

    #[test]
    fn budget_exhaustion_stops_navigation() {
        let host = AppHost::new(apps::build("addressbook").unwrap());
        let mut b = Browser::new(host, VirtualClock::new(1.0), 7);
        // First fetch may still run (budget not yet spent)...
        let _ = b.open_seed().unwrap();
        // ...but afterwards the clock has advanced past 1ms.
        let err = b.open_seed().unwrap_err();
        assert_eq!(err, BrowseError::BudgetExhausted);
    }

    #[test]
    fn session_cookie_persists_across_requests() {
        let mut b = browser("oscommerce2", 30.0);
        b.open_seed().unwrap();
        b.navigate(&"http://oscommerce.local/cart".parse().unwrap()).unwrap();
        b.navigate(&"http://oscommerce.local/cart".parse().unwrap()).unwrap();
        assert_eq!(b.host().session_count(), 1, "one session reused");
    }

    #[test]
    fn form_submission_reaches_server_state() {
        let mut b = browser("drupal", 30.0);
        let trap = b.navigate(&"http://drupal.local/shortcuts".parse().unwrap()).unwrap();
        let origin = b.origin().clone();
        let form = trap
            .valid_interactables(&origin)
            .find(|i| matches!(i, Interactable::Form(_)))
            .cloned()
            .expect("trap page has a form");
        let before = trap.interactables().len();
        let after_page = b.execute(&form).unwrap();
        assert_eq!(after_page.interactables().len(), before + 1, "trap form adds a broken link");
    }

    #[test]
    fn filled_text_fields_are_unique_per_submission() {
        let mut b = browser("wordpress", 30.0);
        let page = b.navigate(&"http://wordpress.local/search".parse().unwrap()).unwrap();
        let origin = b.origin().clone();
        let form = page
            .valid_interactables(&origin)
            .find(|i| matches!(i, Interactable::Form(_)))
            .cloned()
            .unwrap();
        let r1 = b.execute(&form).unwrap();
        let r2 = b.execute(&form).unwrap();
        assert_ne!(r1.url(), r2.url(), "distinct generated queries yield distinct URLs");
    }

    fn faulty_browser(app: &str, plan: FaultPlan, seed: u64) -> Browser {
        let host = AppHost::new(apps::build(app).expect("known app"));
        Browser::with_faults(
            host,
            VirtualClock::with_budget_minutes(30.0),
            seed,
            CostModel::default(),
            plan,
        )
    }

    #[test]
    fn zero_fault_plan_is_bit_identical_to_default_browser() {
        let crawl = |mut b: Browser| {
            let page = b.open_seed().unwrap();
            let origin = b.origin().clone();
            if let Some(link) = page
                .valid_interactables(&origin)
                .find(|i| matches!(i, Interactable::Link { .. }))
                .cloned()
            {
                b.execute(&link).unwrap();
            }
            (b.clock().elapsed_ms().to_bits(), b.interaction_count())
        };
        let plain = crawl(browser("addressbook", 30.0));
        let none = crawl(faulty_browser("addressbook", FaultPlan::none(), 7));
        assert_eq!(plain, none, "FaultPlan::none() changes nothing, bit for bit");
    }

    #[test]
    fn fault_schedule_is_deterministic_across_reruns() {
        let crawl = |seed| {
            let mut b = faulty_browser("addressbook", FaultPlan::uniform(0.3), seed);
            for _ in 0..30 {
                let _ = b.open_seed();
            }
            (b.clock().elapsed_ms().to_bits(), b.fault_stats().clone())
        };
        let (t1, s1) = crawl(5);
        let (t2, s2) = crawl(5);
        assert_eq!(t1, t2, "same seed, same virtual timeline");
        assert_eq!(s1, s2, "same seed, same fault schedule");
        assert!(s1.injected > 0, "a 30% plan fires over 30 navigations");
        let (_, other) = crawl(6);
        assert_ne!(s1, other, "a different seed reschedules the faults");
    }

    #[test]
    fn retryable_faults_recover_and_are_counted() {
        let mut b = faulty_browser("addressbook", FaultPlan::uniform(0.4), 11);
        let mut pages = 0;
        for _ in 0..40 {
            if b.open_seed().is_ok() {
                pages += 1;
            }
        }
        let stats = b.fault_stats();
        assert!(pages > 0, "the crawl survives a 40% fault rate");
        assert!(stats.injected > 0);
        assert!(stats.retries > 0, "retryable faults schedule retries");
        assert!(stats.recoveries > 0, "some navigations succeed after faults");
    }

    #[test]
    fn exhausted_retries_surface_a_typed_transient_error() {
        let plan = FaultPlan { http_5xx: 1.0, ..FaultPlan::none() };
        let max = plan.retry.max_attempts;
        let mut b = faulty_browser("addressbook", plan, 1);
        let err = b.open_seed().unwrap_err();
        assert_eq!(err, BrowseError::Transient { kind: FaultKind::Http5xx, attempts: max });
        let stats = b.fault_stats();
        assert_eq!(stats.injected, max as u64);
        assert_eq!(stats.retries, (max - 1) as u64);
        assert_eq!(stats.exhausted, 1);
        assert_eq!(stats.recoveries, 0);
        assert!(b.clock().elapsed_ms() > 0.0, "failed attempts and backoffs were charged");
    }

    #[test]
    fn session_expiry_drops_the_cookie_and_mints_a_new_session() {
        let plan = FaultPlan { session_expiry: 1.0, ..FaultPlan::none() };
        let mut b = faulty_browser("oscommerce2", plan, 3);
        b.open_seed().unwrap();
        b.navigate(&"http://oscommerce.local/cart".parse().unwrap()).unwrap();
        b.navigate(&"http://oscommerce.local/cart".parse().unwrap()).unwrap();
        assert!(b.host().session_count() >= 3, "every navigation re-logs-in");
        assert_eq!(b.fault_stats().session_expiries, b.fault_stats().injected);
    }

    #[test]
    fn stale_elements_fail_fast_without_counting_an_interaction() {
        let plan = FaultPlan { stale_element: 1.0, ..FaultPlan::none() };
        let mut b = faulty_browser("addressbook", plan, 2);
        let page = b.open_seed().unwrap();
        let origin = b.origin().clone();
        let link = page.valid_interactables(&origin).next().cloned().unwrap();
        let before = b.clock().elapsed_ms();
        assert_eq!(b.execute(&link).unwrap_err(), BrowseError::StaleElement);
        assert_eq!(b.interaction_count(), 0, "a stale element is not an interaction");
        assert!(b.clock().elapsed_ms() > before, "the aborted attempt still costs time");
        assert_eq!(b.fault_stats().stale_elements, 1);
    }

    #[test]
    fn heavy_faults_never_outlive_the_budget() {
        let plan = FaultPlan { timeout: 1.0, ..FaultPlan::none() };
        let host = AppHost::new(apps::build("addressbook").unwrap());
        let mut b = Browser::with_faults(
            host,
            VirtualClock::with_budget_minutes(0.05),
            9,
            CostModel::default(),
            plan,
        );
        loop {
            if let Err(BrowseError::BudgetExhausted) = b.open_seed() {
                break;
            }
        }
        assert!(b.clock().expired());
    }

    #[test]
    fn phase_totals_partition_elapsed_time() {
        // Every clock charge lands in exactly one PhaseTotals bucket, so
        // the buckets sum to the elapsed virtual time (float-association
        // noise only). Includes redirects (login flows) and interactions.
        let mut b = browser("phpbb2", 30.0);
        let mut page = b.open_seed().unwrap();
        let origin = b.origin().clone();
        for _ in 0..20 {
            let Some(action) = page.valid_interactables(&origin).next().cloned() else { break };
            match b.execute(&action) {
                Ok(next) => page = next,
                Err(_) => break,
            }
        }
        b.charge_policy_overhead(25.0);
        let elapsed = b.clock().elapsed_ms();
        let totals = b.phase_totals();
        assert!(elapsed > 0.0);
        assert!(
            (totals.total_ms() - elapsed).abs() <= 1e-6 * elapsed,
            "phase buckets must partition elapsed time: {} vs {elapsed}",
            totals.total_ms(),
        );
        assert!(totals.render_ms > 0.0);
        assert!(totals.think_ms > 0.0);
        assert_eq!(totals.policy_ms, 25.0);
    }

    #[test]
    fn faulty_phase_totals_still_partition_and_fill_backoff() {
        let mut b = faulty_browser("addressbook", FaultPlan::uniform(0.4), 11);
        for _ in 0..40 {
            let _ = b.open_seed();
        }
        let elapsed = b.clock().elapsed_ms();
        let totals = b.phase_totals();
        assert!(b.fault_stats().retries > 0, "the plan fired");
        assert!(totals.backoff_ms > 0.0, "retry backoff is attributed");
        assert_eq!(totals.backoff_ms, b.fault_stats().backoff_ms);
        assert!(
            (totals.total_ms() - elapsed).abs() <= 1e-6 * elapsed,
            "fault waits and backoffs stay inside the partition",
        );
    }

    #[test]
    fn execute_emits_a_span_tree_when_profiling() {
        use mak_obs::sink::VecSink;
        let mut b = browser("addressbook", 30.0);
        let (handle, cell) = SinkHandle::shared(VecSink::new());
        b.set_sink(handle.with_spans());
        let page = b.open_seed().unwrap();
        let origin = b.origin().clone();
        let link = page
            .valid_interactables(&origin)
            .find(|i| matches!(i, Interactable::Link { .. }))
            .cloned()
            .unwrap();
        b.execute(&link).unwrap();

        let events = cell.lock().unwrap().events().to_vec();
        let spans: Vec<(u64, String)> = events
            .iter()
            .filter_map(|e| match e {
                Event::SpanClosed { parent, phase, .. } => Some((*parent, phase.clone())),
                _ => None,
            })
            .collect();
        let exec = spans.iter().find(|(_, p)| p == "ExecuteAction").expect("umbrella span");
        assert_eq!(exec.0, 0, "no engine around it, so ExecuteAction is a root");
        // The executed link's fetch parts nest under the umbrella; the
        // seed fetch's parts (before the umbrella opened) are roots.
        assert!(
            spans.iter().filter(|(parent, _)| *parent != 0).count() >= 3,
            "fetch leaf spans nest under ExecuteAction: {spans:?}",
        );
    }

    /// Drives `b` through up to `steps` interactions, returning a digest of
    /// everything observable: clock bits, interaction count, rng state,
    /// fault stats, and visited URLs.
    fn drive(b: &mut Browser, steps: usize) -> (u64, u64, [u64; 4], FaultStats, Vec<String>) {
        let origin = b.origin().clone();
        let mut urls = Vec::new();
        let mut page = match b.open_seed() {
            Ok(p) => p,
            Err(_) => {
                return (
                    b.clock().elapsed_ms().to_bits(),
                    b.interaction_count(),
                    b.rng.state(),
                    b.fault_stats().clone(),
                    urls,
                )
            }
        };
        for _ in 0..steps {
            let Some(action) = page.valid_interactables(&origin).next().cloned() else { break };
            match b.execute(&action) {
                Ok(next) => {
                    urls.push(next.url().normalized().to_owned());
                    page = next;
                }
                Err(BrowseError::BudgetExhausted) => break,
                Err(_) => {
                    // Fault surfaced: re-open the seed like a restarting
                    // crawler would.
                    page = match b.open_seed() {
                        Ok(p) => p,
                        Err(_) => break,
                    };
                }
            }
        }
        (
            b.clock().elapsed_ms().to_bits(),
            b.interaction_count(),
            b.rng.state(),
            b.fault_stats().clone(),
            urls,
        )
    }

    #[test]
    fn snapshot_restore_round_trip_is_bit_identical() {
        for plan in [FaultPlan::none(), FaultPlan::uniform(0.2)] {
            // Uninterrupted reference run: 6 then 20 more interactions.
            let mut reference = faulty_browser("phpbb2", plan.clone(), 13);
            drive(&mut reference, 6);
            let expected = drive(&mut reference, 20);

            // Interrupted run: same first 6, snapshot through JSON, restore,
            // then the same 20 more.
            let mut first = faulty_browser("phpbb2", plan.clone(), 13);
            drive(&mut first, 6);
            let json = serde_json::to_string(&first.snapshot()).unwrap();
            let state: BrowserState = serde_json::from_str(&json).unwrap();
            let host = AppHost::restore_owned(apps::build("phpbb2").unwrap(), &state.host).unwrap();
            let mut resumed = Browser::restore(host, 13, CostModel::default(), plan, &state);
            let got = drive(&mut resumed, 20);

            assert_eq!(got, expected, "restored browser diverged from the uninterrupted run");
        }
    }

    #[test]
    fn snapshot_preserves_session_cookie() {
        let mut b = browser("oscommerce2", 30.0);
        b.open_seed().unwrap();
        b.navigate(&"http://oscommerce.local/cart".parse().unwrap()).unwrap();
        let state = b.snapshot();
        assert!(state.cookie.is_some(), "logged-in crawl checkpoints its cookie");
        let host =
            AppHost::restore_owned(apps::build("oscommerce2").unwrap(), &state.host).unwrap();
        let mut r = Browser::restore(host, 7, CostModel::default(), FaultPlan::none(), &state);
        r.navigate(&"http://oscommerce.local/cart".parse().unwrap()).unwrap();
        assert_eq!(r.host().session_count(), 1, "the restored browser reuses the same session");
    }

    #[test]
    fn corrupt_browser_state_is_rejected_not_panicked() {
        use serde::{Deserialize as _, Serialize as _};
        let b = browser("addressbook", 30.0);
        let good = b.snapshot().to_value();
        // All-zero rng words would poison xoshiro; must surface as an error.
        let serde::Value::Object(mut entries) = good else { panic!("object") };
        for (k, v) in &mut entries {
            if k == "rng" {
                *v = vec![0u64; 4].to_value();
            }
        }
        let err = BrowserState::from_value(&serde::Value::Object(entries));
        assert!(err.is_err(), "zero rng state must be a deserialize error");
    }

    #[test]
    fn finish_seals_coverage() {
        let mut b = browser("actual", 30.0);
        b.open_seed().unwrap();
        let host = b.finish();
        assert!(host.tracker().is_sealed());
        assert!(host.tracker().observe_lines_covered().unwrap() > 0);
    }
}
