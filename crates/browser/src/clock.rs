//! The virtual experiment clock.
//!
//! Every paper experiment runs a crawler for 30 minutes of wall-clock time
//! (§V-A.4). Re-running that literally would make the reproduction slow and
//! non-deterministic, so time is *simulated*: the browser and the crawl
//! engine charge virtual milliseconds for page loads, interaction overhead,
//! and policy computation, and the engine stops when the virtual budget is
//! exhausted. Efficiency differences between crawlers (§V-D) then surface
//! as different interaction counts, exactly as in the paper.

/// A monotonically advancing virtual clock with a fixed budget.
#[derive(Debug, Clone)]
pub struct VirtualClock {
    now_ms: f64,
    budget_ms: f64,
}

impl VirtualClock {
    /// Creates a clock with a budget in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `budget_ms` is not positive.
    pub fn new(budget_ms: f64) -> Self {
        assert!(budget_ms > 0.0, "budget must be positive");
        VirtualClock { now_ms: 0.0, budget_ms }
    }

    /// Creates a clock with a budget in minutes — `30.0` matches the paper.
    pub fn with_budget_minutes(minutes: f64) -> Self {
        Self::new(minutes * 60_000.0)
    }

    /// Rebuilds a clock mid-flight from checkpointed state. `now_ms` may
    /// legitimately sit at or past the budget (a session snapshotted on its
    /// final step), so unlike [`VirtualClock::new`] only the budget is
    /// validated.
    pub fn restore(now_ms: f64, budget_ms: f64) -> Self {
        assert!(budget_ms > 0.0, "budget must be positive");
        assert!(now_ms >= 0.0, "elapsed time must be non-negative");
        VirtualClock { now_ms, budget_ms }
    }

    /// Advances the clock by `ms` (clamped to non-negative).
    pub fn advance(&mut self, ms: f64) {
        self.now_ms += ms.max(0.0);
    }

    /// Elapsed virtual time in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.now_ms
    }

    /// Elapsed virtual time in whole seconds (for time-series bucketing).
    pub fn elapsed_secs(&self) -> f64 {
        self.now_ms / 1_000.0
    }

    /// The total budget in milliseconds.
    pub fn budget_ms(&self) -> f64 {
        self.budget_ms
    }

    /// Remaining budget in milliseconds (zero once expired).
    pub fn remaining_ms(&self) -> f64 {
        (self.budget_ms - self.now_ms).max(0.0)
    }

    /// Whether the budget is exhausted.
    pub fn expired(&self) -> bool {
        self.now_ms >= self.budget_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_expires() {
        let mut c = VirtualClock::new(100.0);
        assert!(!c.expired());
        c.advance(60.0);
        assert_eq!(c.elapsed_ms(), 60.0);
        assert_eq!(c.remaining_ms(), 40.0);
        c.advance(50.0);
        assert!(c.expired());
        assert_eq!(c.remaining_ms(), 0.0);
    }

    #[test]
    fn negative_advance_is_ignored() {
        let mut c = VirtualClock::new(100.0);
        c.advance(-5.0);
        assert_eq!(c.elapsed_ms(), 0.0);
    }

    #[test]
    fn minutes_constructor() {
        let c = VirtualClock::with_budget_minutes(30.0);
        assert_eq!(c.budget_ms(), 1_800_000.0);
        assert_eq!(c.elapsed_secs(), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_budget_panics() {
        let _ = VirtualClock::new(0.0);
    }
}
