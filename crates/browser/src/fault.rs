//! Deterministic fault injection: the flaky-web simulation layer.
//!
//! Real deployments time out, rate-limit, drop connections, and expire
//! sessions; the paper's crawlers must keep crawling through all of it
//! (MAK's statelessness is explicitly motivated by tolerance to such
//! resets). A [`FaultPlan`] schedules those faults as a *pure function of
//! `(seed, decision index)`*: every decision hashes a splitmix64 counter
//! stream that is completely separate from the browser's cost-model RNG,
//! so enabling faults never perturbs the jitter stream, and
//! [`FaultPlan::none`] (the default) is bit-identical to a build without
//! this module.
//!
//! The taxonomy (see `DESIGN.md` §10):
//!
//! - [`FaultKind::Http5xx`] — transient server error, full round trip;
//! - [`FaultKind::RateLimit`] — 429, headers-only round trip;
//! - [`FaultKind::Timeout`] — the request hangs for
//!   [`FaultPlan::timeout_round_trips`] base latencies before giving up;
//! - [`FaultKind::ConnectionReset`] — dropped mid-navigation, half a
//!   round trip;
//! - [`FaultKind::SessionExpiry`] — the server forgets the cookie; the
//!   request itself proceeds anonymously (not an error);
//! - [`FaultKind::StaleElement`] — the interactable went stale before the
//!   request was even issued.
//!
//! Retryable faults are re-attempted under [`RetryPolicy`]: capped
//! exponential backoff, charged to the virtual clock.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A transient HTTP 5xx response.
    Http5xx,
    /// An HTTP 429 rate-limit response.
    RateLimit,
    /// A virtual-time request timeout.
    Timeout,
    /// The connection was reset mid-navigation.
    ConnectionReset,
    /// The server expired the crawler's session cookie.
    SessionExpiry,
    /// The targeted interactable went stale before execution.
    StaleElement,
}

impl FaultKind {
    /// The stable name used in event payloads and reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Http5xx => "Http5xx",
            FaultKind::RateLimit => "RateLimit",
            FaultKind::Timeout => "Timeout",
            FaultKind::ConnectionReset => "ConnectionReset",
            FaultKind::SessionExpiry => "SessionExpiry",
            FaultKind::StaleElement => "StaleElement",
        }
    }

    /// How many headers-only round trips a failed attempt of this kind
    /// wastes (multiplied by the app's base latency via
    /// [`crate::cost::CostModel::fault_wait_ms`]). Timeouts read their
    /// factor from the plan — waiting out a hung request is the expensive
    /// case.
    pub fn round_trips(&self, plan: &FaultPlan) -> f64 {
        match self {
            FaultKind::Http5xx => 1.0,
            FaultKind::RateLimit => 0.5,
            FaultKind::Timeout => plan.timeout_round_trips,
            FaultKind::ConnectionReset => 0.5,
            FaultKind::SessionExpiry => 0.0,
            FaultKind::StaleElement => 0.25,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Capped exponential backoff between retries of a transient fault, in
/// virtual milliseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Attempts per navigation before the error surfaces to the crawler.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff_ms: f64,
    /// Multiplier applied per additional retry.
    pub multiplier: f64,
    /// Upper bound on any single backoff.
    pub max_backoff_ms: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 500.0,
            multiplier: 2.0,
            max_backoff_ms: 8_000.0,
        }
    }
}

impl RetryPolicy {
    /// The backoff charged before retry number `attempt` (1-based).
    pub fn backoff_ms(&self, attempt: u32) -> f64 {
        let exp = self.multiplier.powi(attempt.saturating_sub(1) as i32);
        (self.base_backoff_ms * exp).min(self.max_backoff_ms)
    }
}

/// The per-run fault schedule: rates per kind plus the retry policy.
///
/// Part of `EngineConfig` (and therefore of the run-cache key), so a
/// faulty run can never be served from a clean run's cache entry. The
/// rates are per *decision*: each navigation attempt rolls once against
/// the transient rates, each element execution rolls once against
/// [`stale_element`](Self::stale_element).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultPlan {
    /// Probability of a transient 5xx per navigation attempt.
    pub http_5xx: f64,
    /// Probability of a 429 rate-limit per navigation attempt.
    pub rate_limit: f64,
    /// Probability of a timeout per navigation attempt.
    pub timeout: f64,
    /// Probability of a connection reset per navigation attempt.
    pub connection_reset: f64,
    /// Probability the session expires on a navigation attempt.
    pub session_expiry: f64,
    /// Probability an interactable is stale at execution time.
    pub stale_element: f64,
    /// Base latencies wasted waiting out one timeout.
    pub timeout_round_trips: f64,
    /// Extra seed mixed into the fault stream, so the schedule can be
    /// varied independently of the run seed.
    pub fault_seed: u64,
    /// Retry/backoff parameters for retryable faults.
    pub retry: RetryPolicy,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The zero-fault plan: every rate is 0, nothing is ever injected,
    /// and the browser's behaviour is bit-identical to a fault-free
    /// build.
    pub fn none() -> Self {
        FaultPlan {
            http_5xx: 0.0,
            rate_limit: 0.0,
            timeout: 0.0,
            connection_reset: 0.0,
            session_expiry: 0.0,
            stale_element: 0.0,
            timeout_round_trips: 4.0,
            fault_seed: 0,
            retry: RetryPolicy::default(),
        }
    }

    /// Whether no fault can ever fire (the fast path: the browser skips
    /// the decision stream entirely).
    pub fn is_none(&self) -> bool {
        self.http_5xx == 0.0
            && self.rate_limit == 0.0
            && self.timeout == 0.0
            && self.connection_reset == 0.0
            && self.session_expiry == 0.0
            && self.stale_element == 0.0
    }

    /// A plan whose total per-decision fault probability is `rate`,
    /// split evenly across the four retryable kinds, with session expiry
    /// and stale elements each at a quarter of `rate` — the knob the
    /// fault-rate ablation sweeps.
    pub fn uniform(rate: f64) -> Self {
        FaultPlan {
            http_5xx: rate / 4.0,
            rate_limit: rate / 4.0,
            timeout: rate / 4.0,
            connection_reset: rate / 4.0,
            session_expiry: rate / 4.0,
            stale_element: rate / 4.0,
            ..FaultPlan::none()
        }
    }

    /// A named profile for CLI use: `none`, `light` (~4 % faulty
    /// decisions), `moderate` (~10 %), or `heavy` (~20 %).
    pub fn profile(name: &str) -> Option<Self> {
        match name {
            "none" => Some(FaultPlan::none()),
            "light" => Some(FaultPlan::uniform(0.04)),
            "moderate" => Some(FaultPlan::uniform(0.10)),
            "heavy" => Some(FaultPlan::uniform(0.20)),
            _ => None,
        }
    }

    /// The transient fault (if any) scheduled for a navigation attempt
    /// whose decision roll was `roll` (uniform in `[0, 1)`): a cumulative
    /// walk over the per-kind rates, so per-kind probabilities are exact
    /// and mutually exclusive.
    pub fn transient_fault(&self, roll: f64) -> Option<FaultKind> {
        let mut edge = self.http_5xx;
        if roll < edge {
            return Some(FaultKind::Http5xx);
        }
        edge += self.rate_limit;
        if roll < edge {
            return Some(FaultKind::RateLimit);
        }
        edge += self.timeout;
        if roll < edge {
            return Some(FaultKind::Timeout);
        }
        edge += self.connection_reset;
        if roll < edge {
            return Some(FaultKind::ConnectionReset);
        }
        edge += self.session_expiry;
        if roll < edge {
            return Some(FaultKind::SessionExpiry);
        }
        None
    }

    /// Whether the interactable targeted by an execution whose decision
    /// roll was `roll` is stale.
    pub fn element_stale(&self, roll: f64) -> bool {
        roll < self.stale_element
    }
}

/// `FaultPlan` predates some serialized `EngineConfig`s (cache entries,
/// fuzz artifacts), so an absent field deserializes to the zero-fault
/// plan instead of erroring — exactly the behaviour those configs had.
impl Deserialize for FaultPlan {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let entries =
            v.as_object().ok_or_else(|| serde::Error::custom("expected FaultPlan object"))?;
        Ok(FaultPlan {
            http_5xx: serde::__field(entries, "http_5xx")?,
            rate_limit: serde::__field(entries, "rate_limit")?,
            timeout: serde::__field(entries, "timeout")?,
            connection_reset: serde::__field(entries, "connection_reset")?,
            session_expiry: serde::__field(entries, "session_expiry")?,
            stale_element: serde::__field(entries, "stale_element")?,
            timeout_round_trips: serde::__field(entries, "timeout_round_trips")?,
            fault_seed: serde::__field(entries, "fault_seed")?,
            retry: serde::__field(entries, "retry")?,
        })
    }

    fn from_missing_field(_field: &str) -> Result<Self, serde::Error> {
        Ok(FaultPlan::none())
    }
}

/// What the fault layer did during one run; recorded in `CrawlReport`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Faults injected, of any kind.
    pub injected: u64,
    /// Retries scheduled after retryable faults.
    pub retries: u64,
    /// Navigations that succeeded after at least one fault.
    pub recoveries: u64,
    /// Navigations abandoned after exhausting the retry budget.
    pub exhausted: u64,
    /// Forced session expiries.
    pub session_expiries: u64,
    /// Stale-element rejections.
    pub stale_elements: u64,
    /// Virtual milliseconds the clock advanced waiting out retry
    /// backoff — the time cost of resilience, a pure function of the
    /// fault schedule.
    pub backoff_ms: f64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The decision stream: a uniform draw in `[0, 1)` for decision number
/// `index` under `seed` — stateless, so the schedule is a pure function
/// of `(seed, index)` and never touches the browser's cost-model RNG.
pub fn roll(seed: u64, index: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(index));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_default_and_never_fires() {
        assert_eq!(FaultPlan::none(), FaultPlan::default());
        assert!(FaultPlan::none().is_none());
        for i in 0..1_000 {
            assert_eq!(FaultPlan::none().transient_fault(roll(7, i)), None);
            assert!(!FaultPlan::none().element_stale(roll(7, i)));
        }
    }

    #[test]
    fn rolls_are_deterministic_uniform_and_independent_of_call_order() {
        let a: Vec<f64> = (0..100).map(|i| roll(42, i)).collect();
        let b: Vec<f64> = (0..100).rev().map(|i| roll(42, i)).rev().collect();
        assert_eq!(a, b, "pure function of (seed, index)");
        assert!(a.iter().all(|r| (0.0..1.0).contains(r)));
        let mean = a.iter().sum::<f64>() / a.len() as f64;
        assert!((0.3..0.7).contains(&mean), "roughly uniform, got mean {mean}");
        assert_ne!(a[0], roll(43, 0), "seed changes the stream");
    }

    #[test]
    fn cumulative_walk_hits_every_kind_at_observed_rates() {
        let plan = FaultPlan::uniform(0.5);
        let mut counts = std::collections::BTreeMap::new();
        let n = 20_000;
        for i in 0..n {
            if let Some(kind) = plan.transient_fault(roll(9, i)) {
                *counts.entry(kind.name()).or_insert(0u64) += 1;
            }
        }
        for kind in ["Http5xx", "RateLimit", "Timeout", "ConnectionReset", "SessionExpiry"] {
            let share = counts[kind] as f64 / n as f64;
            assert!((0.09..0.16).contains(&share), "{kind} fired at {share}");
        }
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ms(1), 500.0);
        assert_eq!(p.backoff_ms(2), 1_000.0);
        assert_eq!(p.backoff_ms(3), 2_000.0);
        assert_eq!(p.backoff_ms(30), 8_000.0, "capped");
    }

    #[test]
    fn profiles_parse_and_scale() {
        assert!(FaultPlan::profile("none").unwrap().is_none());
        let light = FaultPlan::profile("light").unwrap();
        let heavy = FaultPlan::profile("heavy").unwrap();
        assert!(!light.is_none());
        assert!(heavy.http_5xx > light.http_5xx);
        assert!(FaultPlan::profile("catastrophic").is_none(), "unknown profile rejected");
    }

    #[test]
    fn plan_round_trips_and_missing_field_defaults_to_none() {
        let plan = FaultPlan { fault_seed: 3, ..FaultPlan::uniform(0.1) };
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        let absent = FaultPlan::from_missing_field("faults").unwrap();
        assert_eq!(absent, FaultPlan::none(), "pre-fault configs parse as zero-fault");
    }

    #[test]
    fn stats_round_trip() {
        let stats = FaultStats { injected: 5, retries: 3, recoveries: 2, ..Default::default() };
        let json = serde_json::to_string(&stats).unwrap();
        let back: FaultStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }
}
