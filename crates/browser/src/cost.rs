//! The virtual latency model.
//!
//! Charges reflect the real testbed's cost structure:
//!
//! - **page load** — the application's base latency (larger apps respond
//!   more slowly) with multiplicative jitter;
//! - **client think time** — DOM rendering, element extraction, and driver
//!   overhead per interaction, mildly increasing with page size;
//! - **policy overhead** — charged by the crawl engine per decision. The
//!   Q-learning crawlers' state-abstraction and similarity machinery costs
//!   grow with the number of states (§III-A's state-explosion critique),
//!   while MAK's stateless policy is O(K); this is what produces the
//!   paper's §V-D interaction-count spread (883 vs 854 vs 827).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Cost parameters for one experiment run.
///
/// Serializable and comparable so run caches can key cached reports on the
/// exact cost model that produced them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed client-side overhead per interaction, in virtual ms.
    pub think_ms: f64,
    /// Extra extraction cost per interactable element on the fetched page.
    pub per_element_ms: f64,
    /// Relative jitter applied to page loads (`0.2` = ±20 %).
    pub jitter: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibrated so a 30-minute budget yields ~850–900 interactions on
        // the testbed's latency mix, matching §V-D.
        CostModel { think_ms: 1_350.0, per_element_ms: 2.0, jitter: 0.2 }
    }
}

/// One page fetch's cost, split into the model's three buckets. The
/// split is what the observability layer attributes budget to; the sum
/// is exactly what the virtual clock is charged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FetchCost {
    /// Jittered network latency, in virtual ms.
    pub fetch_ms: f64,
    /// Fixed client think/render overhead, in virtual ms.
    pub think_ms: f64,
    /// Per-element extraction cost, in virtual ms.
    pub interact_ms: f64,
}

impl FetchCost {
    /// Total charge. Summation order matches the pre-split formula
    /// (`fetch + think + interact`, left-associated) so totals are
    /// bit-identical with historical runs.
    pub fn total(&self) -> f64 {
        self.fetch_ms + self.think_ms + self.interact_ms
    }
}

impl CostModel {
    /// The virtual cost of fetching one page with `base_latency_ms` from the
    /// application and `element_count` extracted interactables.
    pub fn fetch_cost<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        base_latency_ms: f64,
        element_count: usize,
    ) -> f64 {
        self.fetch_cost_parts(rng, base_latency_ms, element_count).total()
    }

    /// [`fetch_cost`](Self::fetch_cost), decomposed into buckets. Draws
    /// exactly one jitter sample from `rng`, same as the total form.
    pub fn fetch_cost_parts<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        base_latency_ms: f64,
        element_count: usize,
    ) -> FetchCost {
        let jitter = 1.0 + self.jitter * (rng.gen::<f64>() * 2.0 - 1.0);
        FetchCost {
            fetch_ms: base_latency_ms * jitter,
            think_ms: self.think_ms,
            interact_ms: self.per_element_ms * element_count as f64,
        }
    }

    /// The virtual time wasted by one failed request attempt:
    /// `round_trips` headers-only round trips at the application's base
    /// latency (a timeout waits several, a reset burns half). No jitter
    /// sample is drawn — fault waits are deterministic and leave the
    /// page-load RNG stream untouched.
    pub fn fault_wait_ms(&self, base_latency_ms: f64, round_trips: f64) -> f64 {
        base_latency_ms * round_trips
    }

    /// The policy-decision overhead for a *stateless* policy (MAK): constant.
    pub fn stateless_policy_cost(&self) -> f64 {
        2.0
    }

    /// The policy-decision overhead for a *state-based* policy over
    /// `state_count` abstracted states: pre-processing plus a similarity
    /// scan whose cost grows with the state table (§III-A). The coefficient
    /// is calibrated so a typical run ends a few percent short of the
    /// stateless crawler's interaction count, as in §V-D.
    pub fn state_policy_cost(&self, state_count: usize) -> f64 {
        25.0 + 0.25 * state_count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fetch_cost_scales_with_latency_and_elements() {
        let m = CostModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let cheap = m.fetch_cost(&mut rng, 100.0, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let pricey = m.fetch_cost(&mut rng, 1_000.0, 100);
        assert!(pricey > cheap);
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let m = CostModel { think_ms: 0.0, per_element_ms: 0.0, jitter: 0.2 };
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let c = m.fetch_cost(&mut rng, 100.0, 0);
            assert!((80.0..=120.0).contains(&c), "got {c}");
        }
    }

    #[test]
    fn parts_sum_to_the_undecomposed_cost_bit_for_bit() {
        let m = CostModel::default();
        for seed in 0..50 {
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            let total = m.fetch_cost(&mut a, 550.0 + seed as f64, seed as usize);
            let parts = m.fetch_cost_parts(&mut b, 550.0 + seed as f64, seed as usize);
            assert_eq!(total.to_bits(), parts.total().to_bits(), "seed {seed}");
        }
    }

    #[test]
    fn state_policy_cost_grows_with_states() {
        let m = CostModel::default();
        assert!(m.state_policy_cost(500) > m.state_policy_cost(10));
        assert!(m.state_policy_cost(0) > m.stateless_policy_cost());
    }

    #[test]
    fn default_calibration_allows_roughly_900_steps() {
        // Average app latency ~550ms + think ~950ms + extraction ≈ 1.6–2.1s
        // per step → ~850–1100 steps in 30 virtual minutes.
        let m = CostModel::default();
        let mut rng = StdRng::seed_from_u64(3);
        let mut total = 0.0;
        let mut steps = 0u32;
        while total < 1_800_000.0 {
            total += m.fetch_cost(&mut rng, 550.0, 40) + m.stateless_policy_cost();
            steps += 1;
        }
        assert!((800..1_300).contains(&steps), "got {steps}");
    }
}
