//! # mak-browser — the black-box client driving simulated applications
//!
//! The paper's crawlers sit behind a browser: they see rendered pages,
//! extract interactable elements, and execute interactions, with every
//! operation costing wall-clock time against the 30-minute budget (§V-A.4).
//! This crate provides that client for [`mak_websim`] applications:
//!
//! - [`clock`] — a virtual clock measuring the experiment budget in
//!   simulated milliseconds, making runs deterministic and fast;
//! - [`cost`] — the latency model charging page loads, client-side think
//!   time, and per-crawler policy overhead;
//! - [`fault`] — seeded, fully deterministic fault injection (transient
//!   5xx, rate limits, timeouts, connection resets, session expiry, stale
//!   elements) with capped exponential retry/backoff in virtual time;
//! - [`page`] — the crawler-visible snapshot of a fetched page;
//! - [`client`] — the [`Browser`](client::Browser): navigation, link
//!   following, button clicks, form filling, redirect handling, and
//!   external-domain filtering (§V-A assumption ii).
//!
//! ## Example
//!
//! ```
//! use mak_browser::client::Browser;
//! use mak_browser::clock::VirtualClock;
//! use mak_websim::apps;
//! use mak_websim::server::AppHost;
//!
//! let host = AppHost::new(apps::build("addressbook").expect("known app"));
//! let clock = VirtualClock::with_budget_minutes(30.0);
//! let mut browser = Browser::new(host, clock, 42);
//! let page = browser.open_seed();
//! assert!(page.is_ok());
//! assert!(browser.clock().elapsed_ms() > 0.0, "fetching costs time");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod clock;
pub mod cost;
pub mod fault;
pub mod page;
