//! The crawler-visible snapshot of a fetched page.

use mak_websim::dom::{DocShared, Document, Interactable};
use mak_websim::http::Status;
use mak_websim::url::Url;
use std::sync::Arc;

/// A fetched page: final URL (after redirects), status, and extracted
/// interactable elements.
///
/// The interactables (and the tag sequence WebExplor consumes) live in an
/// `Arc<DocShared>`: documents served from a render cache carry a
/// precomputed one, so snapshotting such a page costs no tree walk and no
/// per-element clone.
#[derive(Debug, Clone)]
pub struct Page {
    url: Url,
    status: Status,
    title: String,
    document: Option<Document>,
    shared: Arc<DocShared>,
}

impl Page {
    /// Builds a page snapshot from a served document.
    pub fn from_document(status: Status, doc: Document) -> Self {
        let shared = doc.shared_cache();
        Page {
            url: doc.url().clone(),
            status,
            title: doc.title().to_owned(),
            document: Some(doc),
            shared,
        }
    }

    /// Builds an empty-bodied page (e.g. a bare 404).
    pub fn empty(status: Status, url: Url) -> Self {
        Page {
            url,
            status,
            title: String::new(),
            document: None,
            shared: Arc::new(DocShared::empty()),
        }
    }

    /// The final URL the page was served from.
    pub fn url(&self) -> &Url {
        &self.url
    }

    /// The response status.
    pub fn status(&self) -> Status {
        self.status
    }

    /// The page title (empty for body-less responses).
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The underlying document, if the response had a body.
    pub fn document(&self) -> Option<&Document> {
        self.document.as_ref()
    }

    /// All interactable elements extracted from the page.
    pub fn interactables(&self) -> &[Interactable] {
        self.shared.interactables()
    }

    /// The shared derivations (interactables + tag sequence) backing this
    /// snapshot — state abstractions hold the `Arc` instead of re-deriving.
    pub fn shared(&self) -> &Arc<DocShared> {
        &self.shared
    }

    /// Interactable elements whose targets stay on `origin` — the valid
    /// action set under the paper's external-domain rule (§V-A ii).
    pub fn valid_interactables<'a>(
        &'a self,
        origin: &'a Url,
    ) -> impl Iterator<Item = &'a Interactable> {
        self.shared.interactables().iter().filter(move |i| i.target_url().same_origin(origin))
    }

    /// Whether the page is a navigation error (non-2xx).
    pub fn is_error(&self) -> bool {
        !matches!(self.status, Status::Ok)
    }
}

// Checkpoint serialization. A page snapshot persists exactly the
// crawler-visible observables — URL, status, title, interactables, tag
// sequence — and drops the DOM tree: restored pages answer every query a
// crawler makes mid-run identically, but `document()` is `None` (nothing in
// the crawl loop reads it after extraction).
impl serde::Serialize for Page {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("url".to_owned(), self.url.to_value()),
            ("status".to_owned(), self.status.to_value()),
            ("title".to_owned(), self.title.to_value()),
            ("interactables".to_owned(), self.shared.interactables().to_value()),
            ("tags".to_owned(), self.shared.tags().to_value()),
        ])
    }
}

impl serde::Deserialize for Page {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(entries) = value else {
            return Err(serde::Error::custom("expected Page object"));
        };
        let interactables: Vec<Interactable> = serde::__field(entries, "interactables")?;
        let tags: Vec<mak_websim::dom::Tag> = serde::__field(entries, "tags")?;
        Ok(Page {
            url: serde::__field(entries, "url")?,
            status: serde::__field(entries, "status")?,
            title: serde::__field(entries, "title")?,
            document: None,
            shared: Arc::new(DocShared::from_parts(interactables, tags)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mak_websim::dom::{Element, Tag};

    fn sample() -> Page {
        let url: Url = "http://h/p".parse().unwrap();
        let body = Element::new(Tag::Body)
            .child(Element::new(Tag::A).attr("href", "/internal").text("in"))
            .child(Element::new(Tag::A).attr("href", "http://evil.example/x").text("out"));
        Page::from_document(Status::Ok, Document::new(url, "sample", body))
    }

    #[test]
    fn extracts_interactables_once() {
        let p = sample();
        assert_eq!(p.interactables().len(), 2);
        assert_eq!(p.title(), "sample");
        assert!(!p.is_error());
    }

    #[test]
    fn valid_interactables_filter_external_domains() {
        let p = sample();
        let origin: Url = "http://h/".parse().unwrap();
        let valid: Vec<_> = p.valid_interactables(&origin).collect();
        assert_eq!(valid.len(), 1);
        assert_eq!(valid[0].target_url().path(), "/internal");
    }

    #[test]
    fn empty_page_has_no_elements() {
        let p = Page::empty(Status::NotFound, "http://h/missing".parse().unwrap());
        assert!(p.interactables().is_empty());
        assert!(p.is_error());
        assert!(p.document().is_none());
    }
}
