//! The durability contract, adversarially: park a live service mid-run
//! (gracefully or by simulated crash), restore it into a fresh service,
//! and every recovered session's final report — and the event stream
//! past the `SessionResumed` marker — is byte-identical to never having
//! stopped. Corrupt checkpoints are quarantined and counted, never
//! trusted, and never abort the recovery of their neighbors.
//!
//! Every checkpoint directory is tmpdir-scoped and removed on success;
//! nothing leaks into `results/`.

use mak::framework::engine::{CrawlReport, EngineConfig};
use mak::spec::CRAWLER_NAMES;
use mak_browser::fault::FaultPlan;
use mak_serve::{
    CrawlService, ScheduleOrder, ServiceConfig, SessionSpec, SubmitError, TenantQuota,
};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mak-recovery-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn engine_config(profile: &str) -> EngineConfig {
    // ~60 virtual steps per minute on this cost model: two minutes keeps
    // every crash point below well under half the workload's step total,
    // so partial runs always strand sessions mid-budget.
    let mut cfg = EngineConfig::with_budget_minutes(2.0);
    if profile != "none" {
        cfg.faults = FaultPlan::profile(profile).expect("known fault profile");
    }
    cfg
}

/// One session per registry crawler, all on PhpBB2, events recorded.
fn workload(profile: &str) -> Vec<SessionSpec> {
    CRAWLER_NAMES
        .iter()
        .enumerate()
        .map(|(i, crawler)| {
            SessionSpec::new("recovery", "phpbb2", *crawler, 40 + i as u64)
                .config(engine_config(profile))
                .record_events(true)
        })
        .collect()
}

fn durable_config(dir: &Path, order: ScheduleOrder) -> ServiceConfig {
    // Two virtual minutes is ~61 steps on this cost model, so slices and
    // cadence are shrunk below a session's lifetime: sessions interleave
    // across many slices and checkpoint several times each.
    ServiceConfig {
        threads: 4,
        steps_per_slice: 8,
        order,
        checkpoint_dir: Some(dir.to_path_buf()),
        checkpoint_every_steps: 16,
        ..ServiceConfig::default()
    }
}

/// Uninterrupted truth, keyed by session id (= submission index).
fn uninterrupted(profile: &str) -> BTreeMap<u64, (CrawlReport, Vec<u8>)> {
    let mut service = CrawlService::new(ServiceConfig::default());
    for spec in workload(profile) {
        service.submit(spec).unwrap();
    }
    service
        .run_to_drain()
        .into_iter()
        .map(|c| (c.id, (c.report, c.events_jsonl.expect("events recorded"))))
        .collect()
}

/// A recovered session's stream must be `SessionResumed` plus exactly
/// the uninterrupted run's suffix.
fn assert_resumed_stream(recovered: &[u8], truth: &[u8], context: &str) {
    let newline = recovered
        .iter()
        .position(|&b| b == b'\n')
        .unwrap_or_else(|| panic!("{context}: empty recovered stream"));
    let first = std::str::from_utf8(&recovered[..newline]).unwrap();
    assert!(
        first.contains("\"SessionResumed\""),
        "{context}: stream must open with SessionResumed, got {first}"
    );
    let suffix = &recovered[newline + 1..];
    assert!(
        truth.ends_with(suffix),
        "{context}: post-resume events are not a suffix of the uninterrupted stream \
         ({} suffix bytes vs {} truth bytes)",
        suffix.len(),
        truth.len()
    );
}

/// The tentpole matrix: all six crawlers × {none, heavy} fault profiles
/// × three adversarial schedule orders. Run partway, drain to disk, kill
/// the service, recover into a fresh one, finish — final reports are
/// byte-identical to uninterrupted runs and recovered event streams
/// splice cleanly.
#[test]
fn graceful_drain_and_recover_is_bit_identical() {
    for profile in ["none", "heavy"] {
        let truth = uninterrupted(profile);
        for (oi, order) in
            [ScheduleOrder::RoundRobin, ScheduleOrder::Lifo, ScheduleOrder::Random(0xFEED)]
                .into_iter()
                .enumerate()
        {
            let context = format!("profile={profile} order={order:?}");
            let dir = tmpdir(&format!("graceful-{profile}-{oi}"));
            let mut service = CrawlService::new(durable_config(&dir, order));
            for spec in workload(profile) {
                service.submit(spec).unwrap();
            }
            // Stop partway through the drain, then park the survivors.
            let early = service.run_for_steps(150);
            let parked = service.drain().unwrap();
            assert_eq!(
                early.len() as u64 + parked,
                CRAWLER_NAMES.len() as u64,
                "{context}: every session either completed early or parked"
            );
            assert!(parked > 0, "{context}: the crash point must strand some sessions");
            assert_eq!(service.in_flight(), 0, "{context}: drain releases quota slots");
            drop(service);

            // "Process restart": a brand-new service over the same dir.
            let mut revived = CrawlService::new(durable_config(&dir, order));
            let recovery = revived.recover().unwrap();
            assert_eq!(recovery.restored, parked, "{context}");
            assert_eq!(recovery.corrupt_quarantined, 0, "{context}");
            assert!(recovery.rejected.is_empty(), "{context}");
            let late = revived.run_to_drain();
            assert_eq!(revived.aborted(), 0, "{context}");

            let mut all: BTreeMap<u64, _> = BTreeMap::new();
            for c in early {
                all.insert(c.id, (c.report, c.events_jsonl.unwrap(), false));
            }
            for c in late {
                all.insert(c.id, (c.report, c.events_jsonl.unwrap(), true));
            }
            assert_eq!(all.len(), truth.len(), "{context}: no session lost or duplicated");
            for (id, (report, events, resumed)) in &all {
                let (truth_report, truth_events) = &truth[id];
                assert_eq!(report, truth_report, "{context}: report diverged for session {id}");
                if *resumed {
                    assert_resumed_stream(events, truth_events, &format!("{context} id={id}"));
                } else {
                    assert_eq!(
                        events, truth_events,
                        "{context}: pre-crash completion diverged for session {id}"
                    );
                }
            }
            // Completed sessions scrub their checkpoints; the live dir
            // holds nothing once everything drained.
            let leftovers = fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| e.path().extension().is_some_and(|x| x == "ckpt"))
                .count();
            assert_eq!(leftovers, 0, "{context}: recovered sessions scrub their files");
            fs::remove_dir_all(&dir).unwrap();
        }
    }
}

/// A hard crash: the service is dropped with no drain call at all. Only
/// cadence checkpoints exist; recovered sessions replay from their last
/// boundary and still finish bit-identically.
#[test]
fn hard_crash_recovers_from_cadence_checkpoints() {
    let truth = uninterrupted("heavy");
    let dir = tmpdir("hard-crash");
    let mut service = CrawlService::new(durable_config(&dir, ScheduleOrder::RoundRobin));
    for spec in workload("heavy") {
        service.submit(spec).unwrap();
    }
    let early = service.run_for_steps(200);
    // No drain(): simulate SIGKILL by dropping the live service.
    drop(service);

    let mut revived = CrawlService::new(durable_config(&dir, ScheduleOrder::Lifo));
    let recovery = revived.recover().unwrap();
    assert!(recovery.restored > 0, "200 steps across six sessions must cross the 16-step cadence");
    assert_eq!(recovery.corrupt_quarantined, 0);
    let late = revived.run_to_drain();
    assert_eq!(late.len() as u64, recovery.restored);
    for c in early.iter().chain(&late) {
        let (truth_report, _) = &truth[&c.id];
        assert_eq!(&c.report, truth_report, "session {} diverged after hard crash", c.id);
    }
    let restores =
        revived.metrics().registry().counter_value("mak_serve_checkpoint_restores_total", &[]);
    assert_eq!(restores, recovery.restored as f64);
    fs::remove_dir_all(&dir).unwrap();
}

/// Corrupt checkpoints — bit-flipped, truncated, torn, or garbage — are
/// quarantined and counted; the intact neighbors recover and finish
/// bit-identically. Recovery never panics on hostile bytes.
#[test]
fn corrupt_checkpoints_are_quarantined_never_trusted() {
    let truth = uninterrupted("none");
    let dir = tmpdir("corrupt");
    let mut service = CrawlService::new(durable_config(&dir, ScheduleOrder::RoundRobin));
    for spec in workload("none") {
        service.submit(spec).unwrap();
    }
    let early = service.run_for_steps(100);
    let parked = service.drain().unwrap();
    assert!(parked >= 3, "need at least three parked sessions to corrupt");
    drop(service);

    // Corrupt two parked files two different ways and drop a stray
    // non-checkpoint file into the directory for good measure.
    let mut parked_files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ckpt"))
        .collect();
    parked_files.sort();
    let mut raw = fs::read(&parked_files[0]).unwrap();
    let mid = raw.len() / 2;
    raw[mid] ^= 0x01;
    fs::write(&parked_files[0], &raw).unwrap();
    let raw = fs::read(&parked_files[1]).unwrap();
    fs::write(&parked_files[1], &raw[..raw.len() - 7]).unwrap();
    fs::write(dir.join("README.txt"), b"not a checkpoint").unwrap();

    let mut revived = CrawlService::new(durable_config(&dir, ScheduleOrder::RoundRobin));
    let recovery = revived.recover().unwrap();
    assert_eq!(recovery.corrupt_quarantined, 2);
    assert_eq!(recovery.restored, parked - 2);
    // The damaged files moved to quarantine/ for forensics.
    assert_eq!(fs::read_dir(dir.join("quarantine")).unwrap().count(), 2);
    // And the counter in the exposition agrees.
    let corrupt =
        revived.metrics().registry().counter_value("mak_serve_checkpoint_corrupt_total", &[]);
    assert_eq!(corrupt, 2.0);

    let late = revived.run_to_drain();
    for c in early.iter().chain(&late) {
        let (truth_report, _) = &truth[&c.id];
        assert_eq!(&c.report, truth_report, "survivor {} diverged", c.id);
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// Recovery re-admits under the *current* quota: a tightened cap rejects
/// the overflow with a typed, hint-carrying error and leaves those
/// checkpoints on disk for a later attempt.
#[test]
fn recovery_respects_current_tenant_quotas() {
    let dir = tmpdir("quota");
    let mut service = CrawlService::new(durable_config(&dir, ScheduleOrder::RoundRobin));
    for spec in workload("none") {
        service.submit(spec).unwrap();
    }
    service.run_for_steps(100);
    let parked = service.drain().unwrap();
    assert!(parked >= 2);
    drop(service);

    let mut revived = CrawlService::new(durable_config(&dir, ScheduleOrder::RoundRobin));
    revived.set_quota("recovery", TenantQuota::concurrent(1));
    let recovery = revived.recover().unwrap();
    assert_eq!(recovery.restored, 1, "one slot, one re-admission");
    assert_eq!(recovery.rejected.len() as u64, parked - 1);
    for (_, err) in &recovery.rejected {
        assert!(matches!(err, SubmitError::QuotaExceeded { .. }), "rejections are typed: {err}");
    }
    // The rejected checkpoints are still on disk: widen the quota and a
    // second recovery picks them up.
    revived.set_quota("recovery", TenantQuota::default());
    let second = revived.recover().unwrap();
    assert_eq!(second.restored, parked - 1);
    assert_eq!(revived.run_to_drain().len() as u64, parked);
    fs::remove_dir_all(&dir).unwrap();
}

/// Durability off (the default) never touches the filesystem and drain()
/// is a typed error, not a silent no-op.
#[test]
fn drain_and_recover_require_a_checkpoint_dir() {
    let mut service = CrawlService::new(ServiceConfig::default());
    service.submit(workload("none").remove(0)).unwrap();
    assert!(service.drain().is_err());
    assert!(service.recover().is_err());
    // The session is still in flight and runnable.
    assert_eq!(service.run_to_drain().len(), 1);
}
