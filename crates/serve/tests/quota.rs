//! Backpressure at the admission boundary: quota violations are typed
//! errors, in-flight sessions always finish cleanly, and slot accounting
//! returns to zero after every drain.

use mak::framework::engine::EngineConfig;
use mak_serve::{CrawlService, ServiceConfig, SessionSpec, SubmitError, TenantQuota};

fn spec(tenant: &str, seed: u64) -> SessionSpec {
    SessionSpec::new(tenant, "addressbook", "random", seed)
        .config(EngineConfig::with_budget_minutes(0.25))
}

/// Hitting the concurrent cap is a typed rejection, not a panic, and the
/// sessions already in flight finish their full budget untouched.
#[test]
fn quota_rejection_leaves_in_flight_sessions_intact() {
    let mut service = CrawlService::new(ServiceConfig::default());
    service.set_quota("capped", TenantQuota::concurrent(3));
    for seed in 0..3 {
        service.submit(spec("capped", seed)).unwrap();
    }
    let err = service.submit(spec("capped", 3)).unwrap_err();
    assert!(matches!(err, SubmitError::QuotaExceeded { in_flight: 3, limit: 3, .. }));
    let done = service.run_to_drain();
    assert_eq!(done.len(), 3, "the rejection touched nothing in flight");
    for c in &done {
        assert!(c.report.interactions > 0);
        assert!(c.report.elapsed_secs > 0.0);
    }
}

/// Slots return to the pool after a drain: the same tenant can refill
/// its quota, round after round, and the ledger reads zero in between.
#[test]
fn slot_accounting_returns_to_zero_after_drain() {
    let mut service = CrawlService::new(ServiceConfig::default());
    service.set_quota("capped", TenantQuota::concurrent(2));
    for round in 0..3 {
        service.submit(spec("capped", round * 2)).unwrap();
        service.submit(spec("capped", round * 2 + 1)).unwrap();
        assert!(service.submit(spec("capped", 99)).is_err());
        assert_eq!(service.tenant_in_flight("capped"), 2);
        service.run_to_drain();
        assert_eq!(service.tenant_in_flight("capped"), 0);
        assert_eq!(service.in_flight(), 0);
    }
}

/// The lifetime budget spans drains: once spent it never recovers, while
/// other tenants are unaffected.
#[test]
fn lifetime_budget_is_permanent_and_per_tenant() {
    let mut service = CrawlService::new(ServiceConfig::default());
    service.set_quota("metered", TenantQuota { max_concurrent: 10, max_total: Some(2) });
    service.submit(spec("metered", 0)).unwrap();
    service.run_to_drain();
    service.submit(spec("metered", 1)).unwrap();
    service.run_to_drain();
    let err = service.submit(spec("metered", 2)).unwrap_err();
    assert!(matches!(err, SubmitError::BudgetExhausted { submitted: 2, budget: 2, .. }));
    // A sibling tenant still gets in.
    service.submit(spec("unmetered", 3)).unwrap();
    assert_eq!(service.run_to_drain().len(), 1);
}
