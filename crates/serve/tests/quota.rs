//! Backpressure at the admission boundary: quota violations are typed
//! errors, in-flight sessions always finish cleanly, and slot accounting
//! returns to zero after every drain.

use mak::framework::engine::EngineConfig;
use mak_serve::{CrawlService, ServiceConfig, SessionSpec, SubmitError, TenantQuota};

fn spec(tenant: &str, seed: u64) -> SessionSpec {
    SessionSpec::new(tenant, "addressbook", "random", seed)
        .config(EngineConfig::with_budget_minutes(0.25))
}

/// Hitting the concurrent cap is a typed rejection, not a panic, and the
/// sessions already in flight finish their full budget untouched.
#[test]
fn quota_rejection_leaves_in_flight_sessions_intact() {
    let mut service = CrawlService::new(ServiceConfig::default());
    service.set_quota("capped", TenantQuota::concurrent(3));
    for seed in 0..3 {
        service.submit(spec("capped", seed)).unwrap();
    }
    let err = service.submit(spec("capped", 3)).unwrap_err();
    assert!(matches!(err, SubmitError::QuotaExceeded { in_flight: 3, limit: 3, .. }));
    // The rejection carries a machine-readable backoff hint: one
    // scheduling slice, the soonest an in-flight neighbor can finish.
    let SubmitError::QuotaExceeded { retry_after_steps, .. } = &err else {
        panic!("expected QuotaExceeded, got {err}");
    };
    assert_eq!(
        *retry_after_steps,
        Some(ServiceConfig::default().steps_per_slice as u64),
        "the service fills the hint with its slice length"
    );
    // And the same hint lands in the Prometheus exposition.
    let prom = service.metrics().snapshot().to_prometheus();
    assert!(
        prom.contains("mak_serve_retry_after_steps"),
        "retry hint gauge missing from exposition:\n{prom}"
    );
    let done = service.run_to_drain();
    assert_eq!(done.len(), 3, "the rejection touched nothing in flight");
    for c in &done {
        assert!(c.report.interactions > 0);
        assert!(c.report.elapsed_secs > 0.0);
    }
}

/// Slots return to the pool after a drain: the same tenant can refill
/// its quota, round after round, and the ledger reads zero in between.
#[test]
fn slot_accounting_returns_to_zero_after_drain() {
    let mut service = CrawlService::new(ServiceConfig::default());
    service.set_quota("capped", TenantQuota::concurrent(2));
    for round in 0..3 {
        service.submit(spec("capped", round * 2)).unwrap();
        service.submit(spec("capped", round * 2 + 1)).unwrap();
        assert!(service.submit(spec("capped", 99)).is_err());
        assert_eq!(service.tenant_in_flight("capped"), 2);
        service.run_to_drain();
        assert_eq!(service.tenant_in_flight("capped"), 0);
        assert_eq!(service.in_flight(), 0);
    }
}

/// Per-tenant accounting: every typed `SubmitError` the admission
/// boundary returns is mirrored, one for one, by the
/// `mak_serve_quota_rejections_total{tenant, reason}` counter — the
/// registry and the error channel can never drift apart.
#[test]
fn rejection_counters_match_typed_submit_errors_exactly() {
    use std::collections::BTreeMap;

    let mut service = CrawlService::new(ServiceConfig::default());
    service.set_quota("capped", TenantQuota { max_concurrent: 2, max_total: Some(4) });

    let mut typed: BTreeMap<(String, &'static str), u64> = BTreeMap::new();
    let mut count = |tenant: &str, result: Result<u64, SubmitError>| {
        if let Err(err) = result {
            *typed.entry((tenant.to_owned(), err.reason())).or_default() += 1;
        }
    };

    // Two admitted, then three concurrent-quota rejections.
    for seed in 0..5 {
        count("capped", service.submit(spec("capped", seed)));
    }
    // Unknown names, checked before quota.
    let mut bad_app = spec("capped", 9);
    bad_app.app = "geocities".into();
    count("capped", service.submit(bad_app));
    let mut bad_crawler = spec("capped", 9);
    bad_crawler.crawler = "googlebot".into();
    count("capped", service.submit(bad_crawler));
    // Drain, refill to the lifetime budget, then exhaust it twice.
    service.run_to_drain();
    for seed in 5..9 {
        count("capped", service.submit(spec("capped", seed)));
    }
    // A sibling tenant's rejections are accounted separately.
    let mut sibling_bad = spec("other", 1);
    sibling_bad.app = "myspace".into();
    count("other", service.submit(sibling_bad));

    assert_eq!(typed[&("capped".to_owned(), "quota_exceeded")], 3);
    assert_eq!(typed[&("capped".to_owned(), "budget_exhausted")], 2);
    assert_eq!(typed[&("capped".to_owned(), "unknown_app")], 1);
    assert_eq!(typed[&("capped".to_owned(), "unknown_crawler")], 1);
    assert_eq!(typed[&("other".to_owned(), "unknown_app")], 1);

    let registry = service.metrics().registry();
    for ((tenant, reason), expected) in &typed {
        let counted = registry.counter_value(
            "mak_serve_quota_rejections_total",
            &[("tenant", tenant), ("reason", reason)],
        );
        assert_eq!(counted, *expected as f64, "counter for {tenant}/{reason}");
    }
    assert_eq!(
        registry.counter_total("mak_serve_quota_rejections_total"),
        typed.values().sum::<u64>() as f64,
        "no rejection is counted anywhere else"
    );
}

/// The lifetime budget spans drains: once spent it never recovers, while
/// other tenants are unaffected.
#[test]
fn lifetime_budget_is_permanent_and_per_tenant() {
    let mut service = CrawlService::new(ServiceConfig::default());
    service.set_quota("metered", TenantQuota { max_concurrent: 10, max_total: Some(2) });
    service.submit(spec("metered", 0)).unwrap();
    service.run_to_drain();
    service.submit(spec("metered", 1)).unwrap();
    service.run_to_drain();
    let err = service.submit(spec("metered", 2)).unwrap_err();
    assert!(matches!(err, SubmitError::BudgetExhausted { submitted: 2, budget: 2, .. }));
    // A sibling tenant still gets in.
    service.submit(spec("unmetered", 3)).unwrap();
    assert_eq!(service.run_to_drain().len(), 1);
}
