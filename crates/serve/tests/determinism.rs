//! The serving layer's determinism contract: every session's report and
//! JSONL event stream are a pure function of `(app, crawler, seed,
//! config)` — independent of worker-thread count and of the scheduler's
//! queue discipline, including adversarial ones.

use mak::framework::engine::{run_crawl_with_sink, CrawlReport, EngineConfig};
use mak::spec::build_crawler;
use mak_obs::sink::{JsonlSink, SinkHandle};
use mak_serve::{CrawlService, ScheduleOrder, ServiceConfig, SessionSpec};
use mak_websim::apps;
use std::sync::Arc;

/// A mixed workload: three apps × four crawlers, seeds varying per cell.
fn workload() -> Vec<SessionSpec> {
    let mut specs = Vec::new();
    let mut seed = 100;
    for app in ["addressbook", "vanilla", "phpbb2"] {
        for crawler in ["mak", "webexplor", "bfs", "random"] {
            specs.push(
                SessionSpec::new("determinism", app, crawler, seed)
                    .config(EngineConfig::with_budget_minutes(0.5))
                    .record_events(true),
            );
            seed += 1;
        }
    }
    specs
}

/// The standalone truth for one spec: `run_crawl_with_sink` writing
/// through a `JsonlSink`, exactly as `mak-cli crawl --trace` would.
fn standalone(spec: &SessionSpec) -> (CrawlReport, Vec<u8>) {
    let (handle, cell) = SinkHandle::shared(JsonlSink::new(Vec::new()));
    let mut crawler = build_crawler(&spec.crawler, spec.seed).unwrap();
    let report = run_crawl_with_sink(
        &mut *crawler,
        apps::build(&spec.app).unwrap(),
        &spec.config,
        spec.seed,
        &handle,
    );
    drop(crawler);
    drop(handle);
    let Ok(sink) = Arc::try_unwrap(cell) else { panic!("all clones dropped") };
    let (bytes, err) = sink.into_inner().unwrap_or_else(|p| p.into_inner()).finish();
    assert!(err.is_none());
    (report, bytes)
}

fn drain_with(
    threads: usize,
    order: ScheduleOrder,
    steps_per_slice: usize,
) -> Vec<(CrawlReport, Vec<u8>)> {
    let mut service = CrawlService::new(ServiceConfig {
        threads,
        steps_per_slice,
        order,
        ..ServiceConfig::default()
    });
    for spec in workload() {
        service.submit(spec).unwrap();
    }
    let done = service.run_to_drain();
    assert_eq!(service.in_flight(), 0);
    assert_eq!(service.aborted(), 0);
    done.into_iter().map(|c| (c.report, c.events_jsonl.expect("events recorded"))).collect()
}

/// Service outcomes equal standalone runs byte-for-byte — reports *and*
/// JSONL streams — under every combination of worker count and queue
/// discipline the suite throws at the scheduler.
#[test]
fn service_equals_standalone_under_adversarial_schedules() {
    let specs = workload();
    let truth: Vec<(CrawlReport, Vec<u8>)> = specs.iter().map(standalone).collect();
    for threads in [1usize, 4, 8] {
        for order in
            [ScheduleOrder::RoundRobin, ScheduleOrder::Lifo, ScheduleOrder::Random(0xC0FFEE)]
        {
            let served = drain_with(threads, order, 64);
            assert_eq!(served.len(), truth.len());
            for (i, ((sr, sj), (tr, tj))) in served.iter().zip(&truth).enumerate() {
                let spec = &specs[i];
                assert_eq!(
                    sr, tr,
                    "report diverged: {}/{} seed {} under {order:?} x{threads}",
                    spec.app, spec.crawler, spec.seed
                );
                assert_eq!(
                    sj, tj,
                    "JSONL stream diverged: {}/{} seed {} under {order:?} x{threads}",
                    spec.app, spec.crawler, spec.seed
                );
            }
        }
    }
}

/// Slice size is a pure throughput knob: pathological quanta (one step
/// per slice, and one larger than any session's step count) change
/// nothing about the outcomes.
#[test]
fn slice_size_is_unobservable() {
    let coarse = drain_with(1, ScheduleOrder::RoundRobin, 1 << 20);
    let fine = drain_with(2, ScheduleOrder::Lifo, 1);
    assert_eq!(coarse, fine);
}

/// Reruns of the seeded-random schedule are themselves deterministic:
/// same seed, same thread count — same everything. (The schedule may
/// differ across thread counts; outcomes never do, which the main test
/// above already proves.)
#[test]
fn random_schedule_is_reproducible() {
    let a = drain_with(4, ScheduleOrder::Random(7), 32);
    let b = drain_with(4, ScheduleOrder::Random(7), 32);
    assert_eq!(a, b);
}
