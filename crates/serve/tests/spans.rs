//! Span-stream determinism through the serving layer: a session that
//! records phase spans produces a byte-identical JSONL stream — span
//! events included — across worker counts, queue disciplines, and
//! reruns, mirroring the 9-combination matrix the telemetry suite runs
//! for metric snapshots.

use mak::framework::engine::EngineConfig;
use mak_browser::fault::FaultPlan;
use mak_obs::Event;
use mak_serve::{CrawlService, ScheduleOrder, ServiceConfig, SessionSpec};

/// A small mixed workload with spans on: two apps, two crawlers, one
/// faulty config so `Backoff` spans appear too.
fn workload() -> Vec<SessionSpec> {
    let mut specs = Vec::new();
    let mut seed = 4100;
    for app in ["addressbook", "vanilla"] {
        for crawler in ["mak", "bfs"] {
            let mut config = EngineConfig::with_budget_minutes(0.25);
            if app == "vanilla" {
                config.faults = FaultPlan::profile("moderate").expect("profile exists");
                config.faults.fault_seed = seed;
            }
            specs.push(
                SessionSpec::new("spans", app, crawler, seed).config(config).record_spans(true),
            );
            seed += 1;
        }
    }
    specs
}

/// Drains the workload and returns each session's JSONL stream plus the
/// virtual-domain metrics snapshot (which now carries the per-phase
/// histogram family).
fn drained_streams(threads: usize, order: ScheduleOrder) -> (Vec<Vec<u8>>, String) {
    let mut service =
        CrawlService::new(ServiceConfig { threads, order, ..ServiceConfig::default() });
    for spec in workload() {
        service.submit(spec).unwrap();
    }
    let done = service.run_to_drain();
    assert_eq!(done.len(), 4);
    let streams = done
        .into_iter()
        .map(|c| c.events_jsonl.expect("record_spans implies event capture"))
        .collect();
    (streams, service.metrics().virtual_snapshot().to_prometheus())
}

/// The acceptance criterion: span streams are byte-identical across
/// `MAK_THREADS` ∈ {1, 4, 8} and all three `ScheduleOrder`s.
#[test]
fn span_streams_are_byte_identical_across_schedules() {
    let (truth, truth_prom) = drained_streams(1, ScheduleOrder::RoundRobin);
    for stream in &truth {
        let text = String::from_utf8(stream.clone()).expect("JSONL is UTF-8");
        assert!(text.contains("SpanClosed"), "spans were recorded");
    }
    assert!(
        truth_prom.contains("mak_serve_phase_virtual_ms"),
        "the per-phase family is in the virtual snapshot"
    );
    for threads in [1usize, 4, 8] {
        for order in [ScheduleOrder::RoundRobin, ScheduleOrder::Lifo, ScheduleOrder::Random(0xACE)]
        {
            let (streams, prom) = drained_streams(threads, order);
            assert_eq!(streams, truth, "span streams diverged under {order:?} x{threads}");
            assert_eq!(prom, truth_prom, "phase histograms diverged under {order:?} x{threads}");
        }
    }
}

/// The spans in a served stream form a well-founded tree: every parent
/// id was closed after its children (stack discipline) and every leaf
/// phase lies inside its `Step` window.
#[test]
fn served_span_streams_form_consistent_trees() {
    let (streams, _) = drained_streams(2, ScheduleOrder::RoundRobin);
    for stream in streams {
        let text = String::from_utf8(stream).unwrap();
        let spans: Vec<(u64, u64, String, f64, f64)> = text
            .lines()
            .filter_map(|line| match serde_json::from_str::<Event>(line).ok()? {
                Event::SpanClosed { id, parent, phase, t_ms, dur_ms } => {
                    Some((id, parent, phase, t_ms, dur_ms))
                }
                _ => None,
            })
            .collect();
        assert!(!spans.is_empty());
        let window = |id: u64| spans.iter().find(|s| s.0 == id).map(|s| (s.3, s.3 + s.4)).unwrap();
        for &(id, parent, ref phase, t_ms, dur_ms) in &spans {
            assert!(dur_ms >= 0.0, "span {id} ({phase}) has a negative duration");
            if parent != 0 {
                let (start, end) = window(parent);
                assert!(
                    t_ms >= start && t_ms + dur_ms <= end + 1e-6,
                    "span {id} ({phase}) escapes its parent {parent} window"
                );
            }
        }
    }
}

/// Spans stay strictly opt-in: a plain `record_events` session carries
/// no `SpanClosed` lines and is byte-identical to what the pre-span
/// service returned.
#[test]
fn spans_are_opt_in_per_session() {
    let mut service = CrawlService::new(ServiceConfig::default());
    service
        .submit(
            SessionSpec::new("plain", "addressbook", "mak", 77)
                .config(EngineConfig::with_budget_minutes(0.25))
                .record_events(true),
        )
        .unwrap();
    service
        .submit(
            SessionSpec::new("spans", "addressbook", "mak", 77)
                .config(EngineConfig::with_budget_minutes(0.25))
                .record_spans(true),
        )
        .unwrap();
    let done = service.run_to_drain();
    let plain = String::from_utf8(done[0].events_jsonl.clone().unwrap()).unwrap();
    let spanned = String::from_utf8(done[1].events_jsonl.clone().unwrap()).unwrap();
    assert!(!plain.contains("SpanClosed"));
    assert!(spanned.contains("SpanClosed"));
    assert_eq!(done[0].report, done[1].report, "span recording must not perturb the crawl outcome");
    // Stripping the span lines recovers the plain stream exactly: spans
    // are an overlay, not a rewrite.
    let stripped: String =
        spanned.lines().filter(|l| !l.contains("SpanClosed")).map(|l| format!("{l}\n")).collect();
    assert_eq!(stripped, plain);
}
