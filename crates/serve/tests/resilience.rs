//! Chaos over the service: every session crawls a flaky web (the PR 5
//! fault-injection layer at its heavy profile) while the scheduler
//! multiplexes them. Faults must stay a per-session affair — full
//! budgets, no wedged workers, and fault counters identical to the same
//! crawl run standalone.

use mak::framework::engine::{run_crawl, EngineConfig};
use mak::spec::{build_crawler, CRAWLER_NAMES};
use mak_browser::fault::FaultPlan;
use mak_serve::{CrawlService, ScheduleOrder, ServiceConfig, SessionSpec};
use mak_websim::apps;

fn heavy_config(minutes: f64) -> EngineConfig {
    let mut cfg = EngineConfig::with_budget_minutes(minutes);
    cfg.faults = FaultPlan::profile("heavy").unwrap();
    cfg
}

/// All six crawlers crawl a flaky PhpBB2 concurrently under an
/// adversarial schedule: every session finishes its full virtual budget,
/// none wedges the scheduler, and each one both sees and recovers from
/// faults.
#[test]
fn heavy_faults_do_not_wedge_the_scheduler() {
    let budget_minutes = 2.0;
    let mut service = CrawlService::new(ServiceConfig {
        threads: 4,
        order: ScheduleOrder::Lifo,
        ..ServiceConfig::default()
    });
    for crawler in CRAWLER_NAMES {
        service
            .submit(
                SessionSpec::new("chaos", "phpbb2", *crawler, 21)
                    .config(heavy_config(budget_minutes)),
            )
            .unwrap();
    }
    let done = service.run_to_drain();
    assert_eq!(done.len(), CRAWLER_NAMES.len());
    assert_eq!(service.aborted(), 0, "faults are recoverable, not fatal");
    for c in &done {
        assert!(
            c.report.elapsed_secs >= 0.9 * budget_minutes * 60.0,
            "{} aborted early: {}s",
            c.report.crawler,
            c.report.elapsed_secs
        );
        assert!(c.report.faults.injected > 0, "{} saw faults", c.report.crawler);
        assert!(c.report.faults.recoveries > 0, "{} recovered", c.report.crawler);
        assert!(c.report.final_lines_covered > 0, "{} still covered code", c.report.crawler);
    }
}

/// Per-session fault accounting is exact under multiplexing: a faulty
/// session drained through the service reports the same `FaultStats` —
/// injections, retries, recoveries, every counter — as the identical
/// crawl run standalone, even with fault-free neighbors interleaved.
#[test]
fn fault_counters_match_standalone_runs() {
    let cfg = heavy_config(1.5);
    let mut service = CrawlService::new(ServiceConfig {
        threads: 2,
        order: ScheduleOrder::Random(99),
        ..ServiceConfig::default()
    });
    for crawler in ["mak", "bfs"] {
        service
            .submit(SessionSpec::new("chaos", "addressbook", crawler, 22).config(cfg.clone()))
            .unwrap();
        // A clean neighbor interleaved with each faulty session.
        service
            .submit(
                SessionSpec::new("chaos", "addressbook", crawler, 22)
                    .config(EngineConfig::with_budget_minutes(1.5)),
            )
            .unwrap();
    }
    let done = service.run_to_drain();
    for pair in done.chunks(2) {
        let (faulty, clean) = (&pair[0], &pair[1]);
        let mut standalone_crawler = build_crawler(&faulty.report.crawler, 22).unwrap();
        let standalone =
            run_crawl(&mut *standalone_crawler, apps::build("addressbook").unwrap(), &cfg, 22);
        assert_eq!(faulty.report, standalone, "{} chaos ≡ standalone", faulty.report.crawler);
        assert_eq!(faulty.report.faults, standalone.faults);
        assert!(faulty.report.faults.injected > 0);
        assert_eq!(clean.report.faults.injected, 0, "faults never leak across sessions");
    }
}
