//! The telemetry acceptance contract: virtual-domain metrics snapshots
//! are bit-identical across worker counts, queue disciplines, and
//! reruns — and the per-session JSONL streams the service returns feed
//! the existing trace tooling (`FlightRecorder`, `mak-cli trace
//! summarize`) unchanged.

use mak::framework::engine::EngineConfig;
use mak_browser::fault::FaultPlan;
use mak_obs::{EventSink, FlightRecorder};
use mak_serve::{CrawlService, ScheduleOrder, ServiceConfig, SessionSpec, TenantQuota};

/// A mixed workload with two tenants, a faulty app, and enough quota
/// pressure to generate typed rejections — every virtual-domain family
/// gets non-trivial values, including the float backoff sums.
fn workload() -> Vec<SessionSpec> {
    let mut specs = Vec::new();
    let mut seed = 700;
    for app in ["addressbook", "vanilla"] {
        for crawler in ["mak", "bfs"] {
            let mut config = EngineConfig::with_budget_minutes(0.25);
            if app == "vanilla" {
                config.faults = FaultPlan::profile("moderate").expect("profile exists");
                config.faults.fault_seed = seed;
            }
            let tenant = if crawler == "mak" { "acme" } else { "globex" };
            specs.push(
                SessionSpec::new(tenant, app, crawler, seed).config(config).record_events(true),
            );
            seed += 1;
        }
    }
    specs
}

/// Runs the workload (plus a deliberately rejected overflow submission)
/// and returns the virtual-domain snapshot rendered both ways.
fn virtual_artifacts(threads: usize, order: ScheduleOrder) -> (String, String) {
    let mut service =
        CrawlService::new(ServiceConfig { threads, order, ..ServiceConfig::default() });
    service.set_quota("acme", TenantQuota { max_concurrent: 2, max_total: Some(3) });
    for spec in workload() {
        service.submit(spec).unwrap();
    }
    // Third acme submission trips the concurrent quota; a bogus app and
    // crawler exercise the other two rejection reasons.
    assert!(service.submit(SessionSpec::new("acme", "addressbook", "mak", 9)).is_err());
    assert!(service.submit(SessionSpec::new("acme", "geocities", "mak", 9)).is_err());
    assert!(service.submit(SessionSpec::new("acme", "addressbook", "googlebot", 9)).is_err());
    let done = service.run_to_drain();
    assert_eq!(done.len(), 4);
    assert!(
        done.iter().any(|c| c.report.faults.backoff_ms > 0.0),
        "the faulty app must exercise the float backoff sum"
    );
    let snapshot = service.metrics().virtual_snapshot();
    (snapshot.to_prometheus(), snapshot.to_json())
}

/// The acceptance criterion: virtual-domain snapshots — Prometheus text
/// and JSON alike — are byte-identical across `MAK_THREADS` ∈ {1, 4, 8}
/// and all three `ScheduleOrder`s, rejections included.
#[test]
fn virtual_snapshots_are_byte_identical_across_schedules() {
    let (truth_prom, truth_json) = virtual_artifacts(1, ScheduleOrder::RoundRobin);
    assert!(truth_prom.contains("mak_serve_sessions_completed_total"));
    assert!(truth_prom.contains("mak_serve_fault_backoff_virtual_ms_total"));
    assert!(truth_prom.contains("reason=\"quota_exceeded\""));
    assert!(truth_prom.contains("reason=\"unknown_app\""));
    assert!(truth_prom.contains("reason=\"unknown_crawler\""));
    assert!(!truth_prom.contains("mak_serve_step_latency_ns"), "wall families must be excluded");
    for threads in [1usize, 4, 8] {
        for order in [ScheduleOrder::RoundRobin, ScheduleOrder::Lifo, ScheduleOrder::Random(0xBEEF)]
        {
            let (prom, json) = virtual_artifacts(threads, order);
            assert_eq!(prom, truth_prom, "prometheus text diverged under {order:?} x{threads}");
            assert_eq!(json, truth_json, "JSON snapshot diverged under {order:?} x{threads}");
        }
    }
}

/// The virtual counters agree with the drained sessions themselves.
#[test]
fn virtual_counters_reconcile_with_session_reports() {
    let mut service = CrawlService::new(ServiceConfig::default());
    for spec in workload() {
        service.submit(spec).unwrap();
    }
    let done = service.run_to_drain();
    let registry = service.metrics().registry();
    assert_eq!(registry.counter_total("mak_serve_sessions_completed_total"), done.len() as f64);
    let interactions: u64 = done.iter().map(|c| c.report.interactions).sum();
    assert_eq!(registry.counter_total("mak_serve_interactions_total"), interactions as f64);
    let steps: u64 = done.iter().map(|c| c.steps).sum();
    assert_eq!(registry.counter_total("mak_serve_steps_total"), steps as f64);
    let injected: u64 = done.iter().map(|c| c.report.faults.injected).sum();
    assert_eq!(registry.counter_total("mak_serve_faults_injected_total"), injected as f64);
    // The wall domain recorded the drain even without latency sampling.
    assert_eq!(registry.counter_value("mak_serve_drains_total", &[]), 1.0);
}

/// `ServiceConfig::collect_metrics = false` folds nothing — the knob the
/// load bench uses to price collection itself.
#[test]
fn metrics_can_be_disabled_without_changing_outcomes() {
    let run = |collect_metrics: bool| {
        let mut service =
            CrawlService::new(ServiceConfig { collect_metrics, ..ServiceConfig::default() });
        for spec in workload() {
            service.submit(spec).unwrap();
        }
        let reports: Vec<_> = service.run_to_drain().into_iter().map(|c| c.report).collect();
        (reports, service.metrics().snapshot().to_prometheus())
    };
    let (on_reports, on_prom) = run(true);
    let (off_reports, off_prom) = run(false);
    assert_eq!(on_reports, off_reports, "collection must not perturb outcomes");
    assert!(!on_prom.is_empty());
    assert!(off_prom.is_empty(), "disabled registry renders nothing");
}

/// Satellite: a served session's JSONL stream drives the exact pipeline
/// behind `mak-cli trace summarize` — `trace::read` into a
/// `FlightRecorder` — and the resulting flight report agrees with the
/// session's own crawl report.
#[test]
fn served_jsonl_streams_feed_the_flight_recorder_unchanged() {
    let mut service = CrawlService::new(ServiceConfig::default());
    service
        .submit(
            SessionSpec::new("trace", "addressbook", "mak", 42)
                .config(EngineConfig::with_budget_minutes(0.25))
                .record_events(true),
        )
        .unwrap();
    let done = service.run_to_drain();
    let session = &done[0];
    let jsonl = session.events_jsonl.as_ref().expect("events recorded");

    let path =
        std::env::temp_dir().join(format!("mak-serve-telemetry-{}.jsonl", std::process::id()));
    std::fs::write(&path, jsonl).unwrap();
    let mut recorder = FlightRecorder::new();
    for event in mak_obs::trace::read(&path).expect("trace opens") {
        recorder.on_event(&event.expect("every line parses as an Event"));
    }
    let flight = recorder.into_report();
    let _ = std::fs::remove_file(&path);

    assert_eq!(flight.app, session.report.app);
    assert_eq!(flight.crawler, session.report.crawler);
    assert_eq!(flight.seed, session.report.seed);
    assert_eq!(flight.steps, session.steps);
    assert_eq!(flight.lines, session.report.final_lines_covered);
    assert!(flight.events > 0);
}
