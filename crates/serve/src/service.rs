//! The crawl service: admission, shared app models, and the drain loop.
//!
//! A [`CrawlService`] is a long-running, in-process session multiplexer.
//! [`submit`](CrawlService::submit) admits a [`SessionSpec`] against the
//! tenant ledger (typed [`SubmitError`] backpressure, never a panic),
//! instantiates the session immediately — so "in flight" means a live
//! [`Session`] state machine holding its browser, clock, and policy
//! state — and parks it on the scheduler's injector.
//! [`run_to_drain`](CrawlService::run_to_drain) spins up the worker pool
//! and runs every in-flight session to the end of its virtual budget,
//! returning [`CompletedSession`]s in submission order.
//!
//! App models are shared: the first submission naming an app builds it
//! once via [`apps::build_shared`] and every later session for that app
//! clones the `Arc`. One hundred thousand in-flight PhpBB2 crawls hold
//! one PhpBB2 model.

use crate::error::SubmitError;
use crate::metrics::ServiceMetrics;
use crate::scheduler::{self, Checkpoint, DrainConfig, ScheduleOrder, SessionTask, StepLatencies};
use crate::tenant::{TenantLedger, TenantQuota};
use mak::framework::engine::{CrawlReport, EngineConfig};
use mak::framework::session::Session;
use mak::spec::build_crawler;
use mak_obs::sink::{SinkHandle, VecSink};
use mak_websim::apps;
use mak_websim::server::WebApp;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Service-assigned session identifier, unique for the service lifetime
/// and monotone in submission order.
pub type SessionId = u64;

/// Knobs for a [`CrawlService`]. `Default` reads the same environment
/// the bench harness uses (`MAK_THREADS`), so a service dropped into a
/// bench or CI job behaves like the rest of the workspace.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads for the drain loop (minimum 1).
    pub threads: usize,
    /// Virtual-clock steps one session runs per scheduling quantum.
    /// Larger slices amortize queue traffic; smaller slices interleave
    /// sessions more finely. Outcomes are identical either way.
    pub steps_per_slice: usize,
    /// Quota applied to tenants without an explicit
    /// [`set_quota`](CrawlService::set_quota).
    pub default_quota: TenantQuota,
    /// Queue discipline — an adversarial-testing knob; see
    /// [`ScheduleOrder`].
    pub order: ScheduleOrder,
    /// Record wall-clock per-step latency samples during drains (the
    /// load bench turns this on; it costs two `Instant` reads per slice).
    pub sample_latency: bool,
    /// Record a throughput [`Checkpoint`] every N session completions
    /// during drains (0 = off) — the load bench's time-series feed.
    pub checkpoint_every: u64,
    /// Fold session outcomes into the service's [`ServiceMetrics`]
    /// registry. On by default; the load bench turns it off to measure
    /// the cost of collection itself.
    pub collect_metrics: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let threads = std::env::var("MAK_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4));
        ServiceConfig {
            threads,
            steps_per_slice: 64,
            default_quota: TenantQuota::default(),
            order: ScheduleOrder::RoundRobin,
            sample_latency: false,
            checkpoint_every: 0,
            collect_metrics: true,
        }
    }
}

/// One session submission: who wants it, what to crawl, and how.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// The submitting tenant (quota accounting key).
    pub tenant: String,
    /// Application name, resolved through [`apps::build_shared`].
    pub app: String,
    /// Crawler name, resolved through [`build_crawler`].
    pub crawler: String,
    /// The session's RNG seed.
    pub seed: u64,
    /// Engine configuration (budget, cost model, fault plan, …).
    pub config: EngineConfig,
    /// Capture the session's event stream and return it as JSONL bytes
    /// on completion.
    pub record_events: bool,
    /// Also open hierarchical phase spans on the session's sink, so the
    /// captured stream carries `SpanClosed` events (Perfetto export,
    /// per-phase flight sections). Implies event capture: span records
    /// ride the same stream.
    pub record_spans: bool,
}

impl SessionSpec {
    /// A spec with the default [`EngineConfig`] and no event capture.
    pub fn new(
        tenant: impl Into<String>,
        app: impl Into<String>,
        crawler: impl Into<String>,
        seed: u64,
    ) -> Self {
        SessionSpec {
            tenant: tenant.into(),
            app: app.into(),
            crawler: crawler.into(),
            seed,
            config: EngineConfig::default(),
            record_events: false,
            record_spans: false,
        }
    }

    /// Replaces the engine configuration.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Requests the session's JSONL event stream alongside its report.
    pub fn record_events(mut self, record: bool) -> Self {
        self.record_events = record;
        self
    }

    /// Requests phase spans in the recorded stream (implies
    /// [`record_events`](Self::record_events)).
    pub fn record_spans(mut self, record: bool) -> Self {
        self.record_spans = record;
        self
    }
}

/// A drained session: its report plus service-side metadata.
#[derive(Debug)]
pub struct CompletedSession {
    /// The id [`submit`](CrawlService::submit) returned for this session.
    pub id: SessionId,
    /// The tenant that submitted it.
    pub tenant: String,
    /// The sealed crawl report — byte-identical to a standalone
    /// `run_crawl` of the same `(app, crawler, seed, config)`.
    pub report: CrawlReport,
    /// The session's event stream as JSONL bytes, when the spec asked
    /// for it — byte-identical to a standalone run writing through
    /// `JsonlSink`.
    pub events_jsonl: Option<Vec<u8>>,
    /// Virtual-clock steps the session ran.
    pub steps: u64,
    /// Scheduling quanta the session consumed.
    pub slices: u64,
}

/// The in-process crawl service. See the [module docs](self).
pub struct CrawlService {
    config: ServiceConfig,
    ledger: TenantLedger,
    /// App-model cache: one shared model per app name, built lazily on
    /// first submission. `BTreeMap` for deterministic iteration.
    models: BTreeMap<String, Arc<dyn WebApp>>,
    pending: Vec<SessionTask>,
    next_id: SessionId,
    aborted_total: u64,
    last_latencies: StepLatencies,
    last_checkpoints: Vec<Checkpoint>,
    metrics: ServiceMetrics,
}

impl CrawlService {
    /// An empty service; no worker threads run until a drain.
    pub fn new(config: ServiceConfig) -> Self {
        let ledger = TenantLedger::new(config.default_quota);
        let metrics = ServiceMetrics::new(config.collect_metrics);
        CrawlService {
            config,
            ledger,
            models: BTreeMap::new(),
            pending: Vec::new(),
            next_id: 0,
            aborted_total: 0,
            last_latencies: StepLatencies::default(),
            last_checkpoints: Vec::new(),
            metrics,
        }
    }

    /// Pins an explicit quota for `tenant`.
    pub fn set_quota(&mut self, tenant: &str, quota: TenantQuota) {
        self.ledger.set_quota(tenant, quota);
    }

    /// Admits and instantiates one session, returning its id.
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownApp`] / [`SubmitError::UnknownCrawler`] for
    /// names outside the registries (checked *before* quota, so a typo
    /// does not burn budget); [`SubmitError::QuotaExceeded`] /
    /// [`SubmitError::BudgetExhausted`] from the tenant ledger.
    pub fn submit(&mut self, spec: SessionSpec) -> Result<SessionId, SubmitError> {
        let (tenant, app, crawler) = (spec.tenant.clone(), spec.app.clone(), spec.crawler.clone());
        match self.admit(spec) {
            Ok(id) => {
                self.metrics.record_submitted(&tenant, &app, &crawler);
                Ok(id)
            }
            Err(err) => {
                self.metrics.record_rejection(&tenant, &err);
                Err(err)
            }
        }
    }

    fn admit(&mut self, spec: SessionSpec) -> Result<SessionId, SubmitError> {
        let model = match self.models.get(&spec.app) {
            Some(model) => model.clone(),
            None => {
                let model = apps::build_shared(&spec.app)
                    .ok_or_else(|| SubmitError::UnknownApp(spec.app.clone()))?;
                self.models.insert(spec.app.clone(), model.clone());
                model
            }
        };
        let crawler = build_crawler(&spec.crawler, spec.seed)
            .ok_or_else(|| SubmitError::UnknownCrawler(spec.crawler.clone()))?;
        self.ledger.admit(&spec.tenant)?;

        let (sink, events) = if spec.record_events || spec.record_spans {
            let (handle, cell) = SinkHandle::shared(VecSink::new());
            let handle = if spec.record_spans { handle.with_spans() } else { handle };
            (handle, Some(cell))
        } else {
            (SinkHandle::none(), None)
        };
        let session = Session::shared_with_sink(model, crawler, &spec.config, spec.seed, sink);
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push(SessionTask { id, tenant: spec.tenant, session, events, slices: 0 });
        Ok(id)
    }

    /// Sessions currently in flight (admitted, not yet drained).
    pub fn in_flight(&self) -> usize {
        self.ledger.total_in_flight()
    }

    /// Sessions currently in flight for one tenant.
    pub fn tenant_in_flight(&self, tenant: &str) -> usize {
        self.ledger.in_flight(tenant)
    }

    /// Sessions aborted (panicked mid-step) over the service lifetime.
    /// Stays zero for in-tree crawlers; the load bench asserts on it.
    pub fn aborted(&self) -> u64 {
        self.aborted_total
    }

    /// Latency samples from the most recent drain (empty unless
    /// [`ServiceConfig::sample_latency`] is set).
    pub fn last_latencies(&self) -> &StepLatencies {
        &self.last_latencies
    }

    /// Throughput checkpoints from the most recent drain (empty unless
    /// [`ServiceConfig::checkpoint_every`] is set). Wall-clock domain.
    pub fn last_checkpoints(&self) -> &[Checkpoint] {
        &self.last_checkpoints
    }

    /// The service's metrics: counters fold on every submit and drain
    /// (unless [`ServiceConfig::collect_metrics`] is off). The
    /// virtual-domain snapshot is deterministic; see [`ServiceMetrics`].
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Runs every in-flight session to the end of its virtual budget on
    /// the worker pool, releases their quota slots, folds outcomes into
    /// the metrics registry (in session-id order, so virtual-domain
    /// snapshots stay deterministic), and returns the completed sessions
    /// in submission (id) order.
    pub fn run_to_drain(&mut self) -> Vec<CompletedSession> {
        let tasks = std::mem::take(&mut self.pending);
        let mut outcome = scheduler::drain(
            tasks,
            DrainConfig {
                threads: self.config.threads,
                steps_per_slice: self.config.steps_per_slice,
                order: self.config.order,
                sample_latency: self.config.sample_latency,
                checkpoint_every: self.config.checkpoint_every,
            },
        );
        self.aborted_total += outcome.aborted;
        self.metrics.record_aborted(outcome.aborted);
        self.metrics.record_drain(
            outcome.wall_secs,
            outcome.steals,
            outcome.queue_peak,
            &outcome.latencies,
        );
        self.last_latencies = outcome.latencies;
        self.last_checkpoints = outcome.checkpoints;
        // Id order before folding: completion order is schedule-dependent,
        // the fold must not be.
        outcome.finished.sort_unstable_by_key(|t| t.id);
        let done: Vec<CompletedSession> = outcome
            .finished
            .into_iter()
            .map(|t| {
                self.ledger.release(&t.tenant);
                self.metrics.record_completed(&t.tenant, t.steps, &t.report);
                let events_jsonl = t.events.map(|cell| {
                    let sink = Arc::try_unwrap(cell)
                        .expect("session finished; no other handle survives")
                        .into_inner()
                        .unwrap_or_else(|p| p.into_inner());
                    let mut out = Vec::new();
                    for event in sink.events() {
                        let line = serde_json::to_string(event).expect("Event serializes");
                        out.extend_from_slice(line.as_bytes());
                        out.push(b'\n');
                    }
                    out
                });
                CompletedSession {
                    id: t.id,
                    tenant: t.tenant,
                    report: t.report,
                    events_jsonl,
                    steps: t.steps,
                    slices: t.slices,
                }
            })
            .collect();
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(seed: u64) -> SessionSpec {
        SessionSpec::new("t", "addressbook", "random", seed)
            .config(EngineConfig::with_budget_minutes(0.25))
    }

    #[test]
    fn unknown_names_are_typed_errors_and_cost_no_quota() {
        let mut service = CrawlService::new(ServiceConfig::default());
        service.set_quota("t", TenantQuota { max_concurrent: 8, max_total: Some(1) });
        let mut bad_app = quick(1);
        bad_app.app = "geocities".into();
        assert!(matches!(service.submit(bad_app), Err(SubmitError::UnknownApp(_))));
        let mut bad_crawler = quick(1);
        bad_crawler.crawler = "googlebot".into();
        assert!(matches!(service.submit(bad_crawler), Err(SubmitError::UnknownCrawler(_))));
        // Budget of one is still intact after the two rejections.
        service.submit(quick(1)).unwrap();
    }

    #[test]
    fn drain_returns_submission_order_and_zeroes_in_flight() {
        let mut service = CrawlService::new(ServiceConfig::default());
        let ids: Vec<_> = (0..6).map(|s| service.submit(quick(s)).unwrap()).collect();
        assert_eq!(service.in_flight(), 6);
        let done = service.run_to_drain();
        assert_eq!(done.iter().map(|c| c.id).collect::<Vec<_>>(), ids);
        assert_eq!(service.in_flight(), 0);
        assert_eq!(service.aborted(), 0);
        for c in &done {
            assert!(c.report.interactions > 0);
            assert!(c.slices > 0);
        }
    }

    #[test]
    fn one_model_allocation_serves_every_session_of_an_app() {
        let mut service = CrawlService::new(ServiceConfig::default());
        for seed in 0..3 {
            service.submit(quick(seed)).unwrap();
        }
        let model = service.models.get("addressbook").unwrap();
        // 3 sessions (one AppHost each) + the registry's own handle.
        assert_eq!(Arc::strong_count(model), 4);
    }
}
