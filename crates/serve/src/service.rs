//! The crawl service: admission, shared app models, and the drain loop.
//!
//! A [`CrawlService`] is a long-running, in-process session multiplexer.
//! [`submit`](CrawlService::submit) admits a [`SessionSpec`] against the
//! tenant ledger (typed [`SubmitError`] backpressure, never a panic),
//! instantiates the session immediately — so "in flight" means a live
//! [`Session`] state machine holding its browser, clock, and policy
//! state — and parks it on the scheduler's injector.
//! [`run_to_drain`](CrawlService::run_to_drain) spins up the worker pool
//! and runs every in-flight session to the end of its virtual budget,
//! returning [`CompletedSession`]s in submission order.
//!
//! App models are shared: the first submission naming an app builds it
//! once via [`apps::build_shared`] and every later session for that app
//! clones the `Arc`. One hundred thousand in-flight PhpBB2 crawls hold
//! one PhpBB2 model.

use crate::checkpoint::{CheckpointStats, CheckpointStore, LoadOutcome, StoredSession};
use crate::error::SubmitError;
use crate::metrics::ServiceMetrics;
use crate::scheduler::{
    self, Checkpoint, CheckpointHook, DrainConfig, ScheduleOrder, SessionTask, StepLatencies,
};
use crate::tenant::{TenantLedger, TenantQuota};
use mak::framework::engine::{CrawlReport, EngineConfig};
use mak::framework::session::Session;
use mak::spec::build_crawler;
use mak_obs::sink::{SinkHandle, VecSink};
use mak_websim::apps;
use mak_websim::server::WebApp;
use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

/// Service-assigned session identifier, unique for the service lifetime
/// and monotone in submission order.
pub type SessionId = u64;

/// Knobs for a [`CrawlService`]. `Default` reads the same environment
/// the bench harness uses (`MAK_THREADS`), so a service dropped into a
/// bench or CI job behaves like the rest of the workspace.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads for the drain loop (minimum 1).
    pub threads: usize,
    /// Virtual-clock steps one session runs per scheduling quantum.
    /// Larger slices amortize queue traffic; smaller slices interleave
    /// sessions more finely. Outcomes are identical either way.
    pub steps_per_slice: usize,
    /// Quota applied to tenants without an explicit
    /// [`set_quota`](CrawlService::set_quota).
    pub default_quota: TenantQuota,
    /// Queue discipline — an adversarial-testing knob; see
    /// [`ScheduleOrder`].
    pub order: ScheduleOrder,
    /// Record wall-clock per-step latency samples during drains (the
    /// load bench turns this on; it costs two `Instant` reads per slice).
    pub sample_latency: bool,
    /// Record a throughput [`Checkpoint`] every N session completions
    /// during drains (0 = off) — the load bench's time-series feed.
    pub checkpoint_every: u64,
    /// Fold session outcomes into the service's [`ServiceMetrics`]
    /// registry. On by default; the load bench turns it off to measure
    /// the cost of collection itself.
    pub collect_metrics: bool,
    /// Directory for durable session checkpoints (`None` = durability
    /// off). When set, sessions checkpoint every
    /// [`checkpoint_every_steps`](Self::checkpoint_every_steps) steps
    /// and on [`drain`](CrawlService::drain), and
    /// [`recover`](CrawlService::recover) re-admits parked sessions
    /// after a restart or crash.
    pub checkpoint_dir: Option<PathBuf>,
    /// Mid-run checkpoint cadence in virtual-clock steps (0 = only on
    /// explicit drain/eviction, never mid-run). Rounded up to slice
    /// boundaries: between steps is the only sound snapshot point.
    pub checkpoint_every_steps: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let threads = std::env::var("MAK_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4));
        ServiceConfig {
            threads,
            steps_per_slice: 64,
            default_quota: TenantQuota::default(),
            order: ScheduleOrder::RoundRobin,
            sample_latency: false,
            checkpoint_every: 0,
            collect_metrics: true,
            checkpoint_dir: None,
            checkpoint_every_steps: 256,
        }
    }
}

/// One session submission: who wants it, what to crawl, and how.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// The submitting tenant (quota accounting key).
    pub tenant: String,
    /// Application name, resolved through [`apps::build_shared`].
    pub app: String,
    /// Crawler name, resolved through [`build_crawler`].
    pub crawler: String,
    /// The session's RNG seed.
    pub seed: u64,
    /// Engine configuration (budget, cost model, fault plan, …).
    pub config: EngineConfig,
    /// Capture the session's event stream and return it as JSONL bytes
    /// on completion.
    pub record_events: bool,
    /// Also open hierarchical phase spans on the session's sink, so the
    /// captured stream carries `SpanClosed` events (Perfetto export,
    /// per-phase flight sections). Implies event capture: span records
    /// ride the same stream.
    pub record_spans: bool,
}

impl SessionSpec {
    /// A spec with the default [`EngineConfig`] and no event capture.
    pub fn new(
        tenant: impl Into<String>,
        app: impl Into<String>,
        crawler: impl Into<String>,
        seed: u64,
    ) -> Self {
        SessionSpec {
            tenant: tenant.into(),
            app: app.into(),
            crawler: crawler.into(),
            seed,
            config: EngineConfig::default(),
            record_events: false,
            record_spans: false,
        }
    }

    /// Replaces the engine configuration.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Requests the session's JSONL event stream alongside its report.
    pub fn record_events(mut self, record: bool) -> Self {
        self.record_events = record;
        self
    }

    /// Requests phase spans in the recorded stream (implies
    /// [`record_events`](Self::record_events)).
    pub fn record_spans(mut self, record: bool) -> Self {
        self.record_spans = record;
        self
    }
}

/// A drained session: its report plus service-side metadata.
#[derive(Debug)]
pub struct CompletedSession {
    /// The id [`submit`](CrawlService::submit) returned for this session.
    pub id: SessionId,
    /// The tenant that submitted it.
    pub tenant: String,
    /// The sealed crawl report — byte-identical to a standalone
    /// `run_crawl` of the same `(app, crawler, seed, config)`.
    pub report: CrawlReport,
    /// The session's event stream as JSONL bytes, when the spec asked
    /// for it — byte-identical to a standalone run writing through
    /// `JsonlSink`.
    pub events_jsonl: Option<Vec<u8>>,
    /// Virtual-clock steps the session ran.
    pub steps: u64,
    /// Scheduling quanta the session consumed.
    pub slices: u64,
}

/// The in-process crawl service. See the [module docs](self).
pub struct CrawlService {
    config: ServiceConfig,
    ledger: TenantLedger,
    /// App-model cache: one shared model per app name, built lazily on
    /// first submission. `BTreeMap` for deterministic iteration.
    models: BTreeMap<String, Arc<dyn WebApp>>,
    pending: Vec<SessionTask>,
    next_id: SessionId,
    aborted_total: u64,
    last_latencies: StepLatencies,
    last_checkpoints: Vec<Checkpoint>,
    metrics: ServiceMetrics,
    /// Durable checkpoint store (present iff `checkpoint_dir` is set).
    store: Option<Arc<CheckpointStore>>,
    /// Store counters already folded into `metrics` — the fold is by
    /// delta so counters stay monotone across drains and recoveries.
    folded_ckpt: CheckpointStats,
}

impl CrawlService {
    /// An empty service; no worker threads run until a drain.
    ///
    /// # Panics
    ///
    /// Panics if [`ServiceConfig::checkpoint_dir`] is set but cannot be
    /// created — silently running without durability would betray the
    /// operator who asked for it.
    pub fn new(config: ServiceConfig) -> Self {
        let ledger = TenantLedger::new(config.default_quota);
        let metrics = ServiceMetrics::new(config.collect_metrics);
        let store = config.checkpoint_dir.as_ref().map(|dir| {
            Arc::new(
                CheckpointStore::open(dir)
                    .unwrap_or_else(|e| panic!("checkpoint dir {}: {e}", dir.display())),
            )
        });
        CrawlService {
            config,
            ledger,
            models: BTreeMap::new(),
            pending: Vec::new(),
            next_id: 0,
            aborted_total: 0,
            last_latencies: StepLatencies::default(),
            last_checkpoints: Vec::new(),
            metrics,
            store,
            folded_ckpt: CheckpointStats::default(),
        }
    }

    /// Pins an explicit quota for `tenant`.
    pub fn set_quota(&mut self, tenant: &str, quota: TenantQuota) {
        self.ledger.set_quota(tenant, quota);
    }

    /// Admits and instantiates one session, returning its id.
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownApp`] / [`SubmitError::UnknownCrawler`] for
    /// names outside the registries (checked *before* quota, so a typo
    /// does not burn budget); [`SubmitError::QuotaExceeded`] /
    /// [`SubmitError::BudgetExhausted`] from the tenant ledger.
    pub fn submit(&mut self, spec: SessionSpec) -> Result<SessionId, SubmitError> {
        let (tenant, app, crawler) = (spec.tenant.clone(), spec.app.clone(), spec.crawler.clone());
        match self.admit(spec) {
            Ok(id) => {
                self.metrics.record_submitted(&tenant, &app, &crawler);
                Ok(id)
            }
            Err(err) => {
                self.metrics.record_rejection(&tenant, &err);
                Err(err)
            }
        }
    }

    fn admit(&mut self, spec: SessionSpec) -> Result<SessionId, SubmitError> {
        let model = match self.models.get(&spec.app) {
            Some(model) => model.clone(),
            None => {
                let model = apps::build_shared(&spec.app)
                    .ok_or_else(|| SubmitError::UnknownApp(spec.app.clone()))?;
                self.models.insert(spec.app.clone(), model.clone());
                model
            }
        };
        let crawler = build_crawler(&spec.crawler, spec.seed)
            .ok_or_else(|| SubmitError::UnknownCrawler(spec.crawler.clone()))?;
        let slice = self.config.steps_per_slice as u64;
        self.ledger.admit(&spec.tenant).map_err(|err| match err {
            // The ledger leaves the backoff hint blank; the service knows
            // its slice length — the soonest a neighbor can finish and
            // free a slot.
            SubmitError::QuotaExceeded { tenant, in_flight, limit, .. } => {
                SubmitError::QuotaExceeded {
                    tenant,
                    in_flight,
                    limit,
                    retry_after_steps: Some(slice),
                }
            }
            other => other,
        })?;

        let (sink, events) = if spec.record_events || spec.record_spans {
            let (handle, cell) = SinkHandle::shared(VecSink::new());
            let handle = if spec.record_spans { handle.with_spans() } else { handle };
            (handle, Some(cell))
        } else {
            (SinkHandle::none(), None)
        };
        let session = Session::shared_with_sink(model, crawler, &spec.config, spec.seed, sink);
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push(SessionTask {
            id,
            tenant: spec.tenant,
            app: spec.app,
            crawler: spec.crawler,
            session,
            events,
            record_events: spec.record_events,
            record_spans: spec.record_spans,
            slices: 0,
            last_ckpt_steps: 0,
        });
        // Admission-time checkpoint: a durable service records the
        // session *before* its first step, so a hard crash loses nothing
        // — a session killed inside its first cadence window simply
        // replays from step zero, bit-identically. Best-effort like the
        // cadence writes: a transient failure is counted, not fatal.
        if let Some(store) = &self.store {
            if let Ok(stored) = self.pending.last().expect("just pushed").to_stored() {
                let _ = store.save(&stored);
            }
        }
        Ok(id)
    }

    /// Sessions currently in flight (admitted, not yet drained).
    pub fn in_flight(&self) -> usize {
        self.ledger.total_in_flight()
    }

    /// Sessions currently in flight for one tenant.
    pub fn tenant_in_flight(&self, tenant: &str) -> usize {
        self.ledger.in_flight(tenant)
    }

    /// Sessions aborted (panicked mid-step) over the service lifetime.
    /// Stays zero for in-tree crawlers; the load bench asserts on it.
    pub fn aborted(&self) -> u64 {
        self.aborted_total
    }

    /// Latency samples from the most recent drain (empty unless
    /// [`ServiceConfig::sample_latency`] is set).
    pub fn last_latencies(&self) -> &StepLatencies {
        &self.last_latencies
    }

    /// Throughput checkpoints from the most recent drain (empty unless
    /// [`ServiceConfig::checkpoint_every`] is set). Wall-clock domain.
    pub fn last_checkpoints(&self) -> &[Checkpoint] {
        &self.last_checkpoints
    }

    /// The service's metrics: counters fold on every submit and drain
    /// (unless [`ServiceConfig::collect_metrics`] is off). The
    /// virtual-domain snapshot is deterministic; see [`ServiceMetrics`].
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Runs every in-flight session to the end of its virtual budget on
    /// the worker pool, releases their quota slots, folds outcomes into
    /// the metrics registry (in session-id order, so virtual-domain
    /// snapshots stay deterministic), and returns the completed sessions
    /// in submission (id) order.
    pub fn run_to_drain(&mut self) -> Vec<CompletedSession> {
        self.run_scheduler(None)
    }

    /// Like [`run_to_drain`](Self::run_to_drain), but stops dispatching
    /// once roughly `max_steps` virtual-clock steps have run across all
    /// sessions (each worker may overshoot by at most one slice).
    /// Sessions still mid-budget stay in flight — pending, quota held —
    /// and a later run continues them. This is the crash-simulation and
    /// incremental-drain mode; outcomes of sessions that do complete are
    /// identical to an unbounded drain.
    pub fn run_for_steps(&mut self, max_steps: u64) -> Vec<CompletedSession> {
        self.run_scheduler(Some(max_steps))
    }

    fn run_scheduler(&mut self, step_limit: Option<u64>) -> Vec<CompletedSession> {
        let tasks = std::mem::take(&mut self.pending);
        let durable = self.store.as_ref().map(|store| CheckpointHook {
            store: store.clone(),
            every_steps: self.config.checkpoint_every_steps,
        });
        let mut outcome = scheduler::drain(
            tasks,
            DrainConfig {
                threads: self.config.threads,
                steps_per_slice: self.config.steps_per_slice,
                order: self.config.order,
                sample_latency: self.config.sample_latency,
                checkpoint_every: self.config.checkpoint_every,
                durable,
                step_limit,
            },
        );
        // Survivors of a bounded run stay in flight, in id order so the
        // next run's injector sees a deterministic queue.
        outcome.unfinished.sort_unstable_by_key(|t| t.id);
        self.pending = std::mem::take(&mut outcome.unfinished);
        self.aborted_total += outcome.aborted;
        self.metrics.record_aborted(outcome.aborted);
        self.metrics.record_drain(
            outcome.wall_secs,
            outcome.steals,
            outcome.queue_peak,
            &outcome.latencies,
        );
        self.last_latencies = outcome.latencies;
        self.last_checkpoints = outcome.checkpoints;
        // Id order before folding: completion order is schedule-dependent,
        // the fold must not be.
        outcome.finished.sort_unstable_by_key(|t| t.id);
        let done: Vec<CompletedSession> = outcome
            .finished
            .into_iter()
            .map(|t| {
                self.ledger.release(&t.tenant);
                self.metrics.record_completed(&t.tenant, t.steps, &t.report);
                let events_jsonl = t.events.map(|cell| {
                    let sink = Arc::try_unwrap(cell)
                        .expect("session finished; no other handle survives")
                        .into_inner()
                        .unwrap_or_else(|p| p.into_inner());
                    let mut out = Vec::new();
                    for event in sink.events() {
                        let line = serde_json::to_string(event).expect("Event serializes");
                        out.extend_from_slice(line.as_bytes());
                        out.push(b'\n');
                    }
                    out
                });
                CompletedSession {
                    id: t.id,
                    tenant: t.tenant,
                    report: t.report,
                    events_jsonl,
                    steps: t.steps,
                    slices: t.slices,
                }
            })
            .collect();
        self.fold_checkpoint_stats();
        done
    }

    /// Folds the checkpoint store's counter deltas into the metrics
    /// registry. Safe to call repeatedly; each delta folds once.
    fn fold_checkpoint_stats(&mut self) {
        let Some(store) = &self.store else { return };
        let now = store.stats();
        let prev = std::mem::replace(&mut self.folded_ckpt, now);
        self.metrics.record_checkpoints(CheckpointStats {
            writes: now.writes - prev.writes,
            bytes: now.bytes - prev.bytes,
            restores: now.restores - prev.restores,
            corrupt_quarantined: now.corrupt_quarantined - prev.corrupt_quarantined,
            write_failures: now.write_failures - prev.write_failures,
        });
    }

    /// Checkpoints and parks every in-flight session: each one's full
    /// mid-crawl state goes durably to the checkpoint directory, its
    /// quota slot is released, and the service's pending queue empties.
    /// The graceful half of crash recovery — a later
    /// [`recover`](Self::recover) (same process or the next one) picks
    /// the sessions back up bit-identically.
    ///
    /// Returns the number of sessions parked.
    ///
    /// # Errors
    ///
    /// Fails if no [`checkpoint_dir`](ServiceConfig::checkpoint_dir) is
    /// configured, or on serialization/filesystem failures — in which
    /// case already-parked sessions are on disk and the failing session
    /// (plus the rest) remain in flight, so nothing is lost either way.
    pub fn drain(&mut self) -> io::Result<u64> {
        let Some(store) = self.store.clone() else {
            return Err(io::Error::other("drain requires ServiceConfig::checkpoint_dir"));
        };
        let mut parked = 0usize;
        let result: io::Result<()> = self.pending.iter().try_for_each(|task| {
            let stored = task.to_stored().map_err(io::Error::other)?;
            store.save(&stored)?;
            parked += 1;
            Ok(())
        });
        // The successfully parked prefix leaves the service either way;
        // on error the failing session and everything after it stay in
        // flight, still runnable.
        for task in self.pending.drain(..parked) {
            self.ledger.release(&task.tenant);
        }
        self.fold_checkpoint_stats();
        result.map(|()| parked as u64)
    }

    /// Re-admits every parked session from the checkpoint directory:
    /// each checkpoint is CRC-verified (corrupt files are quarantined
    /// and counted, never trusted, never fatal), its tenant re-admitted
    /// under the *current* quota (rejections leave the checkpoint on
    /// disk for a later attempt), and the session restored to the exact
    /// mid-crawl state it parked with — its remaining run is
    /// bit-identical to never having stopped.
    ///
    /// # Errors
    ///
    /// Fails if no [`checkpoint_dir`](ServiceConfig::checkpoint_dir) is
    /// configured, or on directory-listing/file-read failures.
    pub fn recover(&mut self) -> io::Result<RecoveryReport> {
        let Some(store) = self.store.clone() else {
            return Err(io::Error::other("recover requires ServiceConfig::checkpoint_dir"));
        };
        let mut report = RecoveryReport::default();
        // A restored session's file stays on disk until its next cadence
        // write or completion (small crash window beats a durability
        // gap), so a repeat recover() must skip what is already live.
        let live: std::collections::BTreeSet<SessionId> =
            self.pending.iter().map(|t| t.id).collect();
        for outcome in store.load_all()? {
            let stored = match outcome {
                LoadOutcome::Loaded(stored) if live.contains(&stored.id) => continue,
                LoadOutcome::Loaded(stored) => *stored,
                LoadOutcome::Quarantined { file, reason } => {
                    report.corrupt_quarantined += 1;
                    report.quarantined.push((file, reason));
                    continue;
                }
            };
            match self.readmit(stored) {
                Ok(id) => {
                    store.note_restored();
                    report.restored += 1;
                    self.next_id = self.next_id.max(id + 1);
                }
                Err(ReadmitError::Rejected(id, err)) => report.rejected.push((id, err)),
                Err(ReadmitError::Invalid(id, reason)) => {
                    // CRC-clean but semantically unusable (e.g. an app
                    // model that left the registry): quarantine like any
                    // other corruption.
                    store.quarantine(id, &reason);
                    report.corrupt_quarantined += 1;
                    report.quarantined.push((format!("session {id}"), reason));
                }
            }
        }
        self.fold_checkpoint_stats();
        Ok(report)
    }

    fn readmit(&mut self, stored: StoredSession) -> Result<SessionId, ReadmitError> {
        let id = stored.id;
        let model = match self.models.get(&stored.app) {
            Some(model) => model.clone(),
            None => match apps::build_shared(&stored.app) {
                Some(model) => {
                    self.models.insert(stored.app.clone(), model.clone());
                    model
                }
                None => {
                    return Err(ReadmitError::Invalid(id, format!("unknown app `{}`", stored.app)))
                }
            },
        };
        let Some(crawler) = build_crawler(&stored.crawler, stored.checkpoint.seed) else {
            return Err(ReadmitError::Invalid(id, format!("unknown crawler `{}`", stored.crawler)));
        };
        if let Err(err) = self.ledger.admit(&stored.tenant) {
            return Err(ReadmitError::Rejected(id, err));
        }
        let (sink, events) = if stored.record_events || stored.record_spans {
            // A fresh buffer: the recovered stream opens with
            // `SessionResumed` and carries exactly the uninterrupted
            // run's suffix from there.
            let (handle, cell) = SinkHandle::shared(VecSink::new());
            (handle, Some(cell))
        } else {
            (SinkHandle::none(), None)
        };
        let session = match Session::restore(model, crawler, &stored.checkpoint, sink) {
            Ok(session) => session,
            Err(err) => {
                self.ledger.release(&stored.tenant);
                return Err(ReadmitError::Invalid(id, err.to_string()));
            }
        };
        self.pending.push(SessionTask {
            id,
            tenant: stored.tenant,
            app: stored.app,
            crawler: stored.crawler,
            last_ckpt_steps: session.steps_taken(),
            session,
            events,
            record_events: stored.record_events,
            record_spans: stored.record_spans,
            slices: 0,
        });
        Ok(id)
    }
}

enum ReadmitError {
    /// The tenant's current quota refused the session; the checkpoint
    /// stays on disk.
    Rejected(SessionId, SubmitError),
    /// The checkpoint verified but cannot be rebuilt; quarantined.
    Invalid(SessionId, String),
}

/// What [`CrawlService::recover`] found on disk.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Sessions restored and re-admitted.
    pub restored: u64,
    /// Files quarantined (CRC/header/payload corruption, or verified
    /// checkpoints that no longer rebuild).
    pub corrupt_quarantined: u64,
    /// `(file or session, reason)` per quarantined entry.
    pub quarantined: Vec<(String, String)>,
    /// Sessions whose tenants' current quotas refused re-admission;
    /// their checkpoints remain on disk.
    pub rejected: Vec<(SessionId, SubmitError)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(seed: u64) -> SessionSpec {
        SessionSpec::new("t", "addressbook", "random", seed)
            .config(EngineConfig::with_budget_minutes(0.25))
    }

    #[test]
    fn unknown_names_are_typed_errors_and_cost_no_quota() {
        let mut service = CrawlService::new(ServiceConfig::default());
        service.set_quota("t", TenantQuota { max_concurrent: 8, max_total: Some(1) });
        let mut bad_app = quick(1);
        bad_app.app = "geocities".into();
        assert!(matches!(service.submit(bad_app), Err(SubmitError::UnknownApp(_))));
        let mut bad_crawler = quick(1);
        bad_crawler.crawler = "googlebot".into();
        assert!(matches!(service.submit(bad_crawler), Err(SubmitError::UnknownCrawler(_))));
        // Budget of one is still intact after the two rejections.
        service.submit(quick(1)).unwrap();
    }

    #[test]
    fn drain_returns_submission_order_and_zeroes_in_flight() {
        let mut service = CrawlService::new(ServiceConfig::default());
        let ids: Vec<_> = (0..6).map(|s| service.submit(quick(s)).unwrap()).collect();
        assert_eq!(service.in_flight(), 6);
        let done = service.run_to_drain();
        assert_eq!(done.iter().map(|c| c.id).collect::<Vec<_>>(), ids);
        assert_eq!(service.in_flight(), 0);
        assert_eq!(service.aborted(), 0);
        for c in &done {
            assert!(c.report.interactions > 0);
            assert!(c.slices > 0);
        }
    }

    #[test]
    fn one_model_allocation_serves_every_session_of_an_app() {
        let mut service = CrawlService::new(ServiceConfig::default());
        for seed in 0..3 {
            service.submit(quick(seed)).unwrap();
        }
        let model = service.models.get("addressbook").unwrap();
        // 3 sessions (one AppHost each) + the registry's own handle.
        assert_eq!(Arc::strong_count(model), 4);
    }
}
