//! The work-stealing scheduler: batches virtual-clock steps across
//! thousands of concurrent sessions.
//!
//! Layout: one global injector queue (everything submitted lands there)
//! plus one local deque per worker. A worker serves its local deque
//! first, refills from the injector in batches when empty, and steals
//! half of a sibling's deque as a last resort. One scheduling quantum
//! ("slice") runs up to [`steps_per_slice`] virtual-clock steps of one
//! session — batching amortizes queue traffic over many steps while
//! keeping interleaving fine-grained enough that a hundred thousand
//! sessions all make progress.
//!
//! Because every session is an independent
//! [`Session`](mak::framework::session::Session) state machine, the
//! schedule — worker count, queue discipline, steal victims — is
//! *unobservable* in session outcomes. [`ScheduleOrder`] exists to prove
//! exactly that: the determinism suite replays identical workloads under
//! round-robin, LIFO, and seeded-random disciplines and asserts
//! byte-identical reports and event streams.
//!
//! A panicking session (impossible for in-tree crawlers, but the
//! scheduler must not trust its tenants) is caught, counted as aborted,
//! and dropped; the worker and every other session continue.
//!
//! [`steps_per_slice`]: crate::ServiceConfig::steps_per_slice

use mak::framework::engine::CrawlReport;
use mak::framework::session::Session;
use mak_obs::sink::VecSink;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The queue discipline workers use on their local deques and the
/// injector. Session outcomes are identical under every variant — the
/// order only decides *when* each session's steps run, never what they
/// compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleOrder {
    /// Serve the oldest runnable session first (fair round-robin).
    RoundRobin,
    /// Serve the newest runnable session first (adversarially unfair:
    /// early sessions starve until late ones finish).
    Lifo,
    /// Serve a pseudo-random runnable session, from a seeded stream
    /// (adversarial shuffling; deterministic per seed).
    Random(u64),
}

/// One schedulable unit: a session plus its service-side bookkeeping.
pub(crate) struct SessionTask {
    pub id: u64,
    pub tenant: String,
    pub session: Session<'static>,
    /// Buffer behind the session's event sink when the submission asked
    /// for its JSONL stream.
    pub events: Option<Arc<Mutex<VecSink>>>,
    /// Scheduling quanta this session has consumed so far.
    pub slices: u64,
}

/// A drained session: the task's bookkeeping plus its sealed report.
pub(crate) struct FinishedTask {
    pub id: u64,
    pub tenant: String,
    pub report: CrawlReport,
    pub events: Option<Arc<Mutex<VecSink>>>,
    pub slices: u64,
    pub steps: u64,
}

/// Wall-clock step-latency samples, one per scheduling slice, weighted
/// by the number of steps the slice ran. Collected only when the service
/// asks for latency sampling (the load bench does; tests do not).
#[derive(Debug, Default)]
pub struct StepLatencies {
    /// `(nanoseconds per step, steps in the slice)` pairs.
    samples: Vec<(u64, u32)>,
}

impl StepLatencies {
    /// Total steps across all samples.
    pub fn total_steps(&self) -> u64 {
        self.samples.iter().map(|&(_, n)| n as u64).sum()
    }

    /// The `q`-quantile (0.0–1.0) of per-step latency in nanoseconds,
    /// weighted by steps, or `None` without samples.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let total: u64 = sorted.iter().map(|&(_, n)| n as u64).sum();
        let target = (q.clamp(0.0, 1.0) * total as f64) as u64;
        let mut seen = 0u64;
        for &(ns, n) in &sorted {
            seen += n as u64;
            if seen >= target {
                return Some(ns);
            }
        }
        sorted.last().map(|&(ns, _)| ns)
    }

    fn merge(&mut self, other: StepLatencies) {
        self.samples.extend(other.samples);
    }
}

/// Everything the worker pool shares.
struct Pool {
    injector: Mutex<VecDeque<SessionTask>>,
    locals: Vec<Mutex<VecDeque<SessionTask>>>,
    done: Mutex<Vec<FinishedTask>>,
    /// Tasks not yet finished or aborted — the termination condition.
    remaining: AtomicUsize,
    aborted: AtomicU64,
    steps_per_slice: usize,
    order: ScheduleOrder,
    sample_latency: bool,
}

/// What `drain` hands back: finished sessions (submission order is NOT
/// preserved — callers key by id), abort count, and latency samples.
pub(crate) struct DrainOutcome {
    pub finished: Vec<FinishedTask>,
    pub aborted: u64,
    pub latencies: StepLatencies,
}

/// Runs every task to completion across `threads` workers.
pub(crate) fn drain(
    tasks: Vec<SessionTask>,
    threads: usize,
    steps_per_slice: usize,
    order: ScheduleOrder,
    sample_latency: bool,
) -> DrainOutcome {
    let threads = threads.max(1);
    let total = tasks.len();
    let pool = Pool {
        injector: Mutex::new(tasks.into()),
        locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
        done: Mutex::new(Vec::with_capacity(total)),
        remaining: AtomicUsize::new(total),
        aborted: AtomicU64::new(0),
        steps_per_slice: steps_per_slice.max(1),
        order,
        sample_latency,
    };
    let mut latencies = StepLatencies::default();
    {
        let pool = &pool;
        std::thread::scope(|scope| {
            let handles: Vec<_> =
                (0..threads).map(|me| scope.spawn(move || worker(pool, me))).collect();
            for handle in handles {
                latencies.merge(handle.join().expect("scheduler worker panicked"));
            }
        });
    }
    DrainOutcome {
        finished: pool.done.into_inner().unwrap_or_else(|p| p.into_inner()),
        aborted: pool.aborted.into_inner(),
        latencies,
    }
}

fn worker(pool: &Pool, me: usize) -> StepLatencies {
    let mut rng = match pool.order {
        // Distinct streams per worker so two workers never mirror each
        // other's choices; any fixed derivation works, determinism of
        // session outcomes does not depend on it.
        ScheduleOrder::Random(seed) => {
            Some(StdRng::seed_from_u64(seed ^ (me as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        }
        _ => None,
    };
    let mut latencies = StepLatencies::default();
    loop {
        let Some(task) = next_task(pool, me, &mut rng) else {
            if pool.remaining.load(Ordering::Acquire) == 0 {
                break;
            }
            // Someone else holds the remaining sessions inside their
            // current slice; let them run.
            std::thread::yield_now();
            continue;
        };
        run_slice(pool, me, task, &mut latencies);
    }
    latencies
}

/// Pops the next task: local deque first, then an injector batch, then
/// stealing half of the fullest sibling deque.
fn next_task(pool: &Pool, me: usize, rng: &mut Option<StdRng>) -> Option<SessionTask> {
    if let Some(task) = pop_ordered(&mut pool.locals[me].lock().unwrap(), pool.order, rng) {
        return Some(task);
    }
    {
        let mut injector = pool.injector.lock().unwrap();
        if !injector.is_empty() {
            // Grab a batch proportional to our share of the backlog so a
            // hundred thousand submissions do not serialize on this lock.
            let batch = (injector.len() / pool.locals.len()).clamp(1, 4096);
            let mut local = pool.locals[me].lock().unwrap();
            for _ in 0..batch {
                match injector.pop_front() {
                    Some(task) => local.push_back(task),
                    None => break,
                }
            }
            drop(injector);
            return pop_ordered(&mut local, pool.order, rng);
        }
    }
    // Steal half of the first non-empty sibling, scanning from our right
    // neighbor so thieves spread out instead of mobbing worker 0.
    let n = pool.locals.len();
    for offset in 1..n {
        let victim = (me + offset) % n;
        let mut their = pool.locals[victim].lock().unwrap();
        let len = their.len();
        if len == 0 {
            continue;
        }
        let take = len.div_ceil(2);
        let mut local = pool.locals[me].lock().unwrap();
        for _ in 0..take {
            if let Some(task) = their.pop_front() {
                local.push_back(task);
            }
        }
        drop(their);
        return pop_ordered(&mut local, pool.order, rng);
    }
    None
}

fn pop_ordered(
    queue: &mut VecDeque<SessionTask>,
    order: ScheduleOrder,
    rng: &mut Option<StdRng>,
) -> Option<SessionTask> {
    match order {
        ScheduleOrder::RoundRobin => queue.pop_front(),
        ScheduleOrder::Lifo => queue.pop_back(),
        ScheduleOrder::Random(_) => {
            if queue.is_empty() {
                None
            } else {
                let idx = rng.as_mut().expect("random order has an rng").gen_range(0..queue.len());
                queue.swap_remove_back(idx)
            }
        }
    }
}

/// Runs one scheduling quantum of `task`: up to `steps_per_slice` steps,
/// then either completion (report sealed, counters settled) or requeue
/// on our local deque.
fn run_slice(pool: &Pool, me: usize, mut task: SessionTask, latencies: &mut StepLatencies) {
    let started = pool.sample_latency.then(Instant::now);
    let steps_before = task.session.steps_taken();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        for _ in 0..pool.steps_per_slice {
            if !task.session.step().is_running() {
                break;
            }
        }
        task
    }));
    let mut task = match outcome {
        Ok(task) => task,
        Err(_) => {
            // The session panicked mid-step. Count it, drop it, move on:
            // one hostile session must never wedge the scheduler or its
            // neighbors.
            pool.aborted.fetch_add(1, Ordering::Relaxed);
            pool.remaining.fetch_sub(1, Ordering::AcqRel);
            return;
        }
    };
    task.slices += 1;
    if let Some(started) = started {
        let ran = task.session.steps_taken() - steps_before;
        if let Some(ns_per_step) = (started.elapsed().as_nanos() as u64).checked_div(ran) {
            latencies.samples.push((ns_per_step, ran.min(u32::MAX as u64) as u32));
        }
    }
    if task.session.is_finished() {
        let steps = task.session.steps_taken();
        let SessionTask { id, tenant, session, events, slices } = task;
        let report = session.finish();
        pool.done.lock().unwrap_or_else(|p| p.into_inner()).push(FinishedTask {
            id,
            tenant,
            report,
            events,
            slices,
            steps,
        });
        pool.remaining.fetch_sub(1, Ordering::AcqRel);
    } else {
        pool.locals[me].lock().unwrap().push_back(task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_quantiles_interpolate_over_steps() {
        let lat = StepLatencies { samples: vec![(100, 90), (1_000, 10)] };
        assert_eq!(lat.total_steps(), 100);
        assert_eq!(lat.quantile_ns(0.5), Some(100));
        assert_eq!(lat.quantile_ns(0.99), Some(1_000));
        assert_eq!(StepLatencies::default().quantile_ns(0.5), None);
    }
}
