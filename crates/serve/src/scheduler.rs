//! The work-stealing scheduler: batches virtual-clock steps across
//! thousands of concurrent sessions.
//!
//! Layout: one global injector queue (everything submitted lands there)
//! plus one local deque per worker. A worker serves its local deque
//! first, refills from the injector in batches when empty, and steals
//! half of a sibling's deque as a last resort. One scheduling quantum
//! ("slice") runs up to [`steps_per_slice`] virtual-clock steps of one
//! session — batching amortizes queue traffic over many steps while
//! keeping interleaving fine-grained enough that a hundred thousand
//! sessions all make progress.
//!
//! Because every session is an independent
//! [`Session`](mak::framework::session::Session) state machine, the
//! schedule — worker count, queue discipline, steal victims — is
//! *unobservable* in session outcomes. [`ScheduleOrder`] exists to prove
//! exactly that: the determinism suite replays identical workloads under
//! round-robin, LIFO, and seeded-random disciplines and asserts
//! byte-identical reports and event streams.
//!
//! A panicking session (impossible for in-tree crawlers, but the
//! scheduler must not trust its tenants) is caught, counted as aborted,
//! and dropped; the worker and every other session continue.
//!
//! [`steps_per_slice`]: crate::ServiceConfig::steps_per_slice

use crate::checkpoint::{CheckpointStore, StoredSession};
use mak::framework::engine::CrawlReport;
use mak::framework::session::Session;
use mak_obs::sink::VecSink;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The queue discipline workers use on their local deques and the
/// injector. Session outcomes are identical under every variant — the
/// order only decides *when* each session's steps run, never what they
/// compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleOrder {
    /// Serve the oldest runnable session first (fair round-robin).
    RoundRobin,
    /// Serve the newest runnable session first (adversarially unfair:
    /// early sessions starve until late ones finish).
    Lifo,
    /// Serve a pseudo-random runnable session, from a seeded stream
    /// (adversarial shuffling; deterministic per seed).
    Random(u64),
}

/// One schedulable unit: a session plus its service-side bookkeeping.
pub(crate) struct SessionTask {
    pub id: u64,
    pub tenant: String,
    /// The submission's registry names, carried for checkpoint metadata
    /// (a parked session must record what to rebuild from).
    pub app: String,
    pub crawler: String,
    pub session: Session<'static>,
    /// Buffer behind the session's event sink when the submission asked
    /// for its JSONL stream.
    pub events: Option<Arc<Mutex<VecSink>>>,
    pub record_events: bool,
    pub record_spans: bool,
    /// Scheduling quanta this session has consumed so far.
    pub slices: u64,
    /// `steps_taken` at the last durable checkpoint — drives the
    /// every-N-steps cadence.
    pub last_ckpt_steps: u64,
}

impl SessionTask {
    /// The task as the checkpoint store persists it.
    pub(crate) fn to_stored(&self) -> Result<StoredSession, serde::Error> {
        Ok(StoredSession {
            id: self.id,
            tenant: self.tenant.clone(),
            app: self.app.clone(),
            crawler: self.crawler.clone(),
            record_events: self.record_events,
            record_spans: self.record_spans,
            checkpoint: self.session.snapshot()?,
        })
    }
}

/// Durable-checkpoint knobs for one drain: where to write and how often.
#[derive(Clone)]
pub(crate) struct CheckpointHook {
    pub store: Arc<CheckpointStore>,
    /// Write a session's checkpoint once it has run this many steps past
    /// its previous one (0 = only on drain/eviction, never mid-run).
    pub every_steps: u64,
}

/// A drained session: the task's bookkeeping plus its sealed report.
pub(crate) struct FinishedTask {
    pub id: u64,
    pub tenant: String,
    pub report: CrawlReport,
    pub events: Option<Arc<Mutex<VecSink>>>,
    pub slices: u64,
    pub steps: u64,
}

/// Wall-clock step-latency samples, one per scheduling slice, weighted
/// by the number of steps the slice ran. Collected only when the service
/// asks for latency sampling (the load bench does; tests do not).
#[derive(Debug, Default)]
pub struct StepLatencies {
    /// `(nanoseconds per step, steps in the slice)` pairs.
    samples: Vec<(u64, u32)>,
    /// Wall nanoseconds per successful dispatch — the time `next_task`
    /// spent in queue locks, injector batching, and stealing before it
    /// handed a session to the worker. Idle polls (no task found) are
    /// not recorded.
    dispatch: Vec<u64>,
}

impl StepLatencies {
    /// Total steps across all samples (saturating: a pathological sample
    /// set cannot wrap the sum).
    pub fn total_steps(&self) -> u64 {
        self.samples.iter().fold(0u64, |acc, &(_, n)| acc.saturating_add(n as u64))
    }

    /// The `q`-quantile (0.0–1.0, clamped) of per-step latency in
    /// nanoseconds, weighted by steps. `None` when there are no samples
    /// with positive weight: a quantile of nothing is not zero, and
    /// callers (the load bench, the SLO gate) must treat the two cases
    /// differently. Zero-weight samples carry no steps and are ignored.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        let mut sorted: Vec<(u64, u32)> =
            self.samples.iter().copied().filter(|&(_, n)| n > 0).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_unstable();
        let total = self.total_steps();
        // `as u64` saturates on overflow/NaN in Rust, and the `.min`
        // keeps a rounded-up target from walking past the end.
        let target = ((q.clamp(0.0, 1.0) * total as f64) as u64).min(total);
        let mut seen = 0u64;
        for &(ns, n) in &sorted {
            seen = seen.saturating_add(n as u64);
            if seen >= target {
                return Some(ns);
            }
        }
        sorted.last().map(|&(ns, _)| ns)
    }

    /// All samples as `(nanoseconds per step, steps)` pairs — feed for
    /// the wall-domain latency histogram.
    pub fn samples(&self) -> &[(u64, u32)] {
        &self.samples
    }

    /// Dispatch-path samples, wall nanoseconds per acquired task — feed
    /// for the wall-domain `SchedulerDispatch` histogram.
    pub fn dispatch_samples(&self) -> &[u64] {
        &self.dispatch
    }

    fn merge(&mut self, other: StepLatencies) {
        self.samples.extend(other.samples);
        self.dispatch.extend(other.dispatch);
    }
}

/// One point of the drain progress time-series, recorded every
/// [`checkpoint_every`](crate::ServiceConfig::checkpoint_every) session
/// completions. Wall-clock domain: the *order* sessions finish in is
/// schedule-dependent, so checkpoints describe throughput, never
/// outcomes.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Checkpoint {
    /// Seconds since the drain started.
    pub wall_secs: f64,
    /// Sessions completed so far.
    pub sessions_done: u64,
    /// Virtual-clock steps executed so far (across all sessions).
    pub steps_done: u64,
}

/// Everything the worker pool shares.
struct Pool {
    injector: Mutex<VecDeque<SessionTask>>,
    locals: Vec<Mutex<VecDeque<SessionTask>>>,
    done: Mutex<Vec<FinishedTask>>,
    /// Tasks not yet finished or aborted — the termination condition.
    remaining: AtomicUsize,
    aborted: AtomicU64,
    /// Steal operations (a worker taking from a sibling's deque).
    steals: AtomicU64,
    /// High-water mark of observed queue depth (injector or a victim
    /// deque at steal time) — a contention signal, not an exact census.
    queue_peak: AtomicU64,
    /// Sessions completed so far; drives checkpointing.
    completed: AtomicU64,
    /// Virtual-clock steps executed so far, across all sessions.
    steps_done: AtomicU64,
    /// Record a [`Checkpoint`] every N completions (0 = off).
    checkpoint_every: u64,
    checkpoints: Mutex<Vec<Checkpoint>>,
    started: Instant,
    steps_per_slice: usize,
    order: ScheduleOrder,
    sample_latency: bool,
    /// Durable checkpointing at cadence, when configured.
    checkpoint: Option<CheckpointHook>,
    /// Stop dispatching once this many total steps have run — the crash/
    /// partial-drain mode. Unfinished tasks are handed back to the
    /// caller.
    step_limit: Option<u64>,
}

impl Pool {
    fn note_depth(&self, depth: usize) {
        self.queue_peak.fetch_max(depth as u64, Ordering::Relaxed);
    }
}

/// Scheduler knobs for one [`drain`] call.
pub(crate) struct DrainConfig {
    pub threads: usize,
    pub steps_per_slice: usize,
    pub order: ScheduleOrder,
    pub sample_latency: bool,
    pub checkpoint_every: u64,
    /// Durable-checkpoint store + cadence (None = durability off).
    pub durable: Option<CheckpointHook>,
    /// Total-step budget for this drain call (None = run to completion).
    pub step_limit: Option<u64>,
}

/// What `drain` hands back: finished sessions (submission order is NOT
/// preserved — callers key by id), abort count, latency samples, and
/// wall-clock scheduler telemetry.
pub(crate) struct DrainOutcome {
    pub finished: Vec<FinishedTask>,
    /// Tasks still mid-budget when a `step_limit` stopped the drain
    /// (always empty for unbounded drains). Order is schedule-dependent;
    /// callers sort by id.
    pub unfinished: Vec<SessionTask>,
    pub aborted: u64,
    pub latencies: StepLatencies,
    pub wall_secs: f64,
    pub steals: u64,
    pub queue_peak: u64,
    pub checkpoints: Vec<Checkpoint>,
}

/// Runs every task to completion across `config.threads` workers.
pub(crate) fn drain(tasks: Vec<SessionTask>, config: DrainConfig) -> DrainOutcome {
    let threads = config.threads.max(1);
    let total = tasks.len();
    let pool = Pool {
        injector: Mutex::new(tasks.into()),
        locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
        done: Mutex::new(Vec::with_capacity(total)),
        remaining: AtomicUsize::new(total),
        aborted: AtomicU64::new(0),
        steals: AtomicU64::new(0),
        queue_peak: AtomicU64::new(total as u64),
        completed: AtomicU64::new(0),
        steps_done: AtomicU64::new(0),
        checkpoint_every: config.checkpoint_every,
        checkpoints: Mutex::new(Vec::new()),
        started: Instant::now(),
        steps_per_slice: config.steps_per_slice.max(1),
        order: config.order,
        sample_latency: config.sample_latency,
        checkpoint: config.durable,
        step_limit: config.step_limit,
    };
    let mut latencies = StepLatencies::default();
    {
        let pool = &pool;
        std::thread::scope(|scope| {
            let handles: Vec<_> =
                (0..threads).map(|me| scope.spawn(move || worker(pool, me))).collect();
            for handle in handles {
                latencies.merge(handle.join().expect("scheduler worker panicked"));
            }
        });
    }
    // Tasks stranded by a step limit: everything still queued.
    let mut unfinished: Vec<SessionTask> =
        pool.injector.into_inner().unwrap_or_else(|p| p.into_inner()).into();
    for local in pool.locals {
        unfinished.extend(local.into_inner().unwrap_or_else(|p| p.into_inner()));
    }
    DrainOutcome {
        finished: pool.done.into_inner().unwrap_or_else(|p| p.into_inner()),
        unfinished,
        aborted: pool.aborted.into_inner(),
        latencies,
        wall_secs: pool.started.elapsed().as_secs_f64(),
        steals: pool.steals.into_inner(),
        queue_peak: pool.queue_peak.into_inner(),
        checkpoints: pool.checkpoints.into_inner().unwrap_or_else(|p| p.into_inner()),
    }
}

fn worker(pool: &Pool, me: usize) -> StepLatencies {
    let mut rng = match pool.order {
        // Distinct streams per worker so two workers never mirror each
        // other's choices; any fixed derivation works, determinism of
        // session outcomes does not depend on it.
        ScheduleOrder::Random(seed) => {
            Some(StdRng::seed_from_u64(seed ^ (me as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        }
        _ => None,
    };
    let mut latencies = StepLatencies::default();
    loop {
        // Crash/partial-drain mode: stop dispatching once the pool's
        // step budget is spent. Stranded tasks stay queued for the
        // caller to collect.
        if pool.step_limit.is_some_and(|limit| pool.steps_done.load(Ordering::Relaxed) >= limit) {
            break;
        }
        let dispatch_started = pool.sample_latency.then(Instant::now);
        let Some(task) = next_task(pool, me, &mut rng) else {
            if pool.remaining.load(Ordering::Acquire) == 0 {
                break;
            }
            // Someone else holds the remaining sessions inside their
            // current slice; let them run.
            std::thread::yield_now();
            continue;
        };
        if let Some(started) = dispatch_started {
            latencies.dispatch.push(started.elapsed().as_nanos() as u64);
        }
        run_slice(pool, me, task, &mut latencies);
    }
    latencies
}

/// Pops the next task: local deque first, then an injector batch, then
/// stealing half of the fullest sibling deque.
fn next_task(pool: &Pool, me: usize, rng: &mut Option<StdRng>) -> Option<SessionTask> {
    if let Some(task) = pop_ordered(&mut pool.locals[me].lock().unwrap(), pool.order, rng) {
        return Some(task);
    }
    {
        let mut injector = pool.injector.lock().unwrap();
        if !injector.is_empty() {
            pool.note_depth(injector.len());
            // Grab a batch proportional to our share of the backlog so a
            // hundred thousand submissions do not serialize on this lock.
            let batch = (injector.len() / pool.locals.len()).clamp(1, 4096);
            let mut local = pool.locals[me].lock().unwrap();
            for _ in 0..batch {
                match injector.pop_front() {
                    Some(task) => local.push_back(task),
                    None => break,
                }
            }
            drop(injector);
            return pop_ordered(&mut local, pool.order, rng);
        }
    }
    // Steal half of the first non-empty sibling, scanning from our right
    // neighbor so thieves spread out instead of mobbing worker 0.
    let n = pool.locals.len();
    for offset in 1..n {
        let victim = (me + offset) % n;
        let mut their = pool.locals[victim].lock().unwrap();
        let len = their.len();
        if len == 0 {
            continue;
        }
        pool.note_depth(len);
        pool.steals.fetch_add(1, Ordering::Relaxed);
        let take = len.div_ceil(2);
        let mut local = pool.locals[me].lock().unwrap();
        for _ in 0..take {
            if let Some(task) = their.pop_front() {
                local.push_back(task);
            }
        }
        drop(their);
        return pop_ordered(&mut local, pool.order, rng);
    }
    None
}

fn pop_ordered(
    queue: &mut VecDeque<SessionTask>,
    order: ScheduleOrder,
    rng: &mut Option<StdRng>,
) -> Option<SessionTask> {
    match order {
        ScheduleOrder::RoundRobin => queue.pop_front(),
        ScheduleOrder::Lifo => queue.pop_back(),
        ScheduleOrder::Random(_) => {
            if queue.is_empty() {
                None
            } else {
                let idx = rng.as_mut().expect("random order has an rng").gen_range(0..queue.len());
                queue.swap_remove_back(idx)
            }
        }
    }
}

/// Runs one scheduling quantum of `task`: up to `steps_per_slice` steps,
/// then either completion (report sealed, counters settled) or requeue
/// on our local deque.
fn run_slice(pool: &Pool, me: usize, mut task: SessionTask, latencies: &mut StepLatencies) {
    let started = pool.sample_latency.then(Instant::now);
    let steps_before = task.session.steps_taken();
    // Under a step limit, trim the slice so the drain stops close to the
    // requested point (concurrent workers may still overshoot by at most
    // one slice each — the limit simulates a crash, not a barrier).
    let quantum = match pool.step_limit {
        Some(limit) => {
            let done = pool.steps_done.load(Ordering::Relaxed);
            if done >= limit {
                pool.locals[me].lock().unwrap().push_back(task);
                return;
            }
            (pool.steps_per_slice as u64).min(limit - done) as usize
        }
        None => pool.steps_per_slice,
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        for _ in 0..quantum {
            if !task.session.step().is_running() {
                break;
            }
        }
        task
    }));
    let mut task = match outcome {
        Ok(task) => task,
        Err(_) => {
            // The session panicked mid-step. Count it, drop it, move on:
            // one hostile session must never wedge the scheduler or its
            // neighbors.
            pool.aborted.fetch_add(1, Ordering::Relaxed);
            pool.remaining.fetch_sub(1, Ordering::AcqRel);
            return;
        }
    };
    task.slices += 1;
    let ran = task.session.steps_taken() - steps_before;
    pool.steps_done.fetch_add(ran, Ordering::Relaxed);
    if let Some(started) = started {
        if let Some(ns_per_step) = (started.elapsed().as_nanos() as u64).checked_div(ran) {
            latencies.samples.push((ns_per_step, ran.min(u32::MAX as u64) as u32));
        }
    }
    if task.session.is_finished() {
        if let Some(hook) = &pool.checkpoint {
            // The session is done; its parked state is obsolete.
            let _ = hook.store.remove(task.id);
        }
        let steps = task.session.steps_taken();
        let SessionTask { id, tenant, session, events, slices, .. } = task;
        let report = session.finish();
        pool.done.lock().unwrap_or_else(|p| p.into_inner()).push(FinishedTask {
            id,
            tenant,
            report,
            events,
            slices,
            steps,
        });
        let completed = pool.completed.fetch_add(1, Ordering::Relaxed) + 1;
        if pool.checkpoint_every > 0 && completed.is_multiple_of(pool.checkpoint_every) {
            let point = Checkpoint {
                wall_secs: pool.started.elapsed().as_secs_f64(),
                sessions_done: completed,
                steps_done: pool.steps_done.load(Ordering::Relaxed),
            };
            pool.checkpoints.lock().unwrap_or_else(|p| p.into_inner()).push(point);
        }
        pool.remaining.fetch_sub(1, Ordering::AcqRel);
    } else {
        if let Some(hook) = &pool.checkpoint {
            let ran_total = task.session.steps_taken();
            if hook.every_steps > 0 && ran_total - task.last_ckpt_steps >= hook.every_steps {
                // Between steps is the only sound snapshot point, and the
                // end of a slice is exactly that. Write failures are
                // counted by the store and never fatal to the session —
                // durability degrades, the crawl does not.
                if let Ok(stored) = task.to_stored() {
                    task.last_ckpt_steps = ran_total;
                    let _ = hook.store.save(&stored);
                }
            }
        }
        pool.locals[me].lock().unwrap().push_back(task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_quantiles_interpolate_over_steps() {
        let lat = StepLatencies { samples: vec![(100, 90), (1_000, 10)], dispatch: vec![] };
        assert_eq!(lat.total_steps(), 100);
        assert_eq!(lat.quantile_ns(0.5), Some(100));
        assert_eq!(lat.quantile_ns(0.99), Some(1_000));
        assert_eq!(StepLatencies::default().quantile_ns(0.5), None);
    }

    #[test]
    fn empty_and_zero_weight_sample_sets_have_no_quantile() {
        assert_eq!(StepLatencies::default().quantile_ns(0.0), None);
        assert_eq!(StepLatencies::default().quantile_ns(1.0), None);
        // Zero-weight samples carry no steps: still no quantile.
        let lat = StepLatencies { samples: vec![(500, 0), (900, 0)], dispatch: vec![] };
        assert_eq!(lat.quantile_ns(0.5), None);
        assert_eq!(lat.total_steps(), 0);
    }

    #[test]
    fn single_sample_answers_every_quantile() {
        let lat = StepLatencies { samples: vec![(250, 1)], dispatch: vec![] };
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(lat.quantile_ns(q), Some(250));
        }
    }

    #[test]
    fn out_of_range_quantiles_clamp() {
        let lat = StepLatencies { samples: vec![(100, 50), (1_000, 50)], dispatch: vec![] };
        assert_eq!(lat.quantile_ns(-3.0), Some(100));
        assert_eq!(lat.quantile_ns(7.5), Some(1_000));
        assert_eq!(lat.quantile_ns(f64::NAN), Some(100)); // NaN clamps to the floor
    }

    #[test]
    fn zero_weight_samples_do_not_skew_quantiles() {
        // A zero-weight outlier below the real data must not become the
        // answer for low quantiles.
        let lat = StepLatencies { samples: vec![(1, 0), (100, 10)], dispatch: vec![] };
        assert_eq!(lat.quantile_ns(0.0), Some(100));
        assert_eq!(lat.quantile_ns(1.0), Some(100));
    }

    #[test]
    fn near_max_weights_do_not_overflow() {
        // Five slices each claiming u32::MAX steps: the step total would
        // overflow u32 math and stress f64 rounding; the saturating sum
        // and clamped target keep every quantile inside the sample set.
        let w = u32::MAX;
        let lat = StepLatencies {
            samples: vec![(10, w), (20, w), (30, w), (40, w), (50, w)],
            dispatch: vec![],
        };
        assert_eq!(lat.total_steps(), 5 * u64::from(w));
        assert_eq!(lat.quantile_ns(0.0), Some(10));
        assert_eq!(lat.quantile_ns(0.5), Some(30));
        assert_eq!(lat.quantile_ns(1.0), Some(50));
    }
}
