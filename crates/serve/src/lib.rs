//! # mak-serve — crawl-as-a-service
//!
//! The paper's pitch is coverage *per interaction*; it matters at scale
//! only if the engine can run many crawls cheaply and concurrently. This
//! crate is the serving layer over the
//! [`Session`](mak::framework::session::Session) state machine: a
//! long-running, in-process (no-network) service that multiplexes
//! thousands of concurrent crawl sessions over shared immutable app
//! models, with
//!
//! - a **work-stealing scheduler** ([`scheduler`]) batching virtual-clock
//!   steps across sessions on `MAK_THREADS` workers;
//! - **shared app models**: one `Arc<dyn WebApp>` per application, handed
//!   to every session ([`AppHost::with_shared`]), so a hundred thousand
//!   in-flight crawls of one app hold a single model allocation;
//! - **per-tenant budgets and quotas** ([`tenant`]) with typed
//!   backpressure errors ([`SubmitError`]) instead of panics;
//! - **result streaming** over the existing `mak-obs` JSONL event
//!   protocol: any session can record its event stream and return the
//!   byte-exact JSONL alongside its [`CrawlReport`];
//! - **resilience**: an [`EngineConfig::faults`] plan on a submission
//!   injects the PR 5 chaos layer per session — faulty sessions retry,
//!   back off, and finish their budget without wedging the scheduler;
//! - **durability** ([`checkpoint`]): with a
//!   [`checkpoint_dir`](service::ServiceConfig::checkpoint_dir)
//!   configured, every session checkpoints to an atomic, CRC-guarded
//!   on-disk store at admission and on a step cadence;
//!   [`CrawlService::drain`](service::CrawlService::drain) parks all
//!   pending work and
//!   [`CrawlService::recover`](service::CrawlService::recover) re-admits
//!   it — in the same or a fresh process, after a graceful stop or a
//!   `kill -9` — finishing bit-identically to an uninterrupted run
//!   (`tests/recovery.rs`); corrupt files are quarantined, never
//!   trusted.
//!
//! ## Determinism contract
//!
//! Determinism is *per-session*: each session's report and event stream
//! are a pure function of `(app, crawler, seed, config)`, no matter how
//! many worker threads run, in what order the scheduler interleaves
//! sessions, or what its neighbors do (`tests/determinism.rs` drives the
//! same workload through round-robin, LIFO, and seeded-random schedules
//! on 1/4/8 workers and asserts byte-identical outcomes — all equal to a
//! standalone [`run_crawl`](mak::framework::engine::run_crawl)).
//!
//! ## Quick start
//!
//! ```
//! use mak_serve::{CrawlService, ServiceConfig, SessionSpec};
//! use mak::framework::engine::EngineConfig;
//!
//! let mut service = CrawlService::new(ServiceConfig::default());
//! let spec = SessionSpec::new("tenant-a", "addressbook", "mak", 1)
//!     .config(EngineConfig::with_budget_minutes(0.5));
//! service.submit(spec).expect("within quota");
//! let done = service.run_to_drain();
//! assert_eq!(done.len(), 1);
//! assert!(done[0].report.interactions > 0);
//! ```
//!
//! [`AppHost::with_shared`]: mak_websim::server::AppHost::with_shared
//! [`EngineConfig::faults`]: mak::framework::engine::EngineConfig

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod error;
pub mod metrics;
pub mod scheduler;
pub mod service;
pub mod tenant;

pub use checkpoint::{CheckpointStats, CheckpointStore, LoadOutcome, StoredSession};
pub use error::SubmitError;
pub use metrics::ServiceMetrics;
pub use scheduler::{Checkpoint, ScheduleOrder, StepLatencies};
pub use service::{
    CompletedSession, CrawlService, RecoveryReport, ServiceConfig, SessionId, SessionSpec,
};
pub use tenant::{TenantLedger, TenantQuota};
