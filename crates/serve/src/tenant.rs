//! Per-tenant budgets and quotas.
//!
//! A tenant is anyone submitting sessions — a user, a CI pipeline, a
//! bench. Two independent limits apply per tenant:
//!
//! - a **concurrent-session quota** (how many sessions may be in flight
//!   at once), which recovers as sessions drain; and
//! - an optional **lifetime budget** (how many sessions the tenant may
//!   submit over the service's lifetime), which never recovers.
//!
//! Violations surface as typed [`SubmitError`](crate::SubmitError)s at
//! the admission boundary; accounting is exact — the ledger's in-flight
//! counters return to zero once everything drains (asserted by the
//! quota test suite).

use crate::error::SubmitError;
use std::collections::BTreeMap;

/// Limits for one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Maximum sessions in flight at once.
    pub max_concurrent: usize,
    /// Optional lifetime cap on submitted sessions.
    pub max_total: Option<u64>,
}

impl Default for TenantQuota {
    fn default() -> Self {
        // Generous default: serving benches submit hundreds of thousands
        // of sessions under one tenant.
        TenantQuota { max_concurrent: 1 << 20, max_total: None }
    }
}

impl TenantQuota {
    /// A quota capping only concurrency.
    pub fn concurrent(max_concurrent: usize) -> Self {
        TenantQuota { max_concurrent, max_total: None }
    }
}

/// Per-tenant accounting.
#[derive(Debug, Clone, Default)]
struct TenantState {
    quota: Option<TenantQuota>,
    in_flight: usize,
    submitted: u64,
}

/// The admission ledger: quotas and live counters for every tenant.
///
/// `BTreeMap` (not `HashMap`) so iteration — and therefore any report
/// derived from it — is deterministically ordered by tenant name.
#[derive(Debug, Default)]
pub struct TenantLedger {
    tenants: BTreeMap<String, TenantState>,
    default_quota: TenantQuota,
}

impl TenantLedger {
    /// A ledger where unknown tenants get `default_quota`.
    pub fn new(default_quota: TenantQuota) -> Self {
        TenantLedger { tenants: BTreeMap::new(), default_quota }
    }

    /// Pins an explicit quota for `tenant` (replacing the default).
    pub fn set_quota(&mut self, tenant: &str, quota: TenantQuota) {
        self.tenants.entry(tenant.to_owned()).or_default().quota = Some(quota);
    }

    /// The quota in force for `tenant`.
    pub fn quota(&self, tenant: &str) -> TenantQuota {
        self.tenants.get(tenant).and_then(|t| t.quota).unwrap_or(self.default_quota)
    }

    /// Admits one session for `tenant`, or explains the refusal. On
    /// success the tenant's in-flight and lifetime counters are already
    /// incremented.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QuotaExceeded`] at the concurrency cap (recovers on
    /// [`release`](Self::release)); [`SubmitError::BudgetExhausted`] at
    /// the lifetime cap (permanent).
    pub fn admit(&mut self, tenant: &str) -> Result<(), SubmitError> {
        let default_quota = self.default_quota;
        let state = self.tenants.entry(tenant.to_owned()).or_default();
        let quota = state.quota.unwrap_or(default_quota);
        if let Some(budget) = quota.max_total {
            if state.submitted >= budget {
                return Err(SubmitError::BudgetExhausted {
                    tenant: tenant.to_owned(),
                    submitted: state.submitted,
                    budget,
                });
            }
        }
        if state.in_flight >= quota.max_concurrent {
            return Err(SubmitError::QuotaExceeded {
                tenant: tenant.to_owned(),
                in_flight: state.in_flight,
                limit: quota.max_concurrent,
                // The ledger knows quotas, not schedules; the service
                // fills the hint with its slice length.
                retry_after_steps: None,
            });
        }
        state.in_flight += 1;
        state.submitted += 1;
        Ok(())
    }

    /// Returns one session slot for `tenant` (its session completed).
    ///
    /// # Panics
    ///
    /// Panics if the tenant has nothing in flight — that would mean the
    /// scheduler double-completed a session, an accounting bug worth
    /// failing loudly on.
    pub fn release(&mut self, tenant: &str) {
        let state = self.tenants.get_mut(tenant).expect("release for unknown tenant");
        assert!(state.in_flight > 0, "release with zero in flight for `{tenant}`");
        state.in_flight -= 1;
    }

    /// Sessions in flight for `tenant` right now.
    pub fn in_flight(&self, tenant: &str) -> usize {
        self.tenants.get(tenant).map_or(0, |t| t.in_flight)
    }

    /// Total sessions in flight across all tenants.
    pub fn total_in_flight(&self) -> usize {
        self.tenants.values().map(|t| t.in_flight).sum()
    }

    /// Lifetime submissions for `tenant`.
    pub fn submitted(&self, tenant: &str) -> u64 {
        self.tenants.get(tenant).map_or(0, |t| t.submitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrency_quota_rejects_then_recovers() {
        let mut ledger = TenantLedger::new(TenantQuota::concurrent(2));
        ledger.admit("a").unwrap();
        ledger.admit("a").unwrap();
        let err = ledger.admit("a").unwrap_err();
        assert!(matches!(err, SubmitError::QuotaExceeded { in_flight: 2, limit: 2, .. }));
        ledger.release("a");
        ledger.admit("a").unwrap();
        assert_eq!(ledger.in_flight("a"), 2);
    }

    #[test]
    fn lifetime_budget_never_recovers() {
        let mut ledger = TenantLedger::new(TenantQuota::default());
        ledger.set_quota("b", TenantQuota { max_concurrent: 10, max_total: Some(2) });
        ledger.admit("b").unwrap();
        ledger.admit("b").unwrap();
        ledger.release("b");
        ledger.release("b");
        let err = ledger.admit("b").unwrap_err();
        assert!(matches!(err, SubmitError::BudgetExhausted { submitted: 2, budget: 2, .. }));
    }

    #[test]
    fn tenants_are_isolated() {
        let mut ledger = TenantLedger::new(TenantQuota::concurrent(1));
        ledger.admit("a").unwrap();
        ledger.admit("b").unwrap();
        assert!(ledger.admit("a").is_err());
        assert_eq!(ledger.total_in_flight(), 2);
        ledger.release("a");
        ledger.release("b");
        assert_eq!(ledger.total_in_flight(), 0);
    }
}
