//! Service-level telemetry: the [`ServiceMetrics`] facade over a
//! [`MetricsRegistry`].
//!
//! Every metric the service emits is declared here, in one place, split
//! by clock domain:
//!
//! - **Virtual** — session outcomes and admission decisions. The service
//!   folds them in a fixed order (rejections in program order inside
//!   `submit`, completions in session-id order inside `run_to_drain`),
//!   so [`ServiceMetrics::virtual_snapshot`] is bit-identical across
//!   `MAK_THREADS`, schedule disciplines, and reruns.
//! - **Wall** — drain durations, step-latency histograms, steal counts,
//!   queue depths. Schedule- and machine-dependent by nature; excluded
//!   from the deterministic snapshot.
//!
//! The fold is per-session and per-drain, never per-step: a session
//! contributes a handful of `BTreeMap` updates after running thousands
//! of virtual-clock steps, which is what keeps metrics-on throughput
//! within noise of metrics-off ([`ServiceConfig::collect_metrics`]).
//!
//! [`ServiceConfig::collect_metrics`]: crate::ServiceConfig::collect_metrics

use crate::error::SubmitError;
use crate::scheduler::StepLatencies;
use mak::framework::engine::CrawlReport;
use mak_telemetry::{Domain, MetricsRegistry, MetricsSnapshot};

/// Session-length histogram bounds, in virtual-clock steps.
const SESSION_STEP_BUCKETS: [f64; 8] =
    [10.0, 30.0, 100.0, 300.0, 1_000.0, 3_000.0, 10_000.0, 30_000.0];

/// Per-phase virtual-time histogram bounds, in virtual milliseconds per
/// completed session (budgets run from fractions of a minute in tests to
/// the paper's 30 minutes).
const PHASE_MS_BUCKETS: [f64; 7] =
    [100.0, 1_000.0, 10_000.0, 60_000.0, 300_000.0, 900_000.0, 1_800_000.0];

/// Step-latency histogram bounds, in wall-clock nanoseconds per step.
const STEP_LATENCY_BUCKETS: [f64; 10] = [
    500.0,
    1_000.0,
    2_000.0,
    5_000.0,
    10_000.0,
    20_000.0,
    50_000.0,
    100_000.0,
    1_000_000.0,
    10_000_000.0,
];

/// The service's metrics registry plus the fold methods the service
/// calls. Constructed enabled (the default) or disabled — when disabled
/// every fold is a skipped branch and snapshots are empty, which is how
/// the load bench measures the cost of collection itself.
pub struct ServiceMetrics {
    registry: MetricsRegistry,
    enabled: bool,
}

impl ServiceMetrics {
    /// A registry with every service family declared (none when
    /// disabled: a disabled registry snapshots to nothing at all).
    pub fn new(enabled: bool) -> Self {
        let mut r = MetricsRegistry::new();
        if !enabled {
            return ServiceMetrics { registry: r, enabled };
        }
        // Virtual domain: admission and outcomes.
        r.register_counter(
            "mak_serve_sessions_submitted_total",
            Domain::Virtual,
            "Sessions admitted past the tenant ledger",
        );
        r.register_counter(
            "mak_serve_quota_rejections_total",
            Domain::Virtual,
            "Submissions refused, by tenant and SubmitError variant",
        );
        r.register_counter(
            "mak_serve_sessions_completed_total",
            Domain::Virtual,
            "Sessions drained to the end of their virtual budget",
        );
        r.register_counter(
            "mak_serve_sessions_aborted_total",
            Domain::Virtual,
            "Sessions dropped after panicking mid-step",
        );
        r.register_counter(
            "mak_serve_steps_total",
            Domain::Virtual,
            "Virtual-clock steps executed by completed sessions",
        );
        r.register_counter(
            "mak_serve_interactions_total",
            Domain::Virtual,
            "Browser interactions spent by completed sessions",
        );
        r.register_counter(
            "mak_serve_lines_covered_total",
            Domain::Virtual,
            "Final covered lines summed over completed sessions",
        );
        r.register_histogram(
            "mak_serve_session_steps",
            Domain::Virtual,
            "Virtual-clock steps per completed session",
            &SESSION_STEP_BUCKETS,
        );
        r.register_counter(
            "mak_serve_faults_injected_total",
            Domain::Virtual,
            "Faults injected into completed sessions",
        );
        r.register_counter(
            "mak_serve_fault_retries_total",
            Domain::Virtual,
            "Retries scheduled after retryable faults",
        );
        r.register_counter(
            "mak_serve_fault_recoveries_total",
            Domain::Virtual,
            "Navigations that succeeded after at least one fault",
        );
        r.register_counter(
            "mak_serve_fault_backoff_virtual_ms_total",
            Domain::Virtual,
            "Virtual milliseconds spent waiting out retry backoff",
        );
        r.register_counter(
            "mak_serve_tenant_sessions_total",
            Domain::Virtual,
            "Lifetime budget burn per tenant (admitted sessions)",
        );
        r.register_histogram(
            "mak_serve_phase_virtual_ms",
            Domain::Virtual,
            "Virtual milliseconds per leaf phase per completed session",
            &PHASE_MS_BUCKETS,
        );
        // Durability: checkpoint traffic and recovery outcomes. Write
        // and byte counts are virtual-domain — cadence boundaries are a
        // pure function of each session's step count and the slice
        // length, and the payload bytes are content-deterministic.
        r.register_counter(
            "mak_serve_checkpoint_writes_total",
            Domain::Virtual,
            "Durable session checkpoints written",
        );
        r.register_counter(
            "mak_serve_checkpoint_bytes_total",
            Domain::Virtual,
            "Payload bytes across durable checkpoint writes",
        );
        r.register_counter(
            "mak_serve_checkpoint_restores_total",
            Domain::Virtual,
            "Sessions restored from durable checkpoints",
        );
        r.register_counter(
            "mak_serve_checkpoint_corrupt_total",
            Domain::Virtual,
            "Checkpoint files quarantined as corrupt or unrebuildable",
        );
        r.register_gauge(
            "mak_serve_retry_after_steps",
            Domain::Virtual,
            "Backoff hint handed out with the latest quota rejection, per tenant",
        );
        // Wall domain: scheduler mechanics.
        r.register_counter(
            "mak_serve_drains_total",
            Domain::Wall,
            "run_to_drain calls over the service lifetime",
        );
        r.register_counter(
            "mak_serve_drain_wall_seconds_total",
            Domain::Wall,
            "Wall-clock seconds spent inside drains",
        );
        r.register_counter(
            "mak_serve_scheduler_steals_total",
            Domain::Wall,
            "Work-stealing operations between worker deques",
        );
        r.register_gauge(
            "mak_serve_queue_depth_peak",
            Domain::Wall,
            "High-water mark of observed scheduler queue depth",
        );
        r.register_histogram(
            "mak_serve_step_latency_ns",
            Domain::Wall,
            "Wall-clock nanoseconds per virtual step, weighted by steps (needs sample_latency)",
            &STEP_LATENCY_BUCKETS,
        );
        r.register_histogram(
            "mak_serve_dispatch_ns",
            Domain::Wall,
            "Wall-clock nanoseconds per scheduler dispatch — queue locks, injector \
             batching, and steals before a session runs (needs sample_latency)",
            &STEP_LATENCY_BUCKETS,
        );
        r.register_counter(
            "mak_serve_checkpoint_write_failures_total",
            Domain::Wall,
            "Checkpoint writes that failed at the filesystem layer (environmental)",
        );
        ServiceMetrics { registry: r, enabled }
    }

    /// One admitted session (called from `submit`, program order).
    pub(crate) fn record_submitted(&mut self, tenant: &str, app: &str, crawler: &str) {
        if !self.enabled {
            return;
        }
        self.registry.inc(
            "mak_serve_sessions_submitted_total",
            &[("tenant", tenant), ("app", app), ("crawler", crawler)],
            1,
        );
        self.registry.inc("mak_serve_tenant_sessions_total", &[("tenant", tenant)], 1);
    }

    /// One refused submission, labeled by the typed error's
    /// [`reason`](SubmitError::reason) slug.
    pub(crate) fn record_rejection(&mut self, tenant: &str, error: &SubmitError) {
        if !self.enabled {
            return;
        }
        self.registry.inc(
            "mak_serve_quota_rejections_total",
            &[("tenant", tenant), ("reason", error.reason())],
            1,
        );
        // Surface the machine-readable backoff hint in the exposition so
        // scrapers see the same advice the rejected caller got.
        if let SubmitError::QuotaExceeded { retry_after_steps: Some(steps), .. } = error {
            self.registry.set_gauge(
                "mak_serve_retry_after_steps",
                &[("tenant", tenant)],
                *steps as f64,
            );
        }
    }

    /// Folds one batch of checkpoint-store counter deltas. Zero deltas
    /// are skipped so a service with durability off (or idle) exposes no
    /// checkpoint series at all — existing snapshots stay byte-stable.
    pub(crate) fn record_checkpoints(&mut self, delta: crate::checkpoint::CheckpointStats) {
        if !self.enabled {
            return;
        }
        if delta.writes > 0 {
            self.registry.inc("mak_serve_checkpoint_writes_total", &[], delta.writes);
        }
        if delta.bytes > 0 {
            self.registry.inc("mak_serve_checkpoint_bytes_total", &[], delta.bytes);
        }
        if delta.restores > 0 {
            self.registry.inc("mak_serve_checkpoint_restores_total", &[], delta.restores);
        }
        if delta.corrupt_quarantined > 0 {
            self.registry.inc("mak_serve_checkpoint_corrupt_total", &[], delta.corrupt_quarantined);
        }
        if delta.write_failures > 0 {
            self.registry.inc(
                "mak_serve_checkpoint_write_failures_total",
                &[],
                delta.write_failures,
            );
        }
    }

    /// One completed session's outcome. MUST be called in session-id
    /// order: the float sums (backoff milliseconds) are only reproducible
    /// when folded in a fixed sequence.
    pub(crate) fn record_completed(&mut self, tenant: &str, steps: u64, report: &CrawlReport) {
        if !self.enabled {
            return;
        }
        let by_session = [
            ("tenant", tenant),
            ("app", report.app.as_str()),
            ("crawler", report.crawler.as_str()),
        ];
        let by_kind = [("app", report.app.as_str()), ("crawler", report.crawler.as_str())];
        self.registry.inc("mak_serve_sessions_completed_total", &by_session, 1);
        self.registry.inc("mak_serve_steps_total", &by_kind, steps);
        self.registry.inc("mak_serve_interactions_total", &by_kind, report.interactions);
        self.registry.inc("mak_serve_lines_covered_total", &by_kind, report.final_lines_covered);
        self.registry.observe("mak_serve_session_steps", &by_kind, steps as f64);
        // Leaf phases in the fixed `rows()` order — virtual-domain, so
        // the fold stays deterministic in session-id order.
        for (phase, ms) in report.phase.rows() {
            self.registry.observe(
                "mak_serve_phase_virtual_ms",
                &[
                    ("app", report.app.as_str()),
                    ("crawler", report.crawler.as_str()),
                    ("phase", phase.as_str()),
                ],
                ms,
            );
        }
        let faults = &report.faults;
        if faults.injected > 0 {
            self.registry.inc("mak_serve_faults_injected_total", &by_kind, faults.injected);
            self.registry.inc("mak_serve_fault_retries_total", &by_kind, faults.retries);
            self.registry.inc("mak_serve_fault_recoveries_total", &by_kind, faults.recoveries);
            self.registry.inc_f64(
                "mak_serve_fault_backoff_virtual_ms_total",
                &by_kind,
                faults.backoff_ms,
            );
        }
    }

    /// Sessions dropped after panicking during a drain.
    pub(crate) fn record_aborted(&mut self, count: u64) {
        if !self.enabled || count == 0 {
            return;
        }
        self.registry.inc("mak_serve_sessions_aborted_total", &[], count);
    }

    /// One drain's wall-clock telemetry: duration, steals, peak queue
    /// depth, and (when sampled) the weighted step-latency histogram.
    pub(crate) fn record_drain(
        &mut self,
        wall_secs: f64,
        steals: u64,
        queue_peak: u64,
        latencies: &StepLatencies,
    ) {
        if !self.enabled {
            return;
        }
        self.registry.inc("mak_serve_drains_total", &[], 1);
        self.registry.inc_f64("mak_serve_drain_wall_seconds_total", &[], wall_secs);
        self.registry.inc("mak_serve_scheduler_steals_total", &[], steals);
        self.registry.set_gauge_max("mak_serve_queue_depth_peak", &[], queue_peak as f64);
        for &(ns, weight) in latencies.samples() {
            self.registry.observe_n("mak_serve_step_latency_ns", &[], ns as f64, weight as u64);
        }
        for &ns in latencies.dispatch_samples() {
            self.registry.observe("mak_serve_dispatch_ns", &[], ns as f64);
        }
    }

    /// Whether folds are active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The underlying registry (counter reads in tests, custom renders).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Both domains — the operational snapshot behind `--metrics`.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// The virtual-time domain only: bit-identical across thread counts,
    /// schedule orders, and reruns of the same submissions.
    pub fn virtual_snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot_virtual()
    }
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        ServiceMetrics::new(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_metrics_fold_nothing() {
        let mut m = ServiceMetrics::new(false);
        m.record_submitted("t", "addressbook", "mak");
        m.record_rejection("t", &SubmitError::UnknownApp("x".into()));
        m.record_aborted(3);
        assert!(!m.is_enabled());
        assert_eq!(m.registry().counter_total("mak_serve_sessions_submitted_total"), 0.0);
        assert_eq!(m.registry().counter_total("mak_serve_quota_rejections_total"), 0.0);
    }

    #[test]
    fn rejection_reasons_label_the_counter() {
        let mut m = ServiceMetrics::default();
        m.record_rejection("t", &SubmitError::UnknownApp("x".into()));
        m.record_rejection("t", &SubmitError::UnknownCrawler("y".into()));
        m.record_rejection(
            "t",
            &SubmitError::QuotaExceeded {
                tenant: "t".into(),
                in_flight: 1,
                limit: 1,
                retry_after_steps: Some(64),
            },
        );
        let r = m.registry();
        for reason in ["unknown_app", "unknown_crawler", "quota_exceeded"] {
            assert_eq!(
                r.counter_value(
                    "mak_serve_quota_rejections_total",
                    &[("tenant", "t"), ("reason", reason)],
                ),
                1.0,
                "reason {reason}"
            );
        }
    }

    #[test]
    fn latency_samples_feed_the_wall_histogram() {
        let mut m = ServiceMetrics::default();
        let lat = StepLatencies::default();
        m.record_drain(1.5, 4, 100, &lat);
        let r = m.registry();
        assert_eq!(r.counter_value("mak_serve_drain_wall_seconds_total", &[]), 1.5);
        assert_eq!(r.counter_value("mak_serve_scheduler_steals_total", &[]), 4.0);
        assert_eq!(r.gauge_value("mak_serve_queue_depth_peak", &[]), Some(100.0));
        // The wall families never appear in the virtual snapshot.
        let virt = m.virtual_snapshot();
        assert!(virt.families.iter().all(|f| f.domain == "virtual"));
        assert!(m.snapshot().families.iter().any(|f| f.domain == "wall"));
    }
}
