//! Durable session checkpoints: a CRC-guarded, atomic-rename file store.
//!
//! One file per parked session, named `session-<zero-padded id>.ckpt` so
//! lexicographic directory order is submission order. Each file is a
//! one-line header followed by a JSON payload:
//!
//! ```text
//! makckpt <format-version> <crc32-hex> <payload-bytes>\n
//! {"id":…,"tenant":…,"checkpoint":{…}}
//! ```
//!
//! Writes are crash-safe: the payload goes to a dot-prefixed temp file in
//! the same directory, is fsync'd, renamed over the final name, and the
//! directory is fsync'd — a checkpoint is either the complete old version
//! or the complete new one, never a torn mix. Reads trust nothing: a bad
//! header, length mismatch, CRC mismatch, or undecodable payload moves
//! the file into the `quarantine/` subdirectory (preserved for forensics,
//! never retried) and is counted, and recovery continues with the
//! remaining sessions. Corruption is an expected input, not a panic.

use crate::service::SessionId;
use mak::framework::checkpoint::SessionCheckpoint;
use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// On-disk format version; bumped on any incompatible header or payload
/// change. Distinct from [`CHECKPOINT_VERSION`], which versions the
/// session payload itself.
///
/// [`CHECKPOINT_VERSION`]: mak::framework::checkpoint::CHECKPOINT_VERSION
pub const STORE_VERSION: u32 = 1;

/// Magic token opening every checkpoint header line.
const MAGIC: &str = "makckpt";

/// File extension for live checkpoints.
const EXT: &str = "ckpt";

/// CRC-32 (IEEE 802.3, reflected polynomial) over `bytes`. Hand-rolled
/// bitwise form: the store writes at checkpoint cadence, not per step, so
/// table-free simplicity beats throughput here.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// A parked session as persisted: the engine-level [`SessionCheckpoint`]
/// plus the service-side identity needed to re-admit it — the original
/// submission's id, tenant, and registry names (the spec strings are
/// what [`build_crawler`](mak::spec::build_crawler) and
/// [`apps::build_shared`](mak_websim::apps::build_shared) resolve).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StoredSession {
    /// The service-assigned session id at submission time.
    pub id: SessionId,
    /// The submitting tenant (re-admitted under its current quota).
    pub tenant: String,
    /// The spec's app name (registry key).
    pub app: String,
    /// The spec's crawler name (factory key).
    pub crawler: String,
    /// Whether the submission asked for its JSONL event stream. A
    /// recovered session records from the resume point: its stream is
    /// `SessionResumed` plus the uninterrupted run's suffix.
    pub record_events: bool,
    /// Whether the submission asked for phase spans.
    pub record_spans: bool,
    /// The complete mid-crawl engine state.
    pub checkpoint: SessionCheckpoint,
}

/// Cumulative store counters, mirrored into the service's telemetry as
/// `mak_serve_checkpoint_*` after each drain or recovery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Checkpoint files durably written.
    pub writes: u64,
    /// Payload bytes across those writes.
    pub bytes: u64,
    /// Sessions successfully restored from disk.
    pub restores: u64,
    /// Files quarantined as corrupt (bad header, CRC, or payload).
    pub corrupt_quarantined: u64,
    /// Writes that failed at the filesystem layer (counted, never fatal
    /// to the session being checkpointed).
    pub write_failures: u64,
}

/// The checkpoint directory plus its counters. Shared across scheduler
/// workers behind an `Arc`; all methods take `&self` and every write
/// touches a distinct per-session file, so no external locking is
/// needed.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    writes: AtomicU64,
    bytes: AtomicU64,
    restores: AtomicU64,
    corrupt: AtomicU64,
    write_failures: AtomicU64,
}

/// One recovery attempt's outcome for a single file.
#[derive(Debug)]
pub enum LoadOutcome {
    /// The file verified and decoded.
    Loaded(Box<StoredSession>),
    /// The file failed verification and now lives in `quarantine/`.
    Quarantined {
        /// The original file name.
        file: String,
        /// What failed.
        reason: String,
    },
}

impl CheckpointStore {
    /// Opens (creating if needed) the store at `dir`, including its
    /// `quarantine/` subdirectory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        fs::create_dir_all(dir.join("quarantine"))?;
        Ok(CheckpointStore {
            dir,
            writes: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            restores: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            write_failures: AtomicU64::new(0),
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current counter values.
    pub fn stats(&self) -> CheckpointStats {
        CheckpointStats {
            writes: self.writes.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            restores: self.restores.load(Ordering::Relaxed),
            corrupt_quarantined: self.corrupt.load(Ordering::Relaxed),
            write_failures: self.write_failures.load(Ordering::Relaxed),
        }
    }

    fn file_name(id: SessionId) -> String {
        // Zero-padded so directory order equals id order.
        format!("session-{id:020}.{EXT}")
    }

    /// The live path a session's checkpoint occupies.
    pub fn path_for(&self, id: SessionId) -> PathBuf {
        self.dir.join(Self::file_name(id))
    }

    /// Durably writes `stored`, replacing any previous checkpoint of the
    /// same session. Returns the payload size in bytes.
    ///
    /// # Errors
    ///
    /// Propagates serialization and filesystem failures (also counted in
    /// [`CheckpointStats::write_failures`]).
    pub fn save(&self, stored: &StoredSession) -> io::Result<u64> {
        match self.save_inner(stored) {
            Ok(n) => {
                self.writes.fetch_add(1, Ordering::Relaxed);
                self.bytes.fetch_add(n, Ordering::Relaxed);
                Ok(n)
            }
            Err(e) => {
                self.write_failures.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    fn save_inner(&self, stored: &StoredSession) -> io::Result<u64> {
        let payload = serde_json::to_string(stored).map_err(io::Error::other)?;
        let payload = payload.as_bytes();
        let header = format!("{MAGIC} {STORE_VERSION} {:08x} {}\n", crc32(payload), payload.len());
        let final_path = self.path_for(stored.id);
        let tmp_path = self.dir.join(format!(".{}.tmp", Self::file_name(stored.id)));
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(header.as_bytes())?;
            tmp.write_all(payload)?;
            tmp.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        // fsync the directory so the rename itself survives a crash.
        File::open(&self.dir)?.sync_all()?;
        Ok(payload.len() as u64)
    }

    /// Records one successful session restoration. Decoding a file is
    /// not restoring a session — quota-rejected and already-live entries
    /// decode fine but stay parked — so the service calls this only once
    /// a recovered session is actually re-admitted.
    pub fn note_restored(&self) {
        self.restores.fetch_add(1, Ordering::Relaxed);
    }

    /// Quarantines a session's checkpoint that verified on disk but
    /// cannot be rebuilt (its app or crawler left the registry, or the
    /// engine rejected the state). Counted alongside CRC-level
    /// corruption: either way the file is evidence, not state.
    pub fn quarantine(&self, id: SessionId, _reason: &str) {
        let file = Self::file_name(id);
        let _ = fs::rename(self.path_for(id), self.dir.join("quarantine").join(file));
        self.corrupt.fetch_add(1, Ordering::Relaxed);
    }

    /// Removes a session's checkpoint (it completed). Missing files are
    /// fine: a session that finished before its first cadence boundary
    /// never wrote one.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures other than `NotFound`.
    pub fn remove(&self, id: SessionId) -> io::Result<()> {
        match fs::remove_file(self.path_for(id)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// Verifies and decodes one checkpoint file. Corruption quarantines
    /// the file and reports [`LoadOutcome::Quarantined`]; only
    /// environmental failures (the file vanished, permissions) surface
    /// as errors.
    ///
    /// # Errors
    ///
    /// Propagates filesystem read failures.
    pub fn load_path(&self, path: &Path) -> io::Result<LoadOutcome> {
        let mut raw = Vec::new();
        File::open(path)?.read_to_end(&mut raw)?;
        match Self::decode(&raw) {
            Ok(stored) => Ok(LoadOutcome::Loaded(Box::new(stored))),
            Err(reason) => {
                let file =
                    path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
                // Preserve the evidence; never retry a corrupt file.
                let _ = fs::rename(path, self.dir.join("quarantine").join(&file));
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                Ok(LoadOutcome::Quarantined { file, reason })
            }
        }
    }

    fn decode(raw: &[u8]) -> Result<StoredSession, String> {
        let newline =
            raw.iter().position(|&b| b == b'\n').ok_or_else(|| "missing header".to_owned())?;
        let header =
            std::str::from_utf8(&raw[..newline]).map_err(|_| "non-UTF-8 header".to_owned())?;
        let mut parts = header.split(' ');
        if parts.next() != Some(MAGIC) {
            return Err("bad magic".to_owned());
        }
        let version: u32 =
            parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| "bad version".to_owned())?;
        if version != STORE_VERSION {
            return Err(format!("unsupported store version {version}"));
        }
        let crc_expected = parts
            .next()
            .and_then(|s| u32::from_str_radix(s, 16).ok())
            .ok_or_else(|| "bad crc field".to_owned())?;
        let len: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "bad length field".to_owned())?;
        if parts.next().is_some() {
            return Err("trailing header fields".to_owned());
        }
        let payload = &raw[newline + 1..];
        if payload.len() != len {
            return Err(format!("truncated payload: {} of {len} bytes", payload.len()));
        }
        let crc_actual = crc32(payload);
        if crc_actual != crc_expected {
            return Err(format!("crc mismatch: {crc_actual:08x} != {crc_expected:08x}"));
        }
        let text = std::str::from_utf8(payload).map_err(|_| "non-UTF-8 payload".to_owned())?;
        serde_json::from_str(text).map_err(|e| format!("undecodable payload: {e}"))
    }

    /// Loads every live checkpoint, in session-id (file-name) order.
    /// Corrupt files are quarantined in place and reported alongside the
    /// survivors — one rotten file never aborts a recovery.
    ///
    /// # Errors
    ///
    /// Propagates directory-listing and file-read failures.
    pub fn load_all(&self) -> io::Result<Vec<LoadOutcome>> {
        let mut paths: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.is_file() && p.extension().is_some_and(|e| e == EXT))
            .collect();
        paths.sort();
        paths.iter().map(|p| self.load_path(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mak::framework::engine::EngineConfig;
    use mak::framework::session::Session;
    use mak::spec::build_crawler;
    use mak_obs::sink::SinkHandle;
    use mak_websim::apps;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mak-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn stored(id: SessionId) -> StoredSession {
        let cfg = EngineConfig::with_budget_minutes(0.5);
        let mut session = Session::new(
            apps::build("addressbook").unwrap(),
            build_crawler("mak", id).unwrap(),
            &cfg,
            id,
        );
        for _ in 0..3 {
            session.step();
        }
        StoredSession {
            id,
            tenant: "t".into(),
            app: "addressbook".into(),
            crawler: "mak".into(),
            record_events: false,
            record_spans: false,
            checkpoint: session.snapshot().unwrap(),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn save_load_round_trips() {
        let dir = tmpdir("roundtrip");
        let store = CheckpointStore::open(&dir).unwrap();
        let s = stored(7);
        let bytes = store.save(&s).unwrap();
        assert!(bytes > 0);
        let all = store.load_all().unwrap();
        assert_eq!(all.len(), 1);
        match &all[0] {
            LoadOutcome::Loaded(back) => assert_eq!(**back, s),
            LoadOutcome::Quarantined { reason, .. } => panic!("quarantined: {reason}"),
        }
        let stats = store.stats();
        // Decoding is not restoring: the restore counter moves only when
        // the service re-admits the session.
        assert_eq!((stats.writes, stats.restores, stats.corrupt_quarantined), (1, 0, 0));
        store.note_restored();
        assert_eq!(store.stats().restores, 1);
        assert_eq!(stats.bytes, bytes);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_replaces_and_remove_is_idempotent() {
        let dir = tmpdir("rewrite");
        let store = CheckpointStore::open(&dir).unwrap();
        let s = stored(3);
        store.save(&s).unwrap();
        store.save(&s).unwrap();
        assert_eq!(store.load_all().unwrap().len(), 1, "rewrites replace, not accumulate");
        store.remove(3).unwrap();
        store.remove(3).unwrap(); // second remove: file already gone, still Ok
        assert!(store.load_all().unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_quarantined_not_trusted() {
        let dir = tmpdir("corrupt");
        let store = CheckpointStore::open(&dir).unwrap();
        for id in 0..4u64 {
            store.save(&stored(id)).unwrap();
        }
        // Four distinct corruptions: bit-flip in the payload, truncation,
        // a torn header, and garbage.
        let flip = store.path_for(0);
        let mut raw = fs::read(&flip).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x40;
        fs::write(&flip, &raw).unwrap();

        let trunc = store.path_for(1);
        let raw = fs::read(&trunc).unwrap();
        fs::write(&trunc, &raw[..raw.len() / 2]).unwrap();

        fs::write(store.path_for(2), b"makckpt 1 deadbeef").unwrap();

        let all = store.load_all().unwrap();
        let loaded: Vec<_> = all.iter().filter(|o| matches!(o, LoadOutcome::Loaded(_))).collect();
        assert_eq!(loaded.len(), 1, "only the untouched checkpoint survives");
        assert_eq!(store.stats().corrupt_quarantined, 3);
        // The evidence is preserved, not deleted.
        let quarantined = fs::read_dir(dir.join("quarantine")).unwrap().count();
        assert_eq!(quarantined, 3);
        // Quarantine is final: a second scan sees only the good file.
        assert_eq!(store.load_all().unwrap().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn future_store_versions_are_rejected() {
        let dir = tmpdir("version");
        let store = CheckpointStore::open(&dir).unwrap();
        store.save(&stored(9)).unwrap();
        let path = store.path_for(9);
        let raw = fs::read(&path).unwrap();
        let bumped = String::from_utf8_lossy(&raw).replacen("makckpt 1 ", "makckpt 99 ", 1);
        fs::write(&path, bumped.as_bytes()).unwrap();
        match &store.load_all().unwrap()[0] {
            LoadOutcome::Quarantined { reason, .. } => {
                assert!(reason.contains("version"), "{reason}");
            }
            LoadOutcome::Loaded(_) => panic!("future version must not load"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_bytes_are_deterministic() {
        // Two snapshots of the same run serialize to identical bytes —
        // no map iteration order, wall clock, or address leaks into the
        // payload.
        let a = serde_json::to_string(&stored(5)).unwrap();
        let b = serde_json::to_string(&stored(5)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn restore_from_disk_continues_bit_identically() {
        let dir = tmpdir("continue");
        let store = CheckpointStore::open(&dir).unwrap();
        let cfg = EngineConfig::with_budget_minutes(0.5);
        let app = apps::build_shared("addressbook").unwrap();
        let uninterrupted =
            Session::with_shared_app(app.clone(), build_crawler("mak", 5).unwrap(), &cfg, 5)
                .finish();
        let mut live =
            Session::with_shared_app(app.clone(), build_crawler("mak", 5).unwrap(), &cfg, 5);
        for _ in 0..4 {
            live.step();
        }
        store
            .save(&StoredSession {
                id: 0,
                tenant: "t".into(),
                app: "addressbook".into(),
                crawler: "mak".into(),
                record_events: false,
                record_spans: false,
                checkpoint: live.snapshot().unwrap(),
            })
            .unwrap();
        drop(live);
        let LoadOutcome::Loaded(back) = store.load_all().unwrap().remove(0) else {
            panic!("checkpoint did not load");
        };
        let resumed = Session::restore(
            app,
            build_crawler(&back.crawler, back.checkpoint.seed).unwrap(),
            &back.checkpoint,
            SinkHandle::none(),
        )
        .unwrap();
        assert_eq!(resumed.finish(), uninterrupted);
        fs::remove_dir_all(&dir).unwrap();
    }
}
