//! Typed submission errors: quota exhaustion is backpressure, not a
//! panic.

use std::fmt;

/// Why the service refused a session submission. In-flight sessions are
/// never affected by a rejection — backpressure applies only at the
/// admission boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The requested application is not registered with the service.
    UnknownApp(String),
    /// The requested crawler name is not in the factory registry.
    UnknownCrawler(String),
    /// The tenant is at its concurrent-session quota; retry after some
    /// of its sessions drain.
    QuotaExceeded {
        /// The tenant that hit its limit.
        tenant: String,
        /// Sessions currently in flight for the tenant.
        in_flight: usize,
        /// The tenant's concurrent-session cap.
        limit: usize,
        /// Machine-readable backoff hint: virtual-clock steps of drain
        /// progress after which a resubmission is worth attempting (one
        /// scheduling slice — the finest granularity at which an
        /// in-flight session can complete and free a slot). `None` when
        /// the ledger is used standalone; the service always fills it.
        retry_after_steps: Option<u64>,
    },
    /// The tenant has consumed its lifetime session budget; no amount of
    /// draining restores it.
    BudgetExhausted {
        /// The tenant that spent its budget.
        tenant: String,
        /// Sessions the tenant has submitted over the service lifetime.
        submitted: u64,
        /// The tenant's lifetime budget.
        budget: u64,
    },
}

impl SubmitError {
    /// A stable, label-safe slug naming the variant — the `reason` label
    /// on the service's `quota_rejections_total` counter, and the key the
    /// per-tenant accounting test joins on.
    pub fn reason(&self) -> &'static str {
        match self {
            SubmitError::UnknownApp(_) => "unknown_app",
            SubmitError::UnknownCrawler(_) => "unknown_crawler",
            SubmitError::QuotaExceeded { .. } => "quota_exceeded",
            SubmitError::BudgetExhausted { .. } => "budget_exhausted",
        }
    }
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::UnknownApp(app) => write!(f, "unknown app `{app}`"),
            SubmitError::UnknownCrawler(c) => write!(f, "unknown crawler `{c}`"),
            SubmitError::QuotaExceeded { tenant, in_flight, limit, retry_after_steps } => {
                write!(
                    f,
                    "tenant `{tenant}` at concurrent-session quota ({in_flight}/{limit}); \
                     retry after drain"
                )?;
                if let Some(steps) = retry_after_steps {
                    write!(f, " (~{steps} steps)")?;
                }
                Ok(())
            }
            SubmitError::BudgetExhausted { tenant, submitted, budget } => write!(
                f,
                "tenant `{tenant}` exhausted its lifetime session budget ({submitted}/{budget})"
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_actionably() {
        let e = SubmitError::QuotaExceeded {
            tenant: "acme".into(),
            in_flight: 8,
            limit: 8,
            retry_after_steps: Some(64),
        };
        assert!(e.to_string().contains("acme"));
        assert!(e.to_string().contains("8/8"));
        assert!(e.to_string().contains("~64 steps"));
        let e = SubmitError::BudgetExhausted { tenant: "acme".into(), submitted: 100, budget: 100 };
        assert!(e.to_string().contains("lifetime"));
    }
}
