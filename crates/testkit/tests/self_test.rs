//! End-to-end self-test of the fuzzing harness: inject a known bug into
//! Exp3.1 (skip the epoch advance of Algorithm 1, line 9), verify the
//! invariant oracle catches it, and verify shrinking reduces the
//! reproduction to a tiny blueprint.

use mak::framework::engine::EngineConfig;
use mak::mak::MakCrawler;
use mak_testkit::differential::oracle_crawl;
use mak_testkit::fuzz::{replay, FailureArtifact};
use mak_testkit::generate::BlueprintSpec;
use mak_testkit::oracle::Violation;
use mak_testkit::shrink::shrink;

/// Runs a MAK crawler with the epoch-advance bug injected and returns the
/// first oracle violation, if any.
fn run_with_injected_bug(spec: &BlueprintSpec, budget_minutes: f64) -> Option<Violation> {
    let seed = 1;
    let mut crawler = MakCrawler::new(seed);
    crawler
        .policy_mut()
        .as_exp31_mut()
        .expect("default MAK policy is Exp3.1")
        .testing_disable_epoch_advance();
    let config = EngineConfig::with_budget_minutes(budget_minutes);
    let (_report, violations) = oracle_crawl(&mut crawler, spec, &config, seed);
    violations.into_iter().find(|v| v.invariant == "exp31-epoch-bound")
}

#[test]
fn injected_epoch_bug_is_caught_and_shrinks_small() {
    let spec = BlueprintSpec::generate(0);
    let budget = 2.0;

    let violation =
        run_with_injected_bug(&spec, budget).expect("oracle must catch the disabled epoch advance");

    let result = shrink(&spec, budget, &violation, &mut |s, b| run_with_injected_bug(s, b));

    assert_eq!(result.violation.invariant, "exp31-epoch-bound");
    assert!(
        result.spec.total_pages() <= 5,
        "shrunk reproduction must be tiny, got {} pages: {:?}",
        result.spec.total_pages(),
        result.spec
    );
    assert!(result.budget_minutes <= budget);
    assert!(result.attempts > 0);

    // The shrunk spec still reproduces on a fresh run — shrinking returned
    // a real witness, not a stale one.
    assert!(run_with_injected_bug(&result.spec, result.budget_minutes).is_some());
}

#[test]
fn shrinking_is_deterministic() {
    let spec = BlueprintSpec::generate(4);
    let violation = run_with_injected_bug(&spec, 1.0).expect("bug reproduces on seed-4 app");
    let a = shrink(&spec, 1.0, &violation, &mut |s, b| run_with_injected_bug(s, b));
    let b = shrink(&spec, 1.0, &violation, &mut |s, b| run_with_injected_bug(s, b));
    assert_eq!(a.spec, b.spec);
    assert_eq!(a.budget_minutes, b.budget_minutes);
    assert_eq!(a.attempts, b.attempts);
    assert_eq!(a.violation, b.violation);
}

#[test]
fn injected_bug_artifact_replays_clean_on_fixed_code() {
    // Write an artifact recording the injected-bug failure, then replay
    // it. Replay rebuilds the crawler from its registered name — i.e. the
    // *fixed* implementation — so the violation must NOT reproduce. This
    // is the workflow after a bug fix: replay the artifact, see it pass.
    let spec = BlueprintSpec::generate(0);
    let violation = run_with_injected_bug(&spec, 1.0).expect("bug reproduces before the fix");
    let artifact = FailureArtifact {
        spec,
        crawler: "mak".to_owned(),
        seed: 1,
        budget_minutes: 1.0,
        violation,
        shrink_attempts: 0,
        faults: mak_browser::fault::FaultPlan::none(),
    };
    let dir = std::env::temp_dir().join(format!("mak-testkit-selftest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("epoch-bug.json");
    std::fs::write(&path, serde_json::to_string_pretty(&artifact).unwrap()).unwrap();

    let outcome = replay(&path).expect("artifact parses");
    assert_eq!(outcome.artifact, artifact);
    assert!(
        outcome.reproduced.is_none(),
        "healthy code must not reproduce the injected bug: {:?}",
        outcome.reproduced
    );
    let _ = std::fs::remove_dir_all(&dir);
}
