//! Differential oracles: the same `(spec, crawler, seed, config)` cell
//! must produce byte-identical [`CrawlReport`]s no matter *how* it is
//! executed.
//!
//! Four execution paths are cross-checked:
//!
//! - **rerun ≡ first run** — rebuilding the crawler and the app from the
//!   spec and crawling again yields the identical report (the workspace
//!   determinism contract).
//! - **session ≡ one-shot** — driving the cell through the resumable
//!   [`Session`](mak::framework::session::Session) state machine, one
//!   step at a time from outside, yields the identical report (the
//!   serving layer's equivalence contract).
//! - **parallel ≡ sequential** — running all crawlers concurrently on
//!   their own app instances matches the sequential reports (no hidden
//!   shared state, no iteration-order leaks).
//! - **cached ≡ fresh** — a report saved through the
//!   [`RunStore`](mak_metrics::store::RunStore) and loaded back is
//!   field-for-field identical to the fresh one.
//!
//! Reports are compared through their canonical JSON serialization so a
//! mismatch in *any* field (including the full coverage series and trace)
//! is caught, and the differing serialization can be embedded in the
//! violation.

use crate::generate::BlueprintSpec;
use crate::oracle::{InvariantOracle, Violation};
use mak::framework::crawler::Crawler;
use mak::framework::engine::{run_crawl, run_crawl_with_sink, CrawlReport, EngineConfig};
use mak::spec::build_crawler;
use mak_metrics::store::{CacheMode, RunStore};
use mak_obs::sink::{SinkHandle, VecSink};
use mak_obs::trace::first_divergence;

/// Runs one crawl under the event-level invariant oracle, returning both
/// the report and any violations the oracle recorded.
pub fn oracle_crawl(
    crawler: &mut dyn Crawler,
    spec: &BlueprintSpec,
    config: &EngineConfig,
    seed: u64,
) -> (CrawlReport, Vec<Violation>) {
    let (sink, cell) = SinkHandle::shared(InvariantOracle::new());
    let report = run_crawl_with_sink(crawler, Box::new(spec.build()), config, seed, &sink);
    // The crawler keeps a clone of the sink, so take the violations by
    // value instead of unwrapping the cell.
    let violations = cell.lock().unwrap().violations().to_vec();
    (report, violations)
}

/// Canonical JSON form of a report, used for byte-exact comparison.
pub fn report_json(report: &CrawlReport) -> String {
    serde_json::to_string(report).expect("CrawlReport serializes")
}

fn diff_violation(invariant: &str, details: String) -> Violation {
    Violation { step: 0, invariant: invariant.to_owned(), details }
}

fn summarize_mismatch(context: &str, a: &CrawlReport, b: &CrawlReport) -> String {
    format!(
        "{context}: reports differ \
         (interactions {} vs {}, lines {} vs {}, urls {} vs {}, states {:?} vs {:?})",
        a.interactions,
        b.interactions,
        a.final_lines_covered,
        b.final_lines_covered,
        a.distinct_urls,
        b.distinct_urls,
        a.state_count,
        b.state_count,
    )
}

/// Replays one cell with a recording sink and returns its event stream.
fn recorded_crawl(
    spec: &BlueprintSpec,
    crawler_name: &str,
    seed: u64,
    config: &EngineConfig,
) -> Vec<mak_obs::Event> {
    let (sink, cell) = SinkHandle::shared(VecSink::new());
    let mut crawler = build_crawler(crawler_name, seed)
        .unwrap_or_else(|| panic!("unknown crawler {crawler_name}"));
    run_crawl_with_sink(&mut *crawler, Box::new(spec.build()), config, seed, &sink);
    let events = cell.lock().unwrap().events().to_vec();
    events
}

/// On a rerun mismatch, replays the cell twice under event recording and
/// names the first divergent event — turning a bare "reports differ" into
/// a witness with an exact step and payload pair.
fn pinpoint_rerun_divergence(
    spec: &BlueprintSpec,
    crawler_name: &str,
    seed: u64,
    config: &EngineConfig,
) -> String {
    let a = recorded_crawl(spec, crawler_name, seed, config);
    let b = recorded_crawl(spec, crawler_name, seed, config);
    match first_divergence(a, b) {
        Some(div) => format!("; {div}"),
        // The reports differ but two instrumented replays agree: the
        // nondeterminism is outside the event taxonomy (or was triggered
        // by the original, uninstrumented execution path).
        None => "; instrumented replays agree — divergence is outside the event stream".to_owned(),
    }
}

/// Checks that rebuilding everything from the spec and re-crawling yields
/// a byte-identical report.
pub fn check_rerun_identical(
    spec: &BlueprintSpec,
    crawler_name: &str,
    seed: u64,
    config: &EngineConfig,
    first: &CrawlReport,
) -> Result<(), Violation> {
    let mut crawler = build_crawler(crawler_name, seed)
        .unwrap_or_else(|| panic!("unknown crawler {crawler_name}"));
    let rerun = run_crawl(&mut *crawler, Box::new(spec.build()), config, seed);
    if report_json(first) == report_json(&rerun) {
        Ok(())
    } else {
        let mut details =
            summarize_mismatch(&format!("{crawler_name} seed {seed} rerun"), first, &rerun);
        details.push_str(&pinpoint_rerun_divergence(spec, crawler_name, seed, config));
        Err(diff_violation("rerun-identical", details))
    }
}

/// Checks that re-running the cell through a step-driven
/// [`Session`](mak::framework::session::Session) — the state machine the
/// serving layer multiplexes — yields a byte-identical report to the
/// one-shot run.
pub fn check_session_equivalence(
    spec: &BlueprintSpec,
    crawler_name: &str,
    seed: u64,
    config: &EngineConfig,
    first: &CrawlReport,
) -> Result<(), Violation> {
    let crawler = build_crawler(crawler_name, seed)
        .unwrap_or_else(|| panic!("unknown crawler {crawler_name}"));
    let mut session =
        mak::framework::session::Session::new(Box::new(spec.build()), crawler, config, seed);
    while session.step().is_running() {}
    let stepped = session.finish();
    if report_json(first) == report_json(&stepped) {
        Ok(())
    } else {
        Err(diff_violation(
            "session-equivalence",
            summarize_mismatch(&format!("{crawler_name} seed {seed} session"), first, &stepped),
        ))
    }
}

/// Checks that running the given crawlers in parallel (one thread each,
/// each with its own app instance built from the spec) reproduces the
/// sequential reports byte-for-byte.
pub fn check_parallel_sequential(
    spec: &BlueprintSpec,
    crawlers: &[String],
    seed: u64,
    config: &EngineConfig,
    sequential: &[CrawlReport],
) -> Vec<Violation> {
    assert_eq!(crawlers.len(), sequential.len());
    let parallel: Vec<CrawlReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = crawlers
            .iter()
            .map(|name| {
                scope.spawn(move || {
                    let mut crawler =
                        build_crawler(name, seed).unwrap_or_else(|| panic!("unknown {name}"));
                    run_crawl(&mut *crawler, Box::new(spec.build()), config, seed)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("crawl thread panicked")).collect()
    });
    let mut violations = Vec::new();
    for ((name, seq), par) in crawlers.iter().zip(sequential).zip(&parallel) {
        if report_json(seq) != report_json(par) {
            violations.push(diff_violation(
                "parallel-sequential",
                summarize_mismatch(&format!("{name} seed {seed} parallel"), seq, par),
            ));
        }
    }
    violations
}

/// Checks that interrupting a session mid-crawl, round-tripping its
/// checkpoint through JSON, and resuming in a *fresh* session (new app
/// instance built from the spec, new crawler seeded from scratch) yields
/// a byte-identical report to the uninterrupted run — the durability
/// contract the serving layer's crash recovery stands on, exercised on
/// applications nobody hand-wrote.
///
/// The session is interrupted near the midpoint of the first run's
/// interaction count, so both halves of the crawl — and the mid-flight
/// crawler, frontier, and RNG state between them — cross the
/// serialization boundary.
pub fn check_snapshot_roundtrip(
    spec: &BlueprintSpec,
    crawler_name: &str,
    seed: u64,
    config: &EngineConfig,
    first: &CrawlReport,
) -> Result<(), Violation> {
    use mak::framework::checkpoint::SessionCheckpoint;
    use mak::framework::session::Session;
    use serde::{Deserialize as _, Serialize as _};

    let fail = |details: String| diff_violation("snapshot-roundtrip", details);
    let context = format!("{crawler_name} seed {seed}");

    let crawler = build_crawler(crawler_name, seed)
        .unwrap_or_else(|| panic!("unknown crawler {crawler_name}"));
    let mut session = Session::new(Box::new(spec.build()), crawler, config, seed);
    let halfway = (first.interactions / 2).max(1);
    while session.steps_taken() < halfway && session.step().is_running() {}

    let checkpoint =
        session.snapshot().map_err(|e| fail(format!("{context}: snapshot failed: {e}")))?;
    let json = serde_json::to_string(&checkpoint.to_value())
        .map_err(|e| fail(format!("{context}: checkpoint does not serialize: {e}")))?;
    let value = serde_json::from_str(&json)
        .map_err(|e| fail(format!("{context}: checkpoint JSON unreadable: {e}")))?;
    let decoded = SessionCheckpoint::from_value(&value)
        .map_err(|e| fail(format!("{context}: checkpoint did not round-trip: {e}")))?;

    let fresh_crawler = build_crawler(crawler_name, seed).expect("crawler name checked above");
    let mut resumed = Session::restore_owned(
        Box::new(spec.build()),
        fresh_crawler,
        &decoded,
        mak_obs::sink::SinkHandle::none(),
    )
    .map_err(|e| fail(format!("{context}: restore failed: {e}")))?;
    while resumed.step().is_running() {}
    let report = resumed.finish();
    if report_json(first) == report_json(&report) {
        Ok(())
    } else {
        Err(fail(summarize_mismatch(&format!("{context} resumed"), first, &report)))
    }
}

/// Checks that saving a fresh report through the run cache and loading it
/// back yields a field-for-field identical report. Uses a private store
/// rooted in a per-call temp directory; the directory is removed before
/// returning.
pub fn check_cache_roundtrip(
    spec: &BlueprintSpec,
    crawler_name: &str,
    seed: u64,
    config: &EngineConfig,
    fresh: &CrawlReport,
) -> Result<(), Violation> {
    let dir = std::env::temp_dir().join(format!(
        "mak-testkit-cache-{}-{}-{crawler_name}-{seed}",
        std::process::id(),
        spec.name
    ));
    let store = RunStore::at(&dir, CacheMode::ReadWrite);
    store.save(fresh, config);
    let loaded = store.load(&fresh.app, crawler_name, seed, config);
    let result = match loaded {
        None => Err(diff_violation(
            "cache-roundtrip",
            format!("{crawler_name} seed {seed}: saved report not found on load"),
        )),
        Some(cached) if report_json(&cached) != report_json(fresh) => Err(diff_violation(
            "cache-roundtrip",
            summarize_mismatch(&format!("{crawler_name} seed {seed} cached"), fresh, &cached),
        )),
        Some(_) => Ok(()),
    };
    let _ = std::fs::remove_dir_all(&dir);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> EngineConfig {
        EngineConfig::with_budget_minutes(0.5)
    }

    #[test]
    fn rerun_is_identical_for_all_core_crawlers() {
        let spec = BlueprintSpec::generate(5);
        let config = small_config();
        for name in ["mak", "bfs", "dfs", "random", "webexplor", "qexplore"] {
            let mut c = build_crawler(name, 2).unwrap();
            let (report, violations) = oracle_crawl(&mut *c, &spec, &config, 2);
            assert!(violations.is_empty(), "{name}: {violations:?}");
            check_rerun_identical(&spec, name, 2, &config, &report)
                .unwrap_or_else(|v| panic!("{v}"));
        }
    }

    #[test]
    fn stepped_session_matches_one_shot_on_generated_apps() {
        let spec = BlueprintSpec::generate(7);
        let config = small_config();
        for name in ["mak", "qexplore", "dfs"] {
            let mut c = build_crawler(name, 3).unwrap();
            let report = run_crawl(&mut *c, Box::new(spec.build()), &config, 3);
            check_session_equivalence(&spec, name, 3, &config, &report)
                .unwrap_or_else(|v| panic!("{v}"));
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let spec = BlueprintSpec::generate(9);
        let config = small_config();
        let crawlers: Vec<String> =
            ["mak", "bfs", "random"].iter().map(|s| (*s).to_owned()).collect();
        let sequential: Vec<CrawlReport> = crawlers
            .iter()
            .map(|name| {
                let mut c = build_crawler(name, 4).unwrap();
                run_crawl(&mut *c, Box::new(spec.build()), &config, 4)
            })
            .collect();
        let violations = check_parallel_sequential(&spec, &crawlers, 4, &config, &sequential);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn pinpoint_on_a_deterministic_cell_reports_agreement() {
        let spec = BlueprintSpec::generate(3);
        let config = small_config();
        // The workspace is deterministic, so two instrumented replays
        // agree and the pinpointer says so instead of inventing a
        // divergence.
        let msg = pinpoint_rerun_divergence(&spec, "mak", 1, &config);
        assert!(msg.contains("instrumented replays agree"), "{msg}");
    }

    #[test]
    fn snapshot_roundtrip_matches_uninterrupted_for_every_crawler() {
        let spec = BlueprintSpec::generate(21);
        let config = small_config();
        for name in ["mak", "bfs", "dfs", "random", "webexplor", "qexplore"] {
            let mut c = build_crawler(name, 8).unwrap();
            let report = run_crawl(&mut *c, Box::new(spec.build()), &config, 8);
            check_snapshot_roundtrip(&spec, name, 8, &config, &report)
                .unwrap_or_else(|v| panic!("{v}"));
        }
    }

    #[test]
    fn snapshot_roundtrip_holds_under_faults_on_generated_apps() {
        use mak_browser::fault::FaultPlan;
        let spec = BlueprintSpec::generate(33);
        let mut config = small_config();
        config.faults = FaultPlan::profile("heavy").unwrap();
        for name in ["mak", "qexplore"] {
            let mut c = build_crawler(name, 15).unwrap();
            let report = run_crawl(&mut *c, Box::new(spec.build()), &config, 15);
            check_snapshot_roundtrip(&spec, name, 15, &config, &report)
                .unwrap_or_else(|v| panic!("{v}"));
        }
    }

    #[test]
    fn cache_roundtrip_is_exact() {
        let spec = BlueprintSpec::generate(13);
        let config = small_config();
        let mut c = build_crawler("mak", 6).unwrap();
        let report = run_crawl(&mut *c, Box::new(spec.build()), &config, 6);
        check_cache_roundtrip(&spec, "mak", 6, &config, &report).unwrap_or_else(|v| panic!("{v}"));
    }
}
