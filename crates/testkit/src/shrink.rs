//! Deterministic shrinking of failing blueprints.
//!
//! Given a spec + budget that reproduces a violation, [`shrink`] searches
//! for a smaller reproduction by structural bisection, in four rounds
//! applied to a fixpoint:
//!
//! 1. drop whole modules (one at a time, first-to-last);
//! 2. halve each module's page count;
//! 3. strip builder knobs (cross links, external links, redirects,
//!    transient failures, shared code, bootstrap lines);
//! 4. halve the crawl budget (down to a 0.25-minute floor).
//!
//! A candidate is accepted only if the caller's `check` closure still
//! reproduces a violation on it, so the final result is a *minimal-ish*
//! deterministic reproduction — not globally minimal (shrinking is greedy)
//! but typically a handful of pages. The whole process is a pure function
//! of its inputs: no randomness, no wall-clock.

use crate::generate::BlueprintSpec;
use crate::oracle::Violation;

/// Outcome of shrinking one failure.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The smallest spec that still reproduces a violation.
    pub spec: BlueprintSpec,
    /// The (possibly reduced) crawl budget that still reproduces.
    pub budget_minutes: f64,
    /// The violation observed on the shrunk spec.
    pub violation: Violation,
    /// Number of candidate specs evaluated.
    pub attempts: u64,
}

/// Shrinks `(spec, budget_minutes)` while `check` keeps returning
/// `Some(violation)`. `check` must be deterministic; it is called once per
/// candidate.
pub fn shrink(
    spec: &BlueprintSpec,
    budget_minutes: f64,
    violation: &Violation,
    check: &mut dyn FnMut(&BlueprintSpec, f64) -> Option<Violation>,
) -> ShrinkResult {
    let mut best = spec.clone();
    let mut budget = budget_minutes;
    let mut witness = violation.clone();
    let mut attempts = 0u64;

    let mut try_accept =
        |candidate: &BlueprintSpec, cand_budget: f64, attempts: &mut u64| -> Option<Violation> {
            *attempts += 1;
            check(candidate, cand_budget)
        };

    loop {
        let mut improved = false;

        // Round 1: drop whole modules.
        let mut i = 0;
        while best.modules.len() > 1 && i < best.modules.len() {
            let mut candidate = best.clone();
            candidate.modules.remove(i);
            if let Some(v) = try_accept(&candidate, budget, &mut attempts) {
                best = candidate;
                witness = v;
                improved = true;
                // Same index now names the next module; don't advance.
            } else {
                i += 1;
            }
        }

        // Round 2: halve page counts.
        for i in 0..best.modules.len() {
            while best.modules[i].pages > 1 {
                let mut candidate = best.clone();
                candidate.modules[i].pages = candidate.modules[i].pages.div_ceil(2);
                if candidate.modules[i].pages == best.modules[i].pages {
                    break;
                }
                if let Some(v) = try_accept(&candidate, budget, &mut attempts) {
                    best = candidate;
                    witness = v;
                    improved = true;
                } else {
                    break;
                }
            }
        }

        // Round 3: strip knobs one at a time.
        let knobs: Vec<fn(&mut BlueprintSpec)> = vec![
            |s| s.cross_links = 0,
            |s| s.external_links = 0,
            |s| s.redirect_links = 0,
            |s| s.flaky_every = None,
            |s| s.shared_ratio_pct = 0,
            |s| s.bootstrap_lines = 5,
        ];
        for strip in knobs {
            let mut candidate = best.clone();
            strip(&mut candidate);
            if candidate == best {
                continue;
            }
            if let Some(v) = try_accept(&candidate, budget, &mut attempts) {
                best = candidate;
                witness = v;
                improved = true;
            }
        }

        // Round 4: halve the crawl budget.
        while budget > 0.25 {
            let half = (budget / 2.0).max(0.25);
            if let Some(v) = try_accept(&best, half, &mut attempts) {
                budget = half;
                witness = v;
                improved = true;
            } else {
                break;
            }
        }

        if !improved {
            break;
        }
    }

    ShrinkResult { spec: best, budget_minutes: budget, violation: witness, attempts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{KindSpec, ModuleDef};

    fn violation() -> Violation {
        Violation { step: 0, invariant: "test".into(), details: "synthetic".into() }
    }

    /// A synthetic bug that reproduces whenever the spec still contains a
    /// Pagination module — shrinking should strip everything else.
    #[test]
    fn shrinks_to_the_guilty_module() {
        let spec = BlueprintSpec {
            name: "shrinkme".into(),
            modules: vec![
                ModuleDef { name: "a".into(), kind: KindSpec::Hub, pages: 8, lines_per_page: 10 },
                ModuleDef {
                    name: "b".into(),
                    kind: KindSpec::Pagination,
                    pages: 12,
                    lines_per_page: 10,
                },
                ModuleDef { name: "c".into(), kind: KindSpec::Chain, pages: 6, lines_per_page: 10 },
            ],
            cross_links: 4,
            external_links: 2,
            redirect_links: 3,
            flaky_every: Some(3),
            shared_ratio_pct: 200,
            bootstrap_lines: 40,
            live_coverage: true,
        };
        let mut check = |s: &BlueprintSpec, _b: f64| {
            s.modules.iter().any(|m| matches!(m.kind, KindSpec::Pagination)).then(violation)
        };
        let result = shrink(&spec, 2.0, &violation(), &mut check);
        assert_eq!(result.spec.modules.len(), 1);
        assert!(matches!(result.spec.modules[0].kind, KindSpec::Pagination));
        assert_eq!(result.spec.modules[0].pages, 1);
        assert_eq!(result.spec.cross_links, 0);
        assert_eq!(result.spec.flaky_every, None);
        assert!(result.budget_minutes <= 0.25 + 1e-9);
        assert!(result.attempts > 0);
    }

    /// If nothing smaller reproduces, shrinking returns the input.
    #[test]
    fn keeps_input_when_nothing_smaller_reproduces() {
        let spec = BlueprintSpec::generate(0);
        let original = spec.clone();
        let mut check =
            |s: &BlueprintSpec, b: f64| (*s == original && (b - 2.0).abs() < 1e-9).then(violation);
        let result = shrink(&spec, 2.0, &violation(), &mut check);
        assert_eq!(result.spec, spec);
        assert!((result.budget_minutes - 2.0).abs() < 1e-9);
    }
}
